//! Property tests for the Pilot data layer: format parsing, message
//! packing, and format/value agreement.

use cp_mpisim::{Datatype, LongDouble};
use cp_pilot::value::{
    check_against_format, check_read_format, pack_message, payload_bytes, unpack_message,
};
use cp_pilot::{parse_format, CountSpec, PiValue};
use proptest::prelude::*;

/// A strategy producing an arbitrary `PiValue` with 0..64 elements.
fn arb_value() -> impl Strategy<Value = PiValue> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(PiValue::Byte),
        proptest::collection::vec(0x20u8..0x7F, 0..64).prop_map(PiValue::Char),
        proptest::collection::vec(any::<i16>(), 0..64).prop_map(PiValue::Int16),
        proptest::collection::vec(any::<i32>(), 0..64).prop_map(PiValue::Int32),
        proptest::collection::vec(any::<u32>(), 0..64).prop_map(PiValue::UInt32),
        proptest::collection::vec(any::<i64>(), 0..64).prop_map(PiValue::Int64),
        proptest::collection::vec(any::<f32>(), 0..64).prop_map(PiValue::Float32),
        proptest::collection::vec(any::<f64>(), 0..64).prop_map(PiValue::Float64),
        proptest::collection::vec(any::<f64>(), 0..64)
            .prop_map(|v| PiValue::LongDouble(v.into_iter().map(LongDouble).collect())),
    ]
}

fn conv_letter(d: Datatype) -> &'static str {
    match d {
        Datatype::Byte => "b",
        Datatype::Char => "c",
        Datatype::Int16 => "hd",
        Datatype::Int32 => "d",
        Datatype::UInt32 => "u",
        Datatype::Int64 => "ld",
        Datatype::Float32 => "f",
        Datatype::Float64 => "lf",
        Datatype::LongDouble => "Lf",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pack → unpack is the identity for any value list.
    #[test]
    fn pack_unpack_roundtrip(values in proptest::collection::vec(arb_value(), 0..8)) {
        // NaN breaks PartialEq; compare on the wire instead.
        let bytes = pack_message(&values);
        let back = unpack_message(&bytes).expect("own wire format parses");
        prop_assert_eq!(pack_message(&back), bytes);
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert_eq!(a.dtype(), b.dtype());
            prop_assert_eq!(a.len(), b.len());
        }
    }

    /// A format synthesized from the values always accepts them, on both
    /// the write side and the read side.
    #[test]
    fn synthesized_format_matches(values in proptest::collection::vec(arb_value(), 1..8),
                                  use_star in any::<bool>()) {
        let fmt: String = values
            .iter()
            .map(|v| {
                if use_star {
                    format!("%*{}", conv_letter(v.dtype()))
                } else if v.len() == 1 {
                    format!("%{}", conv_letter(v.dtype()))
                } else {
                    format!("%{}{}", v.len().max(1), conv_letter(v.dtype()))
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        // Fixed-count formats can't express empty segments; star always can.
        let any_empty = values.iter().any(|v| v.is_empty());
        prop_assume!(use_star || !any_empty);
        let conv = parse_format(&fmt).unwrap();
        prop_assert!(check_against_format(&conv, &values).is_ok(), "fmt={fmt}");
        let segs: Vec<(Datatype, usize)> = values.iter().map(|v| (v.dtype(), v.len())).collect();
        prop_assert!(check_read_format(&conv, &segs).is_ok());
    }

    /// Payload bytes equal element count times wire size, summed.
    #[test]
    fn payload_bytes_is_sum(values in proptest::collection::vec(arb_value(), 0..8)) {
        let expected: usize = values.iter().map(|v| v.len() * v.dtype().wire_size()).sum();
        prop_assert_eq!(payload_bytes(&values), expected);
    }

    /// Parsing never panics on arbitrary input, and accepted formats
    /// contain only valid conversions.
    #[test]
    fn parser_is_total(s in "\\PC*") {
        match parse_format(&s) {
            Ok(convs) => {
                prop_assert!(!convs.is_empty());
                for c in convs {
                    if let CountSpec::Fixed(n) = c.count {
                        prop_assert!(n >= 1);
                    }
                }
            }
            Err(e) => {
                prop_assert!(e.at <= s.len());
            }
        }
    }

    /// Truncating a packed message always makes it unparseable (no silent
    /// partial reads).
    #[test]
    fn truncated_wire_rejected(values in proptest::collection::vec(arb_value(), 1..4),
                               cut in 1usize..16) {
        let bytes = pack_message(&values);
        prop_assume!(cut < bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        prop_assert!(unpack_message(truncated).is_none());
    }
}
