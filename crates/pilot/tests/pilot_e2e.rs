//! End-to-end Pilot application tests: full configure→execute runs on the
//! simulated cluster.

use cp_des::SimError;
use cp_pilot::{pi_read, pi_write, BundleUsage, PiValue, PilotConfig, PilotOpts, PI_MAIN};
use cp_simnet::{ClusterSpec, NodeId, NodeKind};
use parking_lot::Mutex;
use std::sync::Arc;

fn commodity_spec(n: usize) -> ClusterSpec {
    ClusterSpec {
        nodes: vec![NodeKind::Commodity { cores: 4 }; n],
        ..ClusterSpec::two_cells_one_xeon()
    }
}

fn cfg_n(ranks: usize) -> PilotConfig {
    let spec = commodity_spec(ranks);
    let placement = (0..ranks).map(NodeId).collect();
    PilotConfig::new(spec, placement, PilotOpts::default())
}

#[test]
fn paper_style_write_read_roundtrip() {
    // The paper's first example: PI_Write(workerdata, "%1000f", data).
    let mut cfg = cfg_n(2);
    let worker = cfg
        .create_process("worker", 0, |p, _| {
            let vals = pi_read!(p, cp_pilot::PiChannel(0), "%1000f");
            match &vals[0] {
                PiValue::Float32(v) => {
                    assert_eq!(v.len(), 1000);
                    assert_eq!(v[7], 7.0);
                }
                other => panic!("wrong type {other:?}"),
            }
        })
        .unwrap();
    let workerdata = cfg.create_channel(PI_MAIN, worker).unwrap();
    cfg.run(move |p| {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        pi_write!(p, workerdata, "%1000f", data);
    })
    .unwrap();
}

#[test]
fn star_format_reads_runtime_length() {
    let mut cfg = cfg_n(2);
    let worker = cfg
        .create_process("worker", 0, |p, _| {
            // "%*d" with "*" illustrating argument-supplied length.
            let vals = pi_read!(p, cp_pilot::PiChannel(0), "%*d");
            assert_eq!(vals[0], PiValue::Int32((0..100).collect()));
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, worker).unwrap();
    cfg.run(move |p| {
        let arr: Vec<i32> = (0..100).collect();
        pi_write!(p, chan, "%100d", arr);
    })
    .unwrap();
}

#[test]
fn multi_segment_message() {
    let mut cfg = cfg_n(2);
    let worker = cfg
        .create_process("worker", 0, |p, _| {
            let vals = pi_read!(p, cp_pilot::PiChannel(0), "%d %*lf %3c");
            assert_eq!(vals[0], PiValue::Int32(vec![42]));
            assert_eq!(vals[1], PiValue::Float64(vec![1.5, -2.5]));
            assert_eq!(vals[2], PiValue::Char(b"abc".to_vec()));
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, worker).unwrap();
    cfg.run(move |p| {
        let r = p.write(
            chan,
            "%d %2lf %3c",
            &[
                PiValue::Int32(vec![42]),
                PiValue::Float64(vec![1.5, -2.5]),
                PiValue::Char(b"abc".to_vec()),
            ],
        );
        r.unwrap();
    })
    .unwrap();
}

#[test]
fn index_parameter_distinguishes_instances() {
    // "The same function body can be associated with multiple processes,
    // and an index parameter can be passed so it can identify its own
    // instance."
    let mut cfg = cfg_n(4);
    let body = |p: &cp_pilot::Pilot, idx: i32| {
        pi_write!(p, cp_pilot::PiChannel(idx as usize), "%d", idx * 100);
    };
    let mut chans = Vec::new();
    for i in 0..3 {
        let proc = cfg.create_process("worker", i, body).unwrap();
        chans.push(cfg.create_channel(proc, PI_MAIN).unwrap());
    }
    cfg.run(move |p| {
        for (i, &c) in chans.iter().enumerate() {
            let vals = pi_read!(p, c, "%d");
            assert_eq!(vals[0], PiValue::Int32(vec![i as i32 * 100]));
        }
    })
    .unwrap();
}

#[test]
fn wrong_writer_aborts_with_location() {
    let mut cfg = cfg_n(3);
    let a = cfg
        .create_process("innocent", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(0), "%d");
        })
        .unwrap();
    let _intruder = cfg
        .create_process("intruder", 0, |p, _| {
            // Channel 0 belongs to main->innocent; this write must abort.
            pi_write!(p, cp_pilot::PiChannel(0), "%d", 1);
        })
        .unwrap();
    let _chan = cfg.create_channel(PI_MAIN, a).unwrap();
    match cfg.run(|_p| {}) {
        Err(SimError::Aborted { message, .. }) => {
            assert!(message.contains("intruder"), "{message}");
            assert!(message.contains("not the writer"), "{message}");
            assert!(message.contains("pilot_e2e.rs"), "source file: {message}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
}

#[test]
fn format_mismatch_between_endpoints_aborts() {
    let mut cfg = cfg_n(2);
    let w = cfg
        .create_process("reader", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(0), "%5d"); // writer sends floats
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, w).unwrap();
    match cfg.run(move |p| {
        pi_write!(p, chan, "%5f", vec![0f32; 5]);
    }) {
        Err(SimError::Aborted { message, .. }) => {
            assert!(message.contains("disagrees with writer"), "{message}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
}

#[test]
fn broadcast_bundle_mpmd_convention() {
    // Only the broadcaster calls broadcast; receivers call read.
    let n_workers = 5;
    let mut cfg = cfg_n(n_workers + 1);
    let mut chans = Vec::new();
    let mut procs = Vec::new();
    for i in 0..n_workers {
        let w = cfg
            .create_process("recv", i as i32, move |p, idx| {
                let vals = pi_read!(p, cp_pilot::PiChannel(idx as usize), "%4u");
                assert_eq!(vals[0], PiValue::UInt32(vec![10, 20, 30, 40]));
            })
            .unwrap();
        procs.push(w);
    }
    for &w in &procs {
        chans.push(cfg.create_channel(PI_MAIN, w).unwrap());
    }
    let bundle = cfg.create_bundle(BundleUsage::Broadcast, &chans).unwrap();
    cfg.run(move |p| {
        p.broadcast(bundle, "%4u", &[PiValue::UInt32(vec![10, 20, 30, 40])])
            .unwrap();
    })
    .unwrap();
}

#[test]
fn gather_bundle_collects_in_channel_order() {
    let n_workers = 4;
    let mut cfg = cfg_n(n_workers + 1);
    let mut chans = Vec::new();
    for i in 0..n_workers {
        let w = cfg
            .create_process("send", i as i32, move |p, idx| {
                pi_write!(p, cp_pilot::PiChannel(idx as usize), "%d", idx * 2);
            })
            .unwrap();
        chans.push(cfg.create_channel(w, PI_MAIN).unwrap());
    }
    let bundle = cfg.create_bundle(BundleUsage::Gather, &chans).unwrap();
    cfg.run(move |p| {
        let rows = p.gather(bundle, "%d").unwrap();
        let got: Vec<i32> = rows
            .iter()
            .map(|r| match &r[0] {
                PiValue::Int32(v) => v[0],
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![0, 2, 4, 6]);
    })
    .unwrap();
}

#[test]
fn select_returns_ready_channel() {
    let mut cfg = cfg_n(3);
    let fast = cfg
        .create_process("fast", 0, |p, _| {
            pi_write!(p, cp_pilot::PiChannel(0), "%b", 1u8);
        })
        .unwrap();
    let slow = cfg
        .create_process("slow", 0, |p, _| {
            p.ctx().advance(cp_des::SimDuration::from_millis(50));
            pi_write!(p, cp_pilot::PiChannel(1), "%b", 2u8);
        })
        .unwrap();
    let c_fast = cfg.create_channel(fast, PI_MAIN).unwrap();
    let c_slow = cfg.create_channel(slow, PI_MAIN).unwrap();
    let bundle = cfg
        .create_bundle(BundleUsage::Select, &[c_fast, c_slow])
        .unwrap();
    cfg.run(move |p| {
        let ready = p.select(bundle).unwrap();
        assert_eq!(ready, c_fast, "fast channel is ready first");
        let v = pi_read!(p, ready, "%b");
        assert_eq!(v[0], PiValue::Byte(vec![1]));
        // try_select: slow not ready yet right after the first message.
        let second = p.select(bundle).unwrap();
        assert_eq!(second, c_slow);
        let v = pi_read!(p, second, "%b");
        assert_eq!(v[0], PiValue::Byte(vec![2]));
    })
    .unwrap();
}

#[test]
fn channel_has_data_nonblocking() {
    let mut cfg = cfg_n(2);
    let w = cfg
        .create_process("w", 0, |p, _| {
            p.ctx().advance(cp_des::SimDuration::from_millis(10));
            pi_write!(p, cp_pilot::PiChannel(0), "%d", 5);
        })
        .unwrap();
    let chan = cfg.create_channel(w, PI_MAIN).unwrap();
    cfg.run(move |p| {
        assert!(!p.channel_has_data(chan).unwrap());
        p.ctx().advance(cp_des::SimDuration::from_millis(20));
        assert!(p.channel_has_data(chan).unwrap());
        let _ = pi_read!(p, chan, "%d");
    })
    .unwrap();
}

#[test]
fn deadlock_service_diagnoses_circular_wait() {
    // Two processes each read before anyone writes: classic circular wait.
    // With -pisvc=d the Pilot service must name the deadlocked processes.
    let spec = commodity_spec(4);
    let placement = (0..4).map(NodeId).collect();
    let opts = PilotOpts {
        deadlock_detection: true,
        ..Default::default()
    };
    let mut cfg = PilotConfig::new(spec, placement, opts);
    let ping = cfg
        .create_process("ping", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(1), "%d"); // waits on pong
            pi_write!(p, cp_pilot::PiChannel(0), "%d", 1);
        })
        .unwrap();
    let pong = cfg
        .create_process("pong", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(0), "%d"); // waits on ping
            pi_write!(p, cp_pilot::PiChannel(1), "%d", 2);
        })
        .unwrap();
    let _c0 = cfg.create_channel(ping, pong).unwrap();
    let _c1 = cfg.create_channel(pong, ping).unwrap();
    match cfg.run(|_p| {}) {
        Err(SimError::Aborted { message, .. }) => {
            assert!(message.contains("DEADLOCK"), "{message}");
            assert!(
                message.contains("ping") && message.contains("pong"),
                "{message}"
            );
        }
        other => panic!("expected service abort, got {other:?}"),
    }
}

#[test]
fn deadlock_service_stays_quiet_on_healthy_pingpong() {
    // The grace-period logic must not flag a real exchange as deadlock.
    let spec = commodity_spec(4);
    let placement = (0..4).map(NodeId).collect();
    let opts = PilotOpts {
        deadlock_detection: true,
        ..Default::default()
    };
    let mut cfg = PilotConfig::new(spec, placement, opts);
    let ping = cfg
        .create_process("ping", 0, |p, _| {
            for i in 0..20 {
                pi_write!(p, cp_pilot::PiChannel(0), "%d", i);
                let v = pi_read!(p, cp_pilot::PiChannel(1), "%d");
                assert_eq!(v[0], PiValue::Int32(vec![i]));
            }
        })
        .unwrap();
    let pong = cfg
        .create_process("pong", 0, |p, _| {
            for _ in 0..20 {
                let v = pi_read!(p, cp_pilot::PiChannel(0), "%d");
                let PiValue::Int32(x) = &v[0] else {
                    unreachable!()
                };
                pi_write!(p, cp_pilot::PiChannel(1), "%d", x[0]);
            }
        })
        .unwrap();
    let _c0 = cfg.create_channel(ping, pong).unwrap();
    let _c1 = cfg.create_channel(pong, ping).unwrap();
    cfg.run(|_p| {}).unwrap();
}

#[test]
fn without_service_deadlock_is_still_caught_by_simulator() {
    let mut cfg = cfg_n(3);
    let a = cfg
        .create_process("a", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(0), "%d");
        })
        .unwrap();
    let b = cfg
        .create_process("b", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(1), "%d");
        })
        .unwrap();
    let _c0 = cfg.create_channel(b, a).unwrap();
    let _c1 = cfg.create_channel(a, b).unwrap();
    match cfg.run(|_p| {}) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(blocked.iter().any(|(_, n, _)| n == "a"));
            assert!(blocked.iter().any(|(_, n, _)| n == "b"));
        }
        other => panic!("expected simulator deadlock, got {other:?}"),
    }
}

#[test]
fn many_messages_preserve_order_and_content() {
    let mut cfg = cfg_n(2);
    let sink = cfg
        .create_process("sink", 0, |p, _| {
            let log = Arc::new(Mutex::new(Vec::new()));
            for _ in 0..50 {
                let v = pi_read!(p, cp_pilot::PiChannel(0), "%d");
                let PiValue::Int32(x) = &v[0] else {
                    unreachable!()
                };
                log.lock().push(x[0]);
            }
            let l = log.lock();
            assert_eq!(*l, (0..50).collect::<Vec<i32>>());
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, sink).unwrap();
    cfg.run(move |p| {
        for i in 0..50 {
            pi_write!(p, chan, "%d", i);
        }
    })
    .unwrap();
}

#[test]
fn every_datatype_travels_intact() {
    use cp_mpisim::LongDouble;
    let mut cfg = cfg_n(2);
    let w = cfg
        .create_process("w", 0, |p, _| {
            let v = pi_read!(
                p,
                cp_pilot::PiChannel(0),
                "%2b %2c %2hd %2d %2u %2ld %2f %2lf %2Lf"
            );
            assert_eq!(v[0], PiValue::Byte(vec![1, 255]));
            assert_eq!(v[1], PiValue::Char(b"hi".to_vec()));
            assert_eq!(v[2], PiValue::Int16(vec![-5, 300]));
            assert_eq!(v[3], PiValue::Int32(vec![i32::MIN, i32::MAX]));
            assert_eq!(v[4], PiValue::UInt32(vec![0, u32::MAX]));
            assert_eq!(v[5], PiValue::Int64(vec![i64::MIN, i64::MAX]));
            assert_eq!(v[6], PiValue::Float32(vec![1.5, -0.25]));
            assert_eq!(v[7], PiValue::Float64(vec![std::f64::consts::PI, -1.0]));
            assert_eq!(
                v[8],
                PiValue::LongDouble(vec![LongDouble(2.5), LongDouble(-9.0)])
            );
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, w).unwrap();
    cfg.run(move |p| {
        p.write(
            chan,
            "%2b %2c %2hd %2d %2u %2ld %2f %2lf %2Lf",
            &[
                PiValue::Byte(vec![1, 255]),
                PiValue::Char(b"hi".to_vec()),
                PiValue::Int16(vec![-5, 300]),
                PiValue::Int32(vec![i32::MIN, i32::MAX]),
                PiValue::UInt32(vec![0, u32::MAX]),
                PiValue::Int64(vec![i64::MIN, i64::MAX]),
                PiValue::Float32(vec![1.5, -0.25]),
                PiValue::Float64(vec![std::f64::consts::PI, -1.0]),
                PiValue::LongDouble(vec![LongDouble(2.5), LongDouble(-9.0)]),
            ],
        )
        .unwrap();
    })
    .unwrap();
}

#[test]
fn heterogeneous_endpoints_xeon_to_ppe() {
    // A Xeon-hosted process talks to a PPE-hosted process; MPI's canonical
    // wire format bridges word length and endianness.
    let spec = ClusterSpec::two_cells_one_xeon();
    let placement = vec![NodeId(2), NodeId(0)]; // main on Xeon, worker on Cell PPE
    let mut cfg = PilotConfig::new(spec, placement, PilotOpts::default());
    let w = cfg
        .create_process("on-ppe", 0, |p, _| {
            let v = pi_read!(p, cp_pilot::PiChannel(0), "%3ld");
            assert_eq!(v[0], PiValue::Int64(vec![1, -2, 3]));
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, w).unwrap();
    cfg.run(move |p| {
        pi_write!(p, chan, "%3ld", vec![1i64, -2, 3]);
    })
    .unwrap();
}

#[test]
fn call_log_records_ops_in_time_order() {
    // -pisvc=c: the call log shows every channel operation, timestamped.
    let mut cfg = PilotConfig::new(
        commodity_spec(2),
        (0..2).map(NodeId).collect(),
        PilotOpts {
            call_log: true,
            ..Default::default()
        },
    );
    let w = cfg
        .create_process("worker", 0, |p, _| {
            let v = pi_read!(p, cp_pilot::PiChannel(0), "%d");
            pi_write!(p, cp_pilot::PiChannel(1), "%d", {
                let PiValue::Int32(x) = &v[0] else {
                    unreachable!()
                };
                x[0] + 1
            });
        })
        .unwrap();
    let c0 = cfg.create_channel(PI_MAIN, w).unwrap();
    let c1 = cfg.create_channel(w, PI_MAIN).unwrap();
    let (_report, log) = cfg
        .run_logged(move |p| {
            pi_write!(p, c0, "%d", 5);
            let _ = pi_read!(p, c1, "%d");
        })
        .unwrap();
    let ops: Vec<(&str, usize, String)> = log
        .iter()
        .map(|r| (r.op, r.subject, r.process.clone()))
        .collect();
    assert_eq!(ops.len(), 4, "{ops:?}");
    assert_eq!(ops[0], ("write", 0, "main".into()));
    assert_eq!(ops[1], ("read", 0, "worker".into()));
    assert_eq!(ops[2], ("write", 1, "worker".into()));
    assert_eq!(ops[3], ("read", 1, "main".into()));
    assert!(log.windows(2).all(|w| w[0].at <= w[1].at));
}

#[test]
fn call_log_disabled_is_empty() {
    let mut cfg = cfg_n(2);
    let w = cfg
        .create_process("worker", 0, |p, _| {
            let _ = pi_read!(p, cp_pilot::PiChannel(0), "%d");
        })
        .unwrap();
    let c0 = cfg.create_channel(PI_MAIN, w).unwrap();
    let (_report, log) = cfg
        .run_logged(move |p| {
            pi_write!(p, c0, "%d", 1);
        })
        .unwrap();
    assert!(log.is_empty());
}

#[test]
fn broadcast_tree_spans_eleven_ranks() {
    // A 10-receiver broadcast bundle exercises a 4-level binomial tree
    // (receivers forward inside their read calls).
    let n = 10;
    let mut cfg = cfg_n(n + 1);
    let mut chans = Vec::new();
    let mut procs = Vec::new();
    for i in 0..n {
        procs.push(
            cfg.create_process("r", i as i32, move |p, idx| {
                let vals = pi_read!(p, cp_pilot::PiChannel(idx as usize), "%*ld");
                assert_eq!(vals[0], PiValue::Int64((0..32).collect()));
            })
            .unwrap(),
        );
    }
    for &w in &procs {
        chans.push(cfg.create_channel(PI_MAIN, w).unwrap());
    }
    let bundle = cfg.create_bundle(BundleUsage::Broadcast, &chans).unwrap();
    cfg.run(move |p| {
        p.broadcast(bundle, "%32ld", &[PiValue::Int64((0..32).collect())])
            .unwrap();
    })
    .unwrap();
}

#[test]
fn typed_helpers_roundtrip() {
    let mut cfg = cfg_n(2);
    let worker = cfg
        .create_process("worker", 0, |p, _| {
            let ints = p.read_vec::<i32>(cp_pilot::PiChannel(0)).unwrap();
            assert_eq!(ints, vec![1, 2, 3]);
            let floats = p.read_vec::<f64>(cp_pilot::PiChannel(0)).unwrap();
            assert_eq!(floats, vec![0.5, -1.5]);
            let empty = p.read_vec::<u8>(cp_pilot::PiChannel(0)).unwrap();
            assert!(empty.is_empty());
        })
        .unwrap();
    let chan = cfg.create_channel(PI_MAIN, worker).unwrap();
    cfg.run(move |p| {
        p.write_slice(chan, &[1i32, 2, 3]).unwrap();
        p.write_slice(chan, &[0.5f64, -1.5]).unwrap();
        p.write_slice::<u8>(chan, &[]).unwrap();
    })
    .unwrap();
}

#[test]
fn builder_opts_match_field_style() {
    let built = PilotOpts::new()
        .with_deadlock_service()
        .with_call_log()
        .with_channel_timeout(cp_des::SimDuration::from_millis(7));
    let field = PilotOpts {
        deadlock_detection: true,
        call_log: true,
        channel_timeout: Some(cp_des::SimDuration::from_millis(7)),
        ..Default::default()
    };
    assert_eq!(built.deadlock_detection, field.deadlock_detection);
    assert_eq!(built.call_log, field.call_log);
    assert_eq!(built.channel_timeout, field.channel_timeout);
    assert!(built.faults.is_none());
    assert_eq!(built.retry.max_retries, field.retry.max_retries);
}

#[test]
fn read_times_out_under_channel_deadline() {
    use cp_pilot::PilotError;
    let spec = commodity_spec(2);
    let placement = (0..2).map(NodeId).collect();
    let opts = PilotOpts::new().with_channel_timeout(cp_des::SimDuration::from_millis(5));
    let mut cfg = PilotConfig::new(spec, placement, opts);
    let w = cfg
        .create_process("worker", 0, |p, _| {
            // Nobody ever writes channel 0: the read must fail after 5 ms
            // of virtual time instead of blocking forever.
            let before = p.ctx().now();
            match p.read(cp_pilot::PiChannel(0), "%d") {
                Err(PilotError::Timeout { channel: 0, .. }) => {}
                other => panic!("expected timeout, got {other:?}"),
            }
            let waited = p.ctx().now().since(before);
            assert!(waited >= cp_des::SimDuration::from_millis(5));
        })
        .unwrap();
    let _chan = cfg.create_channel(PI_MAIN, w).unwrap();
    let report = cfg.run(|_p| {}).unwrap();
    assert!(
        report.incidents.iter().any(
            |i| i.category == cp_des::IncidentCategory::ChannelTimeout && i.process == "worker"
        ),
        "{:?}",
        report.incidents
    );
}

#[test]
fn rank_death_fails_only_touching_channels() {
    use cp_des::SimTime;
    use cp_pilot::PilotError;
    use cp_simnet::FaultPlan;

    // Blast radius: losing "victim" fails main's channel from victim but
    // leaves the bystander channel fully usable.
    let spec = commodity_spec(3);
    let placement = (0..3).map(NodeId).collect();
    let plan = Arc::new(FaultPlan::new().kill_rank(1, SimTime(1_000_000))); // 1 ms
    let opts = PilotOpts::new()
        .with_channel_timeout(cp_des::SimDuration::from_millis(5))
        .with_faults(plan);
    let mut cfg = PilotConfig::new(spec, placement, opts);
    let victim = cfg
        .create_process("victim", 0, |p, _| {
            // Dies at 1 ms without ever writing its channel.
            p.ctx().advance(cp_des::SimDuration::from_millis(2));
        })
        .unwrap();
    let bystander = cfg
        .create_process("bystander", 0, |p, _| {
            p.write_slice(cp_pilot::PiChannel(1), &[7i32]).unwrap();
        })
        .unwrap();
    let c_victim = cfg.create_channel(victim, PI_MAIN).unwrap();
    let c_by = cfg.create_channel(bystander, PI_MAIN).unwrap();
    let report = cfg
        .run(move |p| {
            match p.read(c_victim, "%d") {
                Err(PilotError::PeerLost { peer, .. }) => assert_eq!(peer, "victim"),
                other => panic!("expected PeerLost, got {other:?}"),
            }
            // The bystander channel is unaffected by the death.
            assert_eq!(p.read_vec::<i32>(c_by).unwrap(), vec![7]);
        })
        .unwrap();
    assert!(
        report
            .incidents
            .iter()
            .any(|i| i.category == cp_des::IncidentCategory::RankDeath),
        "{:?}",
        report.incidents
    );
    assert!(
        report
            .incidents
            .iter()
            .any(|i| i.category == cp_des::IncidentCategory::PeerLost),
        "{:?}",
        report.incidents
    );
}

#[test]
fn write_to_dead_peer_errors() {
    use cp_des::SimTime;
    use cp_pilot::PilotError;
    use cp_simnet::FaultPlan;

    let spec = commodity_spec(2);
    let placement = (0..2).map(NodeId).collect();
    let plan = Arc::new(FaultPlan::new().kill_rank(1, SimTime(1_000_000)));
    let opts = PilotOpts::new().with_faults(plan);
    let mut cfg = PilotConfig::new(spec, placement, opts);
    let victim = cfg.create_process("victim", 0, |_p, _| {}).unwrap();
    let chan = cfg.create_channel(PI_MAIN, victim).unwrap();
    cfg.run(move |p| {
        p.ctx().advance(cp_des::SimDuration::from_millis(2));
        match p.write_slice(chan, &[1i32]) {
            Err(PilotError::PeerLost { peer, .. }) => assert_eq!(peer, "victim"),
            other => panic!("expected PeerLost, got {other:?}"),
        }
    })
    .unwrap();
}

#[test]
fn select_server_drains_clients_in_readiness_order() {
    // A server uses PI_Select in a loop to serve whichever client is
    // ready — the "Unix select" pattern the paper describes.
    let n = 4;
    let mut cfg = cfg_n(n + 1);
    let mut chans = Vec::new();
    for i in 0..n {
        let w = cfg
            .create_process("client", i as i32, move |p, idx| {
                // Client i speaks up at t = (n - i) * 10ms: reverse order.
                let delay = (4 - idx as u64) * 10;
                p.ctx().advance(cp_des::SimDuration::from_millis(delay));
                pi_write!(p, cp_pilot::PiChannel(idx as usize), "%d", idx);
            })
            .unwrap();
        chans.push(cfg.create_channel(w, PI_MAIN).unwrap());
    }
    let bundle = cfg.create_bundle(BundleUsage::Select, &chans).unwrap();
    cfg.run(move |p| {
        let mut served = Vec::new();
        for _ in 0..n {
            let ready = p.select(bundle).unwrap();
            let vals = pi_read!(p, ready, "%d");
            let PiValue::Int32(v) = &vals[0] else {
                unreachable!()
            };
            served.push(v[0]);
        }
        // Readiness order is reverse client order.
        assert_eq!(served, vec![3, 2, 1, 0]);
    })
    .unwrap();
}
