//! The internal tables built during the configuration phase.
//!
//! Pilot's configuration phase "is concurrently executed by every MPI
//! process in the cluster, resulting in the construction of equivalent
//! internal tables on the various processors". In the simulation we build
//! the tables once and share them immutably (`Arc`) with every rank, which
//! models the same property: every process sees the identical architecture,
//! and the runtime enforces it.

use crate::error::PilotError;

/// Handle to a Pilot process (index into the process table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PiProcess(pub usize);

/// The distinguished main process (MPI rank 0); it has no associated
/// function and simply continues executing `main`.
pub const PI_MAIN: PiProcess = PiProcess(0);

/// Handle to a channel (index into the channel table; doubles as the MPI
/// tag its traffic travels under).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PiChannel(pub usize);

/// Handle to a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PiBundle(pub usize);

/// What a bundle is for (fixed at creation, like Pilot V1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleUsage {
    /// One writer (the common endpoint) to many readers.
    Broadcast,
    /// Many writers to one reader (the common endpoint).
    Gather,
    /// Many writers to one reader who waits for *any* of them.
    Select,
}

#[derive(Debug, Clone)]
pub(crate) struct ProcessEntry {
    pub name: String,
    /// MPI rank backing this process.
    pub rank: usize,
    /// Index argument passed to the process function.
    pub index: i32,
}

#[derive(Debug, Clone)]
pub(crate) struct ChannelEntry {
    /// Writer process.
    pub from: PiProcess,
    /// Reader process.
    pub to: PiProcess,
    /// Bundle membership, if any.
    pub bundle: Option<PiBundle>,
}

#[derive(Debug, Clone)]
pub(crate) struct BundleEntry {
    pub usage: BundleUsage,
    /// Member channels in creation order.
    pub channels: Vec<PiChannel>,
    /// The common endpoint process.
    pub common: PiProcess,
}

/// The immutable application architecture shared by every rank.
#[derive(Debug, Default)]
pub struct Tables {
    pub(crate) processes: Vec<ProcessEntry>,
    pub(crate) channels: Vec<ChannelEntry>,
    pub(crate) bundles: Vec<BundleEntry>,
    /// Rank of the deadlock-detection service, if enabled.
    pub(crate) detector_rank: Option<usize>,
}

impl Tables {
    pub(crate) fn process(&self, p: PiProcess) -> Result<&ProcessEntry, PilotError> {
        self.processes
            .get(p.0)
            .ok_or(PilotError::NoSuchProcess(p.0))
    }

    pub(crate) fn channel(&self, c: PiChannel) -> Result<&ChannelEntry, PilotError> {
        self.channels.get(c.0).ok_or(PilotError::NoSuchChannel(c.0))
    }

    pub(crate) fn bundle(&self, b: PiBundle) -> Result<&BundleEntry, PilotError> {
        self.bundles.get(b.0).ok_or(PilotError::NoSuchBundle(b.0))
    }

    /// The MPI tag channel `c`'s data travels under.
    pub(crate) fn chan_tag(c: PiChannel) -> i32 {
        c.0 as i32
    }

    /// The MPI tag bundle `b`'s tree traffic travels under (negative:
    /// reserved space, can never collide with channel tags).
    pub(crate) fn bundle_tag(b: PiBundle) -> i32 {
        -(1000 + b.0 as i32)
    }

    /// Name of the process backed by `rank` (for diagnostics).
    pub(crate) fn name_of_rank(&self, rank: usize) -> String {
        self.processes
            .iter()
            .find(|p| p.rank == rank)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| format!("rank{rank}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_spaces_are_disjoint() {
        // Channel tags are >= 0; bundle tags <= -1000; the detector tag and
        // collective tags used by cp-mpisim live in between.
        assert_eq!(Tables::chan_tag(PiChannel(0)), 0);
        assert_eq!(Tables::chan_tag(PiChannel(77)), 77);
        assert_eq!(Tables::bundle_tag(PiBundle(0)), -1000);
        assert_eq!(Tables::bundle_tag(PiBundle(5)), -1005);
    }

    #[test]
    fn lookups_reject_unknown_handles() {
        let t = Tables::default();
        assert!(t.process(PiProcess(0)).is_err());
        assert!(t.channel(PiChannel(1)).is_err());
        assert!(t.bundle(PiBundle(2)).is_err());
    }
}
