//! Pilot's integrated deadlock-detection service (`-pisvc=d`).
//!
//! The service consumes one MPI process. Application processes report
//! channel operations to it with small fire-and-forget messages: a write
//! reports [`EV_WRITE`] after sending, a read reports [`EV_READWAIT`] before
//! blocking. The detector pairs reads with writes per channel, maintains a
//! wait-for graph of genuinely-blocked readers, and when it finds a cycle
//! that survives a grace period (long enough for any in-flight satisfying
//! writes to be reported), it aborts the application with a diagnostic
//! naming the deadlocked processes — the paper's "errors such as circular
//! wait will cause the program to abort with a diagnostic message
//! identifying the deadlocked processes".
//!
//! Endpoints are not limited to MPI ranks: events carry [`DlEndpoint`]s so
//! that CellPilot Co-Pilots can report on behalf of their SPEs, and a cycle
//! crossing PPE/Co-Pilot/SPE boundaries renders every hop (e.g.
//! `spe(1,3) -> copilot(1) -> rank 0 -> spe(1,3)`). The [`WaitGraph`] is
//! deliberately table-free: each reporter computes both endpoints of the
//! edge from its own routing tables, so the same graph serves Pilot's
//! rank-only world and CellPilot's hybrid one.

use crate::error::PilotError;
use crate::table::Tables;
use cp_des::SimDuration;
use cp_mpisim::Comm;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Reserved tag for service traffic.
pub const TAG_SVC: i32 = -500;

/// Event kind: a write was posted on a channel.
pub const EV_WRITE: u8 = 0;
/// Event kind: a reader is about to block on a channel.
pub const EV_READWAIT: u8 = 1;
/// Event kind: an application process finished.
pub const EV_FINISH: u8 = 2;

/// How long a detected cycle must persist before it is declared a
/// deadlock. Covers the worst-case reporting latency of a satisfying
/// write already in flight.
pub const GRACE_US: u64 = 2_000;
/// Poll interval while confirming a suspected cycle.
pub const POLL_US: u64 = 100;

/// Fixed wire length of an encoded [`DlEvent`].
pub const EVENT_LEN: usize = 28;

/// A blocking-capable channel endpoint as seen by the deadlock detector.
///
/// MPI-visible processes are identified by rank; SPE contexts (invisible to
/// MPI) are identified by their `(node, slot)` coordinates and are reported
/// by proxy through their node's Co-Pilot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DlEndpoint {
    /// An MPI rank (a PPE process in CellPilot, any process in Pilot).
    Rank(usize),
    /// An SPE context, `spe(node, slot)`.
    Spe {
        /// Hosting node id.
        node: usize,
        /// SPE slot on that node.
        slot: usize,
    },
}

impl fmt::Display for DlEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlEndpoint::Rank(r) => write!(f, "rank {r}"),
            DlEndpoint::Spe { node, slot } => write!(f, "spe({node},{slot})"),
        }
    }
}

/// A decoded deadlock-service event.
///
/// Both endpoints are computed by the *reporter* from its own tables: the
/// detector never needs channel routing information, only the edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlEvent {
    /// One of [`EV_WRITE`], [`EV_READWAIT`], [`EV_FINISH`].
    pub kind: u8,
    /// Channel id the event concerns (ignored for [`EV_FINISH`]).
    pub chan: u32,
    /// The reading endpoint of the channel.
    pub reader: DlEndpoint,
    /// The writing endpoint of the channel.
    pub writer: DlEndpoint,
    /// For proxied reports: the Co-Pilot node relaying on behalf of the
    /// reader. Rendered as an intermediate `copilot(n)` hop in diagnostics.
    pub via: Option<u32>,
}

impl DlEvent {
    /// A finish event; the endpoint fields are unused.
    pub fn finish() -> DlEvent {
        DlEvent {
            kind: EV_FINISH,
            chan: 0,
            reader: DlEndpoint::Rank(0),
            writer: DlEndpoint::Rank(0),
            via: None,
        }
    }
}

fn put_endpoint(v: &mut Vec<u8>, ep: &DlEndpoint) {
    let (tag, a, b) = match ep {
        DlEndpoint::Rank(r) => (0u8, *r as u32, 0u32),
        DlEndpoint::Spe { node, slot } => (1u8, *node as u32, *slot as u32),
    };
    v.push(tag);
    v.extend_from_slice(&a.to_be_bytes());
    v.extend_from_slice(&b.to_be_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(bytes[at..at + 4].try_into().expect("checked length"))
}

fn get_endpoint(bytes: &[u8], at: usize) -> Result<DlEndpoint, String> {
    let a = get_u32(bytes, at + 1) as usize;
    let b = get_u32(bytes, at + 5) as usize;
    match bytes[at] {
        0 => Ok(DlEndpoint::Rank(a)),
        1 => Ok(DlEndpoint::Spe { node: a, slot: b }),
        t => Err(format!("unknown endpoint tag {t} at offset {at}")),
    }
}

/// Encode an event into its fixed [`EVENT_LEN`]-byte wire form.
pub fn encode_event(ev: &DlEvent) -> Vec<u8> {
    let mut v = Vec::with_capacity(EVENT_LEN);
    v.push(ev.kind);
    v.extend_from_slice(&ev.chan.to_be_bytes());
    put_endpoint(&mut v, &ev.reader);
    put_endpoint(&mut v, &ev.writer);
    match ev.via {
        Some(n) => {
            v.push(1);
            v.extend_from_slice(&n.to_be_bytes());
        }
        None => {
            v.push(0);
            v.extend_from_slice(&0u32.to_be_bytes());
        }
    }
    debug_assert_eq!(v.len(), EVENT_LEN);
    v
}

/// Decode an event payload, rejecting truncated or malformed bytes with
/// [`PilotError::MalformedEvent`] instead of panicking.
pub fn decode_event(bytes: &[u8]) -> Result<DlEvent, PilotError> {
    let malformed = |detail: String| PilotError::MalformedEvent {
        len: bytes.len(),
        detail,
    };
    if bytes.len() != EVENT_LEN {
        return Err(malformed(format!("expected {EVENT_LEN} bytes")));
    }
    let kind = bytes[0];
    if kind > EV_FINISH {
        return Err(malformed(format!("unknown event kind {kind}")));
    }
    let chan = get_u32(bytes, 1);
    let reader = get_endpoint(bytes, 5).map_err(&malformed)?;
    let writer = get_endpoint(bytes, 14).map_err(&malformed)?;
    let via = match bytes[23] {
        0 => None,
        1 => Some(get_u32(bytes, 24)),
        f => return Err(malformed(format!("bad via flag {f}"))),
    };
    Ok(DlEvent {
        kind,
        chan,
        reader,
        writer,
        via,
    })
}

/// A wait-for edge: `reader` (the map key) is blocked on `chan`, waiting
/// for `writer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WaitEdge {
    chan: u32,
    writer: DlEndpoint,
    via: Option<u32>,
}

/// The detector's wait-for graph over [`DlEndpoint`]s.
///
/// Feed it decoded events with [`on_event`]; a returned cycle is a
/// *suspect* that the caller must confirm after a grace period with
/// [`cycle_still_present`] (a satisfying write may still be in flight).
///
/// [`on_event`]: WaitGraph::on_event
/// [`cycle_still_present`]: WaitGraph::cycle_still_present
#[derive(Debug, Default)]
pub struct WaitGraph {
    /// Writes reported but not yet paired with a read, per channel.
    writes_avail: HashMap<u32, usize>,
    /// Reader endpoint currently blocked per channel.
    waiting: HashMap<u32, DlEndpoint>,
    /// reader -> wait-for edge.
    edges: HashMap<DlEndpoint, WaitEdge>,
    finished: usize,
}

impl WaitGraph {
    /// A fresh, empty graph.
    pub fn new() -> WaitGraph {
        WaitGraph::default()
    }

    /// Number of [`EV_FINISH`] events absorbed so far.
    pub fn finished(&self) -> usize {
        self.finished
    }

    /// True if no reader is currently blocked.
    pub fn idle(&self) -> bool {
        self.edges.is_empty()
    }

    /// Absorb one event; returns a suspected cycle (in wait-for order,
    /// first endpoint repeated at the end) if this event closed one.
    pub fn on_event(&mut self, ev: &DlEvent) -> Option<Vec<DlEndpoint>> {
        match ev.kind {
            EV_WRITE => {
                if let Some(reader) = self.waiting.remove(&ev.chan) {
                    self.edges.remove(&reader);
                } else {
                    *self.writes_avail.entry(ev.chan).or_insert(0) += 1;
                }
                None
            }
            EV_READWAIT => {
                let avail = self.writes_avail.entry(ev.chan).or_insert(0);
                if *avail > 0 {
                    *avail -= 1;
                    return None;
                }
                self.waiting.insert(ev.chan, ev.reader);
                self.edges.insert(
                    ev.reader,
                    WaitEdge {
                        chan: ev.chan,
                        writer: ev.writer,
                        via: ev.via,
                    },
                );
                self.find_cycle(ev.reader)
            }
            EV_FINISH => {
                self.finished += 1;
                None
            }
            other => panic!("unknown service event kind {other} (decode_event missed it)"),
        }
    }

    /// Follow wait-for edges from `start`; return the endpoint cycle if we
    /// come back around.
    fn find_cycle(&self, start: DlEndpoint) -> Option<Vec<DlEndpoint>> {
        let mut path = vec![start];
        let mut cur = start;
        while let Some(edge) = self.edges.get(&cur) {
            let next = edge.writer;
            if next == start {
                path.push(start);
                return Some(path);
            }
            if path.contains(&next) {
                // A cycle not involving `start`; it will be found when one
                // of its own members reports.
                return None;
            }
            path.push(next);
            cur = next;
        }
        None
    }

    /// Re-check a suspected cycle after draining newly arrived events.
    pub fn cycle_still_present(&self, cycle: &[DlEndpoint]) -> bool {
        cycle
            .windows(2)
            .all(|w| matches!(self.edges.get(&w[0]), Some(e) if e.writer == w[1]))
    }

    /// Render a confirmed cycle as diagnostic strings, naming each endpoint
    /// via `name` and inserting the `copilot(n)` relay hops recorded on the
    /// edges — e.g. `spe(1,3) -> copilot(1) -> rank 0 -> spe(1,3)`.
    pub fn render_cycle<F>(&self, cycle: &[DlEndpoint], name: F) -> Vec<String>
    where
        F: Fn(&DlEndpoint) -> String,
    {
        let mut out = Vec::new();
        for w in cycle.windows(2) {
            out.push(name(&w[0]));
            if let Some(edge) = self.edges.get(&w[0]) {
                if let Some(via) = edge.via {
                    out.push(format!("copilot({via})"));
                }
            }
        }
        if let Some(last) = cycle.last() {
            out.push(name(last));
        }
        out
    }
}

/// The service process body.
pub(crate) fn detector_main(comm: Comm, tables: Arc<Tables>) {
    let app_count = tables.processes.len();
    let mut graph = WaitGraph::new();
    let name = |ep: &DlEndpoint| match ep {
        DlEndpoint::Rank(r) => tables.name_of_rank(*r),
        other => other.to_string(),
    };
    loop {
        let msg = comm.recv(None, Some(TAG_SVC));
        let ev = match decode_event(&msg.data) {
            Ok(ev) => ev,
            Err(e) => comm.ctx().abort(&e.to_string()),
        };
        let suspect = graph.on_event(&ev);
        if graph.finished() == app_count {
            return;
        }
        if let Some(cycle) = suspect {
            // Confirmation: give in-flight satisfying writes a grace
            // period to arrive before declaring.
            let mut waited = 0u64;
            let confirmed = loop {
                while let Some((src, _tag, _dt, _count)) = comm.iprobe(None, Some(TAG_SVC)) {
                    let m = comm.recv(Some(src), Some(TAG_SVC));
                    match decode_event(&m.data) {
                        Ok(ev) => {
                            let _ = graph.on_event(&ev);
                        }
                        Err(e) => comm.ctx().abort(&e.to_string()),
                    }
                }
                if !graph.cycle_still_present(&cycle) {
                    break false;
                }
                if waited >= GRACE_US {
                    break true;
                }
                comm.ctx().advance(SimDuration::from_micros(POLL_US));
                waited += POLL_US;
            };
            if confirmed {
                let names = graph.render_cycle(&cycle, name);
                let err = PilotError::CircularWait { cycle: names };
                comm.ctx().abort(&err.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: DlEndpoint = DlEndpoint::Rank(0);
    const R1: DlEndpoint = DlEndpoint::Rank(1);

    fn ev(kind: u8, chan: u32, reader: DlEndpoint, writer: DlEndpoint) -> DlEvent {
        DlEvent {
            kind,
            chan,
            reader,
            writer,
            via: None,
        }
    }

    #[test]
    fn write_then_read_never_blocks() {
        let mut g = WaitGraph::new();
        assert!(g.on_event(&ev(EV_WRITE, 0, R1, R0)).is_none());
        assert!(g.on_event(&ev(EV_READWAIT, 0, R1, R0)).is_none());
        assert!(g.idle());
    }

    #[test]
    fn read_before_write_makes_edge_then_clears() {
        let mut g = WaitGraph::new();
        assert!(g.on_event(&ev(EV_READWAIT, 0, R1, R0)).is_none()); // worker waits on main
        assert!(!g.idle());
        assert!(g.on_event(&ev(EV_WRITE, 0, R1, R0)).is_none());
        assert!(g.idle());
    }

    #[test]
    fn mutual_reads_form_cycle() {
        let mut g = WaitGraph::new();
        // chan 0: rank0 -> rank1; chan 1: rank1 -> rank0.
        assert!(g.on_event(&ev(EV_READWAIT, 0, R1, R0)).is_none());
        let cycle = g.on_event(&ev(EV_READWAIT, 1, R0, R1));
        assert_eq!(cycle, Some(vec![R0, R1, R0]));
        assert!(g.cycle_still_present(&[R0, R1, R0]));
        // A satisfying write breaks it.
        let _ = g.on_event(&ev(EV_WRITE, 1, R0, R1));
        assert!(!g.cycle_still_present(&[R0, R1, R0]));
    }

    #[test]
    fn spe_cycle_renders_copilot_hops() {
        let mut g = WaitGraph::new();
        let spe = DlEndpoint::Spe { node: 1, slot: 3 };
        // chan 0: rank0 -> spe(1,3), reported via copilot(1);
        // chan 1: spe(1,3) -> rank0.
        let mut rw = ev(EV_READWAIT, 0, spe, R0);
        rw.via = Some(1);
        assert!(g.on_event(&rw).is_none());
        let cycle = g.on_event(&ev(EV_READWAIT, 1, R0, spe)).expect("cycle");
        assert_eq!(cycle, vec![R0, spe, R0]);
        let names = g.render_cycle(&cycle, |e| e.to_string());
        assert_eq!(names, vec!["rank 0", "spe(1,3)", "copilot(1)", "rank 0"]);
    }

    #[test]
    fn event_encoding_roundtrip() {
        for ep in [DlEndpoint::Rank(7), DlEndpoint::Spe { node: 2, slot: 5 }] {
            for via in [None, Some(3u32)] {
                let mut e = ev(EV_READWAIT, 0xDEAD, ep, DlEndpoint::Rank(1));
                e.via = via;
                let bytes = encode_event(&e);
                assert_eq!(bytes.len(), EVENT_LEN);
                assert_eq!(decode_event(&bytes), Ok(e));
            }
        }
        let fin = DlEvent::finish();
        assert_eq!(decode_event(&encode_event(&fin)), Ok(fin));
    }

    #[test]
    fn decode_rejects_truncated_bytes() {
        // The old implementation panicked here; now every malformed shape
        // is a typed error.
        for len in 0..EVENT_LEN {
            let bytes = vec![0u8; len];
            match decode_event(&bytes) {
                Err(PilotError::MalformedEvent { len: l, .. }) => assert_eq!(l, len),
                other => panic!("len {len}: expected MalformedEvent, got {other:?}"),
            }
        }
    }

    #[test]
    fn decode_rejects_bad_fields() {
        let good = encode_event(&ev(EV_WRITE, 1, R0, R1));
        for (at, bad, what) in [
            (0usize, 9u8, "kind"),
            (5, 7, "reader tag"),
            (14, 7, "writer tag"),
            (23, 2, "via flag"),
        ] {
            let mut b = good.clone();
            b[at] = bad;
            assert!(
                matches!(decode_event(&b), Err(PilotError::MalformedEvent { .. })),
                "corrupting {what} must fail"
            );
        }
        // Oversized payloads are rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            decode_event(&long),
            Err(PilotError::MalformedEvent { .. })
        ));
    }
}
