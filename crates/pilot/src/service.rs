//! Pilot's integrated deadlock-detection service (`-pisvc=d`).
//!
//! The service consumes one MPI process. Application processes report
//! channel operations to it with small fire-and-forget messages: a write
//! reports `EV_WRITE` after sending, a read reports `EV_READWAIT` before
//! blocking. The detector pairs reads with writes per channel, maintains a
//! wait-for graph of genuinely-blocked readers, and when it finds a cycle
//! that survives a grace period (long enough for any in-flight satisfying
//! writes to be reported), it aborts the application with a diagnostic
//! naming the deadlocked processes — the paper's "errors such as circular
//! wait will cause the program to abort with a diagnostic message
//! identifying the deadlocked processes".

use crate::error::PilotError;
use crate::table::Tables;
use cp_des::SimDuration;
use cp_mpisim::Comm;
use std::collections::HashMap;
use std::sync::Arc;

/// Reserved tag for service traffic.
pub(crate) const TAG_SVC: i32 = -500;

/// Event kinds.
pub(crate) const EV_WRITE: u8 = 0;
pub(crate) const EV_READWAIT: u8 = 1;
pub(crate) const EV_FINISH: u8 = 2;

/// Encode an event payload.
pub(crate) fn encode_event(kind: u8, id: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(5);
    v.push(kind);
    v.extend_from_slice(&id.to_be_bytes());
    v
}

fn decode_event(bytes: &[u8]) -> (u8, u32) {
    (
        bytes[0],
        u32::from_be_bytes(bytes[1..5].try_into().expect("event payload")),
    )
}

/// How long a detected cycle must persist before it is declared a
/// deadlock. Covers the worst-case reporting latency of a satisfying
/// write already in flight.
const GRACE_US: u64 = 2_000;
/// Poll interval while confirming a suspected cycle.
const POLL_US: u64 = 100;

struct Detector {
    tables: Arc<Tables>,
    /// Writes reported but not yet paired with a read, per channel.
    writes_avail: HashMap<usize, usize>,
    /// Reader rank currently blocked per channel.
    waiting: HashMap<usize, usize>,
    /// reader rank -> (channel, writer rank) wait-for edge.
    edges: HashMap<usize, (usize, usize)>,
    finished: usize,
}

impl Detector {
    fn on_event(&mut self, src: usize, kind: u8, id: u32) -> Option<Vec<usize>> {
        match kind {
            EV_WRITE => {
                let chan = id as usize;
                if let Some(reader) = self.waiting.remove(&chan) {
                    self.edges.remove(&reader);
                } else {
                    *self.writes_avail.entry(chan).or_insert(0) += 1;
                }
                None
            }
            EV_READWAIT => {
                let chan = id as usize;
                let avail = self.writes_avail.entry(chan).or_insert(0);
                if *avail > 0 {
                    *avail -= 1;
                    return None;
                }
                let writer_proc = self.tables.channels[chan].from;
                let writer_rank = self.tables.processes[writer_proc.0].rank;
                self.waiting.insert(chan, src);
                self.edges.insert(src, (chan, writer_rank));
                self.find_cycle(src)
            }
            EV_FINISH => {
                self.finished += 1;
                None
            }
            other => panic!("unknown service event kind {other}"),
        }
    }

    /// Follow wait-for edges from `start`; return the rank cycle if we
    /// come back around.
    fn find_cycle(&self, start: usize) -> Option<Vec<usize>> {
        let mut path = vec![start];
        let mut cur = start;
        while let Some(&(_chan, next)) = self.edges.get(&cur) {
            if next == start {
                path.push(start);
                return Some(path);
            }
            if path.contains(&next) {
                // A cycle not involving `start`; it will be found when one
                // of its own members reports.
                return None;
            }
            path.push(next);
            cur = next;
        }
        None
    }

    fn cycle_still_present(&self, cycle: &[usize]) -> bool {
        cycle
            .windows(2)
            .all(|w| matches!(self.edges.get(&w[0]), Some(&(_, n)) if n == w[1]))
    }
}

/// The service process body.
pub(crate) fn detector_main(comm: Comm, tables: Arc<Tables>) {
    let app_count = tables.processes.len();
    let mut det = Detector {
        tables: tables.clone(),
        writes_avail: HashMap::new(),
        waiting: HashMap::new(),
        edges: HashMap::new(),
        finished: 0,
    };
    loop {
        let msg = comm.recv(None, Some(TAG_SVC));
        let (kind, id) = decode_event(&msg.data);
        let suspect = det.on_event(msg.src, kind, id);
        if det.finished == app_count {
            return;
        }
        if let Some(cycle) = suspect {
            // Confirmation: give in-flight satisfying writes a grace
            // period to arrive before declaring.
            let mut waited = 0u64;
            let confirmed = loop {
                while let Some((src, _tag, _dt, count)) = comm.iprobe(None, Some(TAG_SVC)) {
                    let _ = count;
                    let m = comm.recv(Some(src), Some(TAG_SVC));
                    let (k, i) = decode_event(&m.data);
                    let _ = det.on_event(m.src, k, i);
                }
                if !det.cycle_still_present(&cycle) {
                    break false;
                }
                if waited >= GRACE_US {
                    break true;
                }
                comm.ctx().advance(SimDuration::from_micros(POLL_US));
                waited += POLL_US;
            };
            if confirmed {
                let names: Vec<String> = cycle.iter().map(|&r| tables.name_of_rank(r)).collect();
                let err = PilotError::CircularWait { cycle: names };
                comm.ctx().abort(&err.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ChannelEntry, PiProcess, ProcessEntry};

    fn tables_two_procs_two_chans() -> Arc<Tables> {
        let mut t = Tables::default();
        t.processes.push(ProcessEntry {
            name: "main".into(),
            rank: 0,
            index: 0,
        });
        t.processes.push(ProcessEntry {
            name: "worker".into(),
            rank: 1,
            index: 0,
        });
        // chan 0: main -> worker; chan 1: worker -> main.
        t.channels.push(ChannelEntry {
            from: PiProcess(0),
            to: PiProcess(1),
            bundle: None,
        });
        t.channels.push(ChannelEntry {
            from: PiProcess(1),
            to: PiProcess(0),
            bundle: None,
        });
        Arc::new(t)
    }

    fn det() -> Detector {
        Detector {
            tables: tables_two_procs_two_chans(),
            writes_avail: HashMap::new(),
            waiting: HashMap::new(),
            edges: HashMap::new(),
            finished: 0,
        }
    }

    #[test]
    fn write_then_read_never_blocks() {
        let mut d = det();
        assert!(d.on_event(0, EV_WRITE, 0).is_none());
        assert!(d.on_event(1, EV_READWAIT, 0).is_none());
        assert!(d.edges.is_empty());
    }

    #[test]
    fn read_before_write_makes_edge_then_clears() {
        let mut d = det();
        assert!(d.on_event(1, EV_READWAIT, 0).is_none()); // worker waits on main
        assert_eq!(d.edges.get(&1), Some(&(0, 0)));
        assert!(d.on_event(0, EV_WRITE, 0).is_none());
        assert!(d.edges.is_empty());
    }

    #[test]
    fn mutual_reads_form_cycle() {
        let mut d = det();
        assert!(d.on_event(1, EV_READWAIT, 0).is_none()); // worker waits on main (chan0)
        let cycle = d.on_event(0, EV_READWAIT, 1); // main waits on worker (chan1)
        assert_eq!(cycle, Some(vec![0, 1, 0]));
        assert!(d.cycle_still_present(&[0, 1, 0]));
        // A satisfying write breaks it.
        let _ = d.on_event(1, EV_WRITE, 1);
        assert!(!d.cycle_still_present(&[0, 1, 0]));
    }

    #[test]
    fn event_encoding_roundtrip() {
        let e = encode_event(EV_READWAIT, 0xDEAD);
        assert_eq!(decode_event(&e), (EV_READWAIT, 0xDEAD));
    }
}
