//! The execution phase: the per-process `Pilot` handle with
//! `PI_Write`/`PI_Read`, bundle operations, and Pilot's run-time
//! architecture enforcement.

use crate::error::PilotError;
use crate::fmt::parse_format;
use crate::service::{self, TAG_SVC};
use crate::table::{BundleUsage, PiBundle, PiChannel, PiProcess, Tables};
use crate::value::{
    check_against_format, check_read_format, pack_message, payload_bytes, unpack_message, PiScalar,
    PiValue,
};
use cp_des::{IncidentCategory, ProcCtx, SimDuration};
use cp_mpisim::{Comm, Datatype, MpiFault};
use std::sync::Arc;

/// Pilot-layer cost model: what the library's own bookkeeping (format
/// interpretation, table checks, message packing) costs per call and per
/// payload byte. Calibrated from Table II type 1: CellPilot 105/173 µs vs
/// raw MPI 98/160 µs ⇒ ≈ 3.5 µs + 0.004 µs/B per side.
#[derive(Debug, Clone, PartialEq)]
pub struct PilotCosts {
    /// Fixed cost per `PI_Write`/`PI_Read`/bundle call, µs.
    pub op_us: f64,
    /// Per payload byte (format-driven packing), µs/B.
    pub per_byte_us: f64,
}

impl Default for PilotCosts {
    fn default() -> Self {
        PilotCosts {
            op_us: 3.5,
            per_byte_us: 0.004,
        }
    }
}

/// Internal barrier tag for `PI_StopMain`.
const TAG_FINI: i32 = -600;

/// One logged channel call (`-pisvc=c`).
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// Virtual completion time.
    pub at: cp_des::SimTime,
    /// Calling process name.
    pub process: String,
    /// "write", "read", "broadcast", "gather", or "select".
    pub op: &'static str,
    /// Channel or bundle id.
    pub subject: usize,
}

/// Shared call-log sink.
#[derive(Clone, Default)]
pub struct CallLog {
    inner: Option<std::sync::Arc<parking_lot::Mutex<Vec<CallRecord>>>>,
}

impl CallLog {
    pub(crate) fn new(enabled: bool) -> CallLog {
        CallLog {
            inner: enabled.then(|| std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()))),
        }
    }

    fn record(&self, at: cp_des::SimTime, process: &str, op: &'static str, subject: usize) {
        if let Some(sink) = &self.inner {
            sink.lock().push(CallRecord {
                at,
                process: process.to_string(),
                op,
                subject,
            });
        }
    }

    pub(crate) fn take(&self) -> Vec<CallRecord> {
        match &self.inner {
            Some(sink) => {
                let mut v = std::mem::take(&mut *sink.lock());
                v.sort_by_key(|r| r.at);
                v
            }
            None => Vec::new(),
        }
    }
}

/// A process's handle on the running Pilot application.
pub struct Pilot {
    comm: Comm,
    tables: Arc<Tables>,
    costs: PilotCosts,
    me: PiProcess,
    log: CallLog,
    deadline: Option<SimDuration>,
}

impl Pilot {
    pub(crate) fn new(
        comm: Comm,
        tables: Arc<Tables>,
        costs: PilotCosts,
        me: PiProcess,
        log: CallLog,
        deadline: Option<SimDuration>,
    ) -> Pilot {
        Pilot {
            comm,
            tables,
            costs,
            me,
            log,
            deadline,
        }
    }

    /// This process's handle.
    pub fn process(&self) -> PiProcess {
        self.me
    }

    /// This process's configured name.
    pub fn name(&self) -> String {
        self.tables.processes[self.me.0].name.clone()
    }

    /// Total Pilot processes (including `PI_MAIN`).
    pub fn process_count(&self) -> usize {
        self.tables.processes.len()
    }

    /// The simulated-process context (for modelling compute time with
    /// `ctx().advance(..)`).
    pub fn ctx(&self) -> &ProcCtx {
        self.comm.ctx()
    }

    /// The underlying MPI communicator (diagnostics / advanced use).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    fn charge(&self, bytes: usize) {
        let us = self.costs.op_us + bytes as f64 * self.costs.per_byte_us;
        self.ctx().advance(SimDuration::from_micros_f64(us));
    }

    fn svc_event(&self, ev: service::DlEvent) {
        if let Some(det) = self.tables.detector_rank {
            let payload = service::encode_event(&ev);
            let n = payload.len();
            self.comm
                .send_bytes(det, TAG_SVC, Datatype::Byte, n, payload);
        }
    }

    /// Build a write/read-wait event for `chan`, resolving both channel
    /// endpoints to their MPI ranks (Pilot processes are always ranks).
    fn chan_event(&self, kind: u8, chan: PiChannel) -> service::DlEvent {
        let entry = &self.tables.channels[chan.0];
        service::DlEvent {
            kind,
            chan: chan.0 as u32,
            reader: service::DlEndpoint::Rank(self.tables.processes[entry.to.0].rank),
            writer: service::DlEndpoint::Rank(self.tables.processes[entry.from.0].rank),
            via: None,
        }
    }

    /// `PI_Write`: send `values` described by `format` on `chan`. Only the
    /// channel's writer may call this.
    pub fn write(
        &self,
        chan: PiChannel,
        format: &str,
        values: &[PiValue],
    ) -> Result<(), PilotError> {
        let entry = self.tables.channel(chan)?;
        if entry.from != self.me {
            return Err(PilotError::NotWriter {
                channel: chan.0,
                caller: self.name(),
                writer: self.tables.processes[entry.from.0].name.clone(),
            });
        }
        let conv = parse_format(format)?;
        check_against_format(&conv, values)?;
        let bytes = pack_message(values);
        self.charge(payload_bytes(values));
        let dst = self.tables.processes[entry.to.0].rank;
        let n = bytes.len();
        self.comm
            .try_send_bytes(dst, Tables::chan_tag(chan), Datatype::Byte, n, bytes)
            .map_err(|fault| self.fault_to_pilot(chan, entry.to, fault))?;
        self.svc_event(self.chan_event(service::EV_WRITE, chan));
        self.log
            .record(self.ctx().now(), &self.name(), "write", chan.0);
        Ok(())
    }

    /// Map an MPI-layer fault on `chan` (whose far endpoint is `peer`) to
    /// the Pilot error, recording a structured incident in the
    /// [`cp_des::SimReport`] so degraded runs are observable.
    fn fault_to_pilot(&self, chan: PiChannel, peer: PiProcess, fault: MpiFault) -> PilotError {
        let peer_name = self.tables.processes[peer.0].name.clone();
        let err = match fault {
            MpiFault::PeerLost { .. } => PilotError::PeerLost {
                channel: chan.0,
                peer: peer_name,
            },
            MpiFault::Timeout { what } => PilotError::Timeout {
                channel: chan.0,
                detail: what,
            },
            MpiFault::SendLost { attempts, .. } => PilotError::Timeout {
                channel: chan.0,
                detail: format!("message to '{peer_name}' lost after {attempts} send attempts"),
            },
        };
        let category = match err {
            PilotError::PeerLost { .. } => IncidentCategory::PeerLost,
            _ => IncidentCategory::ChannelTimeout,
        };
        self.ctx()
            .report_incident(category, &format!("process '{}': {err}", self.name()));
        err
    }

    /// `PI_Read`: receive the next message on `chan`, verifying it against
    /// `format`. Only the channel's reader may call this. If the channel
    /// belongs to a broadcast bundle, this participates in the broadcast
    /// (only the broadcaster calls [`Pilot::broadcast`]; every receiver
    /// just reads its own channel — Pilot's MPMD convention).
    pub fn read(&self, chan: PiChannel, format: &str) -> Result<Vec<PiValue>, PilotError> {
        let entry = self.tables.channel(chan)?;
        if entry.to != self.me {
            return Err(PilotError::NotReader {
                channel: chan.0,
                caller: self.name(),
                reader: self.tables.processes[entry.to.0].name.clone(),
            });
        }
        let conv = parse_format(format)?;
        let raw = if let Some(b) = entry.bundle {
            if self.tables.bundle(b)?.usage == BundleUsage::Broadcast {
                self.bcast_tree_recv(b)?
            } else {
                self.p2p_recv(chan, entry.from)?
            }
        } else {
            self.p2p_recv(chan, entry.from)?
        };
        let values = unpack_message(&raw).expect("well-formed Pilot wire message");
        let segs: Vec<(Datatype, usize)> = values.iter().map(|v| (v.dtype(), v.len())).collect();
        check_read_format(&conv, &segs).map_err(|detail| PilotError::FormatMismatch {
            channel: chan.0,
            detail,
        })?;
        self.charge(payload_bytes(&values));
        self.log
            .record(self.ctx().now(), &self.name(), "read", chan.0);
        Ok(values)
    }

    /// Typed `PI_Write`: send one slice of a single scalar type without
    /// spelling the Pilot format string — `cp.write_slice::<i32>(chan, &v)`
    /// is `cp.write(chan, "%*d", ..)`.
    pub fn write_slice<T: PiScalar>(&self, chan: PiChannel, data: &[T]) -> Result<(), PilotError> {
        let format = format!("%*{}", T::CONV);
        self.write(chan, &format, &[T::wrap(data.to_vec())])
    }

    /// Typed `PI_Read`: receive one message of a single scalar type as a
    /// `Vec<T>` — `cp.read_vec::<f64>(chan)` is `cp.read(chan, "%*lf")`.
    pub fn read_vec<T: PiScalar>(&self, chan: PiChannel) -> Result<Vec<T>, PilotError> {
        let format = format!("%*{}", T::CONV);
        let mut values = self.read(chan, &format)?;
        let v = values.pop().expect("format has exactly one segment");
        Ok(T::unwrap(v).expect("segment dtype verified against format"))
    }

    fn p2p_recv(&self, chan: PiChannel, from: PiProcess) -> Result<Vec<u8>, PilotError> {
        // Deadline-bounded reads cannot participate in a deadlock (they
        // always come back), and a timed-out read would leave a stale edge
        // in the wait-for graph — so only unbounded reads report.
        if self.deadline.is_none() {
            self.svc_event(self.chan_event(service::EV_READWAIT, chan));
        }
        let src = self.tables.processes[from.0].rank;
        let tag = Some(Tables::chan_tag(chan));
        let msg = match self.deadline {
            None => self.comm.recv(Some(src), tag),
            Some(d) => self
                .comm
                .try_recv_deadline(Some(src), tag, d)
                .map_err(|fault| self.fault_to_pilot(chan, from, fault))?,
        };
        Ok(msg.data)
    }

    /// Receive leg of the binomial broadcast tree for bundle `b`: receive
    /// from the parent, forward to children, return the raw message.
    fn bcast_tree_recv(&self, b: PiBundle) -> Result<Vec<u8>, PilotError> {
        let bundle = self.tables.bundle(b)?;
        let members = self.bundle_member_ranks(b)?;
        let my_rank = self.tables.processes[self.me.0].rank;
        let my_idx = members
            .iter()
            .position(|&r| r == my_rank)
            .expect("reader is a bundle member");
        debug_assert!(my_idx > 0, "broadcaster never calls read");
        let _ = bundle;
        let tag = Tables::bundle_tag(b);
        // Parent: clear my lowest set bit.
        let parent = my_idx & (my_idx - 1);
        let msg = self.comm.recv(Some(members[parent]), Some(tag));
        self.forward_bcast(&members, my_idx, tag, &msg.data);
        Ok(msg.data)
    }

    fn forward_bcast(&self, members: &[usize], my_idx: usize, tag: i32, data: &[u8]) {
        // Children of `my_idx` in a binomial tree: my_idx | mask for each
        // mask above my lowest set bit (or all masks for the root).
        let mut mask = 1usize;
        let low = if my_idx == 0 {
            usize::MAX
        } else {
            my_idx & my_idx.wrapping_neg()
        };
        while mask < members.len() {
            if mask >= low {
                break;
            }
            let child = my_idx | mask;
            if child != my_idx && child < members.len() {
                self.comm.send_bytes(
                    members[child],
                    tag,
                    Datatype::Byte,
                    data.len(),
                    data.to_vec(),
                );
            }
            mask <<= 1;
        }
    }

    fn bundle_member_ranks(&self, b: PiBundle) -> Result<Vec<usize>, PilotError> {
        let bundle = self.tables.bundle(b)?;
        let mut members = vec![self.tables.processes[bundle.common.0].rank];
        for &c in &bundle.channels {
            let e = self.tables.channel(c)?;
            let other = if e.from == bundle.common {
                e.to
            } else {
                e.from
            };
            members.push(self.tables.processes[other.0].rank);
        }
        Ok(members)
    }

    /// `PI_Broadcast`: send `values` to every reader of the bundle's
    /// channels. Only the bundle's common endpoint (the writer) calls this;
    /// receivers each call [`Pilot::read`] on their own channel.
    pub fn broadcast(
        &self,
        b: PiBundle,
        format: &str,
        values: &[PiValue],
    ) -> Result<(), PilotError> {
        let bundle = self.tables.bundle(b)?;
        if bundle.usage != BundleUsage::Broadcast {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: "PI_Broadcast on a non-broadcast bundle".into(),
            });
        }
        if bundle.common != self.me {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: format!(
                    "only the common endpoint '{}' may broadcast",
                    self.tables.processes[bundle.common.0].name
                ),
            });
        }
        let conv = parse_format(format)?;
        check_against_format(&conv, values)?;
        let data = pack_message(values);
        self.charge(payload_bytes(values));
        let members = self.bundle_member_ranks(b)?;
        self.forward_bcast(&members, 0, Tables::bundle_tag(b), &data);
        for &c in &bundle.channels {
            self.svc_event(self.chan_event(service::EV_WRITE, c));
        }
        self.log
            .record(self.ctx().now(), &self.name(), "broadcast", b.0);
        Ok(())
    }

    /// `PI_Gather`: collect one message from every channel of the bundle,
    /// in channel order. Only the common endpoint (the reader) calls this;
    /// writers each call [`Pilot::write`] on their own channel.
    pub fn gather(&self, b: PiBundle, format: &str) -> Result<Vec<Vec<PiValue>>, PilotError> {
        let bundle = self.tables.bundle(b)?.clone();
        if bundle.usage != BundleUsage::Gather {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: "PI_Gather on a non-gather bundle".into(),
            });
        }
        if bundle.common != self.me {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: format!(
                    "only the common endpoint '{}' may gather",
                    self.tables.processes[bundle.common.0].name
                ),
            });
        }
        let conv = parse_format(format)?;
        let mut out = Vec::with_capacity(bundle.channels.len());
        for &c in &bundle.channels {
            let entry = self.tables.channel(c)?;
            let raw = self.p2p_recv(c, entry.from)?;
            let values = unpack_message(&raw).expect("well-formed Pilot wire message");
            let segs: Vec<(Datatype, usize)> =
                values.iter().map(|v| (v.dtype(), v.len())).collect();
            check_read_format(&conv, &segs).map_err(|detail| PilotError::FormatMismatch {
                channel: c.0,
                detail,
            })?;
            self.charge(payload_bytes(&values));
            out.push(values);
        }
        self.log
            .record(self.ctx().now(), &self.name(), "gather", b.0);
        Ok(out)
    }

    /// `PI_Select`: block until some channel of the bundle has data ready
    /// to read, and return that channel (so a read on it will not block).
    pub fn select(&self, b: PiBundle) -> Result<PiChannel, PilotError> {
        let bundle = self.tables.bundle(b)?;
        if bundle.usage != BundleUsage::Select {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: "PI_Select on a non-select bundle".into(),
            });
        }
        if bundle.common != self.me {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: "only the common endpoint may select".into(),
            });
        }
        let tags: Vec<i32> = bundle
            .channels
            .iter()
            .map(|&c| Tables::chan_tag(c))
            .collect();
        self.charge(0);
        let (_, tag, _, _) = self
            .comm
            .probe_match("PI_Select", |e| tags.contains(&e.tag));
        self.log
            .record(self.ctx().now(), &self.name(), "select", b.0);
        Ok(PiChannel(tag as usize))
    }

    /// `PI_TrySelect`: non-blocking [`Pilot::select`]; `None` if no channel
    /// has data.
    pub fn try_select(&self, b: PiBundle) -> Result<Option<PiChannel>, PilotError> {
        let bundle = self.tables.bundle(b)?;
        if bundle.usage != BundleUsage::Select {
            return Err(PilotError::BundleMisuse {
                bundle: b.0,
                detail: "PI_TrySelect on a non-select bundle".into(),
            });
        }
        let tags: Vec<i32> = bundle
            .channels
            .iter()
            .map(|&c| Tables::chan_tag(c))
            .collect();
        self.charge(0);
        Ok(self
            .comm
            .iprobe_match(|e| tags.contains(&e.tag))
            .map(|(_, tag, _, _)| PiChannel(tag as usize)))
    }

    /// `PI_ChannelHasData`: non-blocking check whether a read on `chan`
    /// would find a message waiting.
    pub fn channel_has_data(&self, chan: PiChannel) -> Result<bool, PilotError> {
        let entry = self.tables.channel(chan)?;
        if entry.to != self.me {
            return Err(PilotError::NotReader {
                channel: chan.0,
                caller: self.name(),
                reader: self.tables.processes[entry.to.0].name.clone(),
            });
        }
        let src = self.tables.processes[entry.from.0].rank;
        self.charge(0);
        Ok(self
            .comm
            .iprobe(Some(src), Some(Tables::chan_tag(chan)))
            .is_some())
    }

    /// End-of-execution synchronization (`PI_StopMain`): all application
    /// processes barrier together, and the deadlock service (if running) is
    /// told to shut down. Called automatically when a process function or
    /// `main` returns.
    pub(crate) fn finish(&self) {
        self.svc_event(service::DlEvent::finish());
        // Linear barrier over application ranks (rank 0 collects, then
        // releases). Perf is irrelevant here; determinism is not.
        //
        // Ranks with a death scheduled in the fault plan are excluded
        // symmetrically: rank 0 does not wait for them, and they do not
        // enter the barrier (their reaper may not have fired yet, but both
        // sides consult the same plan, so the barrier stays consistent and
        // the survivors are never wedged on a corpse).
        let plan = self.comm.fault_plan();
        let dead = |r: usize| plan.death_of(r).is_some();
        let app_ranks: Vec<usize> = self.tables.processes.iter().map(|p| p.rank).collect();
        let my_rank = self.tables.processes[self.me.0].rank;
        if dead(my_rank) {
            return;
        }
        if my_rank == 0 {
            for &r in &app_ranks {
                if r != 0 && !dead(r) {
                    let _ = self.comm.recv(Some(r), Some(TAG_FINI));
                }
            }
            for &r in &app_ranks {
                if r != 0 && !dead(r) {
                    self.comm
                        .send_bytes(r, TAG_FINI, Datatype::Byte, 0, Vec::new());
                }
            }
        } else {
            self.comm
                .send_bytes(0, TAG_FINI, Datatype::Byte, 0, Vec::new());
            let _ = self.comm.recv(Some(0), Some(TAG_FINI));
        }
    }

    /// Abort the application with a Pilot-style diagnostic carrying the
    /// source location of the offending call.
    pub fn abort_loc(&self, err: &PilotError, file: &str, line: u32) -> ! {
        self.ctx().abort(&format!(
            "[{}:{}] in process '{}': {}",
            file,
            line,
            self.name(),
            err
        ));
    }
}

/// `PI_Write` with Pilot-style abort-on-misuse: captures the call site so
/// errors are "reported by source file and line number".
#[macro_export]
macro_rules! pi_write {
    ($pilot:expr, $chan:expr, $fmt:expr $(, $val:expr)* $(,)?) => {
        match $pilot.write($chan, $fmt, &[$($crate::PiValue::from($val)),*]) {
            Ok(()) => (),
            Err(e) => $pilot.abort_loc(&e, file!(), line!()),
        }
    };
}

/// `PI_Read` with Pilot-style abort-on-misuse; returns `Vec<PiValue>`.
#[macro_export]
macro_rules! pi_read {
    ($pilot:expr, $chan:expr, $fmt:expr) => {
        match $pilot.read($chan, $fmt) {
            Ok(v) => v,
            Err(e) => $pilot.abort_loc(&e, file!(), line!()),
        }
    };
}
