//! Pilot error reporting.
//!
//! One of the benefits the paper claims for the Pilot approach is "the
//! elimination of categories of common parallel programming errors", with
//! API misuse "reported by source file and line number". The [`pi_write!`]
//! and [`pi_read!`] macros reproduce that: they capture `file!()`/`line!()`
//! and abort the simulated application with a Pilot-style diagnostic when a
//! call is invalid.
//!
//! [`pi_write!`]: crate::pi_write
//! [`pi_read!`]: crate::pi_read

use crate::fmt::FmtError;
use crate::value::MatchError;
use std::fmt;

/// Everything that can go wrong in a Pilot call.
#[derive(Debug, Clone, PartialEq)]
pub enum PilotError {
    /// `PI_CreateProcess` when every MPI rank is already assigned.
    TooManyProcesses {
        /// Ranks the `mpirun` equivalent made available.
        available: usize,
    },
    /// A channel id that was never created.
    NoSuchChannel(usize),
    /// A bundle id that was never created.
    NoSuchBundle(usize),
    /// A process id that was never created.
    NoSuchProcess(usize),
    /// Writing on a channel this process is not the writer of.
    NotWriter {
        /// The channel id.
        channel: usize,
        /// The offending process.
        caller: String,
        /// The configured writer.
        writer: String,
    },
    /// Reading on a channel this process is not the reader of.
    NotReader {
        /// The channel id.
        channel: usize,
        /// The offending process.
        caller: String,
        /// The configured reader.
        reader: String,
    },
    /// A malformed format string.
    Format(FmtError),
    /// Supplied values do not satisfy the format.
    Args(MatchError),
    /// The reader's format disagrees with what the writer sent.
    FormatMismatch {
        /// The channel id.
        channel: usize,
        /// The disagreement.
        detail: MatchError,
    },
    /// Both endpoints of a channel are the same process.
    SelfChannel,
    /// Bundle channels do not share the required common endpoint.
    BundleCommonEndpoint,
    /// A channel was placed in more than one bundle.
    ChannelAlreadyBundled(usize),
    /// An empty bundle.
    EmptyBundle,
    /// A bundle operation invoked by a process other than the common
    /// endpoint, or the wrong operation for the bundle's usage.
    BundleMisuse {
        /// The bundle id.
        bundle: usize,
        /// What was wrong.
        detail: String,
    },
    /// The deadlock-detection service found a circular wait.
    CircularWait {
        /// Process names forming the cycle, in wait-for order.
        cycle: Vec<String>,
    },
    /// A channel operation missed its deadline or exhausted its retry
    /// budget without the peer being known dead.
    Timeout {
        /// The channel id.
        channel: usize,
        /// What ran out of time (operation and bound).
        detail: String,
    },
    /// The peer process of a channel was lost to an injected fault.
    PeerLost {
        /// The channel id.
        channel: usize,
        /// Name of the lost peer process.
        peer: String,
    },
    /// A deadlock-service event payload that could not be decoded (short
    /// buffer, unknown event kind, or bad endpoint tag).
    MalformedEvent {
        /// Bytes received.
        len: usize,
        /// What was wrong with them.
        detail: String,
    },
}

impl fmt::Display for PilotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PilotError::TooManyProcesses { available } => write!(
                f,
                "PI_CreateProcess: all {available} MPI processes already assigned \
                 (launch with more ranks)"
            ),
            PilotError::NoSuchChannel(id) => write!(f, "no such channel (id {id})"),
            PilotError::NoSuchBundle(id) => write!(f, "no such bundle (id {id})"),
            PilotError::NoSuchProcess(id) => write!(f, "no such process (id {id})"),
            PilotError::NotWriter {
                channel,
                caller,
                writer,
            } => write!(
                f,
                "PI_Write: process '{caller}' is not the writer of channel {channel} \
                 (writer is '{writer}')"
            ),
            PilotError::NotReader {
                channel,
                caller,
                reader,
            } => write!(
                f,
                "PI_Read: process '{caller}' is not the reader of channel {channel} \
                 (reader is '{reader}')"
            ),
            PilotError::Format(e) => write!(f, "bad format string: {e}"),
            PilotError::Args(e) => write!(f, "arguments do not satisfy format: {e}"),
            PilotError::FormatMismatch { channel, detail } => write!(
                f,
                "PI_Read on channel {channel}: reader format disagrees with writer: {detail}"
            ),
            PilotError::SelfChannel => {
                write!(f, "PI_CreateChannel: endpoints must be distinct processes")
            }
            PilotError::BundleCommonEndpoint => write!(
                f,
                "PI_CreateBundle: channels must share a common endpoint on the bundle side"
            ),
            PilotError::ChannelAlreadyBundled(id) => {
                write!(
                    f,
                    "PI_CreateBundle: channel {id} already belongs to a bundle"
                )
            }
            PilotError::EmptyBundle => write!(f, "PI_CreateBundle: no channels given"),
            PilotError::BundleMisuse { bundle, detail } => {
                write!(f, "bundle {bundle} misuse: {detail}")
            }
            PilotError::CircularWait { cycle } => {
                write!(
                    f,
                    "DEADLOCK: circular wait detected: {}",
                    cycle.join(" -> ")
                )
            }
            PilotError::Timeout { channel, detail } => {
                write!(f, "channel {channel} operation timed out: {detail}")
            }
            PilotError::PeerLost { channel, peer } => {
                write!(f, "channel {channel}: peer process '{peer}' was lost")
            }
            PilotError::MalformedEvent { len, detail } => {
                write!(
                    f,
                    "malformed deadlock-service event ({len} bytes): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for PilotError {}

impl From<FmtError> for PilotError {
    fn from(e: FmtError) -> Self {
        PilotError::Format(e)
    }
}

impl From<MatchError> for PilotError {
    fn from(e: MatchError) -> Self {
        PilotError::Args(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offenders() {
        let e = PilotError::NotWriter {
            channel: 3,
            caller: "worker2".into(),
            writer: "main".into(),
        };
        let s = e.to_string();
        assert!(s.contains("worker2") && s.contains("main") && s.contains("channel 3"));
    }

    #[test]
    fn circular_wait_lists_cycle() {
        let e = PilotError::CircularWait {
            cycle: vec!["a".into(), "b".into(), "a".into()],
        };
        assert_eq!(
            e.to_string(),
            "DEADLOCK: circular wait detected: a -> b -> a"
        );
    }
}
