//! The configuration phase: declaring the static process/channel
//! architecture, then launching the execution phase.
//!
//! Mirrors Pilot's two-phase model. `PilotConfig` plays the role of the
//! code between `PI_Configure` and `PI_StartAll`: it creates processes
//! (each bound to an MPI rank and a function), channels between process
//! pairs, and bundles. [`PilotConfig::run`] is `PI_StartAll`: every process
//! begins executing its function, rank 0 (`PI_MAIN`) runs the supplied
//! `main` closure, and when every function has returned the application
//! synchronizes on an internal barrier and the simulation ends
//! (`PI_StopMain`).

use crate::error::PilotError;
use crate::runtime::{Pilot, PilotCosts};
use crate::service;
use crate::table::{
    BundleEntry, BundleUsage, ChannelEntry, PiBundle, PiChannel, PiProcess, ProcessEntry, Tables,
};
use cp_des::{Backend, SimDuration, SimError, SimReport};
use cp_mpisim::{MpiCosts, MpiWorld};
use cp_native::Runner;
use cp_simnet::{ClusterSpec, FaultPlan, NodeId, RetryPolicy};
use std::sync::Arc;

/// Options for a Pilot application (the `-pisvc=` command-line options).
///
/// Construct either field-style (`PilotOpts { call_log: true,
/// ..Default::default() }`) or with the chainable `with_*` builders:
///
/// ```
/// use cp_pilot::PilotOpts;
/// use cp_des::SimDuration;
///
/// let opts = PilotOpts::new()
///     .with_deadlock_service()
///     .with_channel_timeout(SimDuration::from_millis(5));
/// assert!(opts.deadlock_detection);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PilotOpts {
    /// Enable the deadlock-detection service (`-pisvc=d`). Consumes one
    /// MPI process.
    pub deadlock_detection: bool,
    /// Log every channel call with its virtual timestamp (`-pisvc=c`);
    /// retrieve the log with [`PilotConfig::run_logged`].
    pub call_log: bool,
    /// Pilot-layer cost model.
    pub costs: PilotCosts,
    /// MPI-layer cost model.
    pub mpi_costs: MpiCosts,
    /// Per-channel read deadline: a `PI_Read` that waits longer than this
    /// (virtual time) fails with [`PilotError::Timeout`] instead of
    /// blocking forever. `None` (the default) blocks indefinitely.
    pub channel_timeout: Option<SimDuration>,
    /// Fault-injection plan the underlying fabric runs under; `None` means
    /// a fault-free fabric.
    pub faults: Option<Arc<FaultPlan>>,
    /// Retransmission policy senders use against injected message loss.
    pub retry: RetryPolicy,
    /// Schedule-exploration seed for the DES kernel: `0` (the default) is
    /// the canonical FIFO schedule; a nonzero seed deterministically
    /// permutes same-timestamp event ordering (see
    /// [`cp_des::Simulation::set_schedule_seed`]).
    pub schedule_seed: u64,
    /// Run the `cp-check` wiring verifier over the configured architecture
    /// before launching, aborting the run on any error-severity finding
    /// ([`cp_des::SimError::Aborted`] naming every diagnostic).
    pub strict_checks: bool,
    /// Lint-engine policy over the `cp-check` findings: per-code
    /// [`cp_check::LintLevel`]s, endpoint-scoped suppressions and a
    /// baseline. Applied by [`PilotConfig::check`], so an `Allow`ed,
    /// suppressed or baselined finding never aborts a strict run; a
    /// `Deny`ed one always does.
    pub lint_config: cp_check::LintConfig,
    /// Execution substrate: the deterministic DES kernel
    /// ([`Backend::Sim`], the default) or free-running OS threads
    /// ([`Backend::Native`]). The program body is identical on both; the
    /// native backend rejects fault plans (sim-only) and ignores
    /// `schedule_seed` (the OS schedules the threads).
    pub backend: Backend,
}

impl PilotOpts {
    /// Default options; identical to `PilotOpts::default()`, reads better
    /// at the head of a builder chain.
    pub fn new() -> PilotOpts {
        PilotOpts::default()
    }

    /// Enable the deadlock-detection service (consumes one MPI process).
    pub fn with_deadlock_service(mut self) -> PilotOpts {
        self.deadlock_detection = true;
        self
    }

    /// Log every channel call with its virtual timestamp.
    pub fn with_call_log(mut self) -> PilotOpts {
        self.call_log = true;
        self
    }

    /// Fail `PI_Read`s that wait longer than `deadline` of virtual time.
    pub fn with_channel_timeout(mut self, deadline: SimDuration) -> PilotOpts {
        self.channel_timeout = Some(deadline);
        self
    }

    /// Run the fabric under the given fault-injection plan.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> PilotOpts {
        self.faults = Some(plan);
        self
    }

    /// Override the sender-side retransmission policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> PilotOpts {
        self.retry = retry;
        self
    }

    /// Run under an alternative (but still deterministic) DES schedule.
    pub fn with_schedule_seed(mut self, seed: u64) -> PilotOpts {
        self.schedule_seed = seed;
        self
    }

    /// Abort before launching if the `cp-check` wiring verifier finds an
    /// error in the configured architecture.
    pub fn with_strict_checks(mut self) -> PilotOpts {
        self.strict_checks = true;
        self
    }

    /// Apply a lint-engine policy ([`cp_check::LintConfig`]) over the
    /// `cp-check` findings: remap per-code levels, suppress a code at an
    /// endpoint, or exempt a committed baseline.
    pub fn with_lint_config(mut self, lint_config: cp_check::LintConfig) -> PilotOpts {
        self.lint_config = lint_config;
        self
    }

    /// Select the execution substrate (see [`PilotOpts::backend`]).
    pub fn with_backend(mut self, backend: Backend) -> PilotOpts {
        self.backend = backend;
        self
    }

    /// Select the substrate from the `CP_BACKEND` environment variable
    /// (`native` selects OS threads; anything else, or unset, the sim) —
    /// how the conformance harness runs one binary on both backends.
    pub fn with_backend_from_env(mut self) -> PilotOpts {
        self.backend = Backend::from_env();
        self
    }
}

type ProcBody = Box<dyn FnOnce(&Pilot, i32) + Send>;

/// A Pilot application under configuration.
pub struct PilotConfig {
    spec: ClusterSpec,
    placement: Vec<NodeId>,
    opts: PilotOpts,
    tables: Tables,
    bodies: Vec<Option<ProcBody>>,
    next_rank: usize,
}

impl PilotConfig {
    /// Begin configuring an application on the given cluster, with
    /// `placement[rank]` naming the node each MPI rank runs on (the
    /// `mpirun` host file).
    pub fn new(spec: ClusterSpec, placement: Vec<NodeId>, opts: PilotOpts) -> PilotConfig {
        assert!(!placement.is_empty(), "need at least one rank for PI_MAIN");
        let mut tables = Tables::default();
        tables.processes.push(ProcessEntry {
            name: "main".into(),
            rank: 0,
            index: 0,
        });
        if opts.deadlock_detection {
            assert!(
                placement.len() >= 2,
                "deadlock detection consumes one MPI process"
            );
            tables.detector_rank = Some(placement.len() - 1);
        }
        PilotConfig {
            spec,
            placement,
            opts,
            tables,
            bodies: vec![None],
            next_rank: 1,
        }
    }

    /// Convenience: one MPI rank per cluster node.
    pub fn one_rank_per_node(spec: ClusterSpec, opts: PilotOpts) -> PilotConfig {
        let placement = (0..spec.nodes.len()).map(NodeId).collect();
        PilotConfig::new(spec, placement, opts)
    }

    /// How many more processes can still be created (what `PI_Configure`'s
    /// return value lets applications compute — essential for "writing
    /// scalable applications that utilize every available processor").
    pub fn processes_available(&self) -> usize {
        let limit = self.placement.len() - usize::from(self.opts.deadlock_detection);
        limit - self.next_rank
    }

    /// `PI_CreateProcess`: bind `f` to the next MPI rank. `index` is passed
    /// to `f` so one function body can serve many processes.
    pub fn create_process<F>(
        &mut self,
        name: &str,
        index: i32,
        f: F,
    ) -> Result<PiProcess, PilotError>
    where
        F: FnOnce(&Pilot, i32) + Send + 'static,
    {
        if self.processes_available() == 0 {
            return Err(PilotError::TooManyProcesses {
                available: self.placement.len(),
            });
        }
        let rank = self.next_rank;
        self.next_rank += 1;
        let id = PiProcess(self.tables.processes.len());
        self.tables.processes.push(ProcessEntry {
            name: name.to_string(),
            rank,
            index,
        });
        self.bodies.push(Some(Box::new(f)));
        Ok(id)
    }

    /// `PI_CreateChannel`: a unidirectional channel from `from` to `to`.
    pub fn create_channel(
        &mut self,
        from: PiProcess,
        to: PiProcess,
    ) -> Result<PiChannel, PilotError> {
        self.tables.process(from)?;
        self.tables.process(to)?;
        if from == to {
            return Err(PilotError::SelfChannel);
        }
        let id = PiChannel(self.tables.channels.len());
        self.tables.channels.push(ChannelEntry {
            from,
            to,
            bundle: None,
        });
        Ok(id)
    }

    /// `PI_CreateBundle`: group channels sharing a common endpoint for a
    /// collective usage. For [`BundleUsage::Broadcast`] the common endpoint
    /// is the single writer; for `Gather`/`Select` it is the single reader.
    pub fn create_bundle(
        &mut self,
        usage: BundleUsage,
        channels: &[PiChannel],
    ) -> Result<PiBundle, PilotError> {
        if channels.is_empty() {
            return Err(PilotError::EmptyBundle);
        }
        let ends: Vec<(PiProcess, PiProcess)> = channels
            .iter()
            .map(|&c| self.tables.channel(c).map(|e| (e.from, e.to)))
            .collect::<Result<_, _>>()?;
        let common = match usage {
            BundleUsage::Broadcast => {
                let w = ends[0].0;
                if !ends.iter().all(|&(f, _)| f == w) {
                    return Err(PilotError::BundleCommonEndpoint);
                }
                w
            }
            BundleUsage::Gather | BundleUsage::Select => {
                let r = ends[0].1;
                if !ends.iter().all(|&(_, t)| t == r) {
                    return Err(PilotError::BundleCommonEndpoint);
                }
                r
            }
        };
        for &c in channels {
            if self.tables.channels[c.0].bundle.is_some() {
                return Err(PilotError::ChannelAlreadyBundled(c.0));
            }
        }
        let id = PiBundle(self.tables.bundles.len());
        for &c in channels {
            self.tables.channels[c.0].bundle = Some(id);
        }
        self.tables.bundles.push(BundleEntry {
            usage,
            channels: channels.to_vec(),
            common,
        });
        Ok(id)
    }

    /// Run the `cp-check` configure-time passes — the wiring verifier and
    /// the progress analyzer — over the architecture configured so far.
    /// The typed API already rules the dangling-endpoint and
    /// bundle-mismatch defects out by construction, so a well-formed
    /// Pilot configuration comes out clean; the passes are the same ones
    /// CellPilot configurations run, and harnesses can call this directly
    /// to lint without launching. The configured
    /// [`PilotOpts::lint_config`] is applied before returning.
    pub fn check(&self) -> Vec<cp_check::Diagnostic> {
        let mut g = cp_check::WiringGraph::new(self.placement.len());
        for e in &self.tables.processes {
            g.add_rank_process(&e.name, e.rank, self.placement[e.rank].0);
        }
        for c in &self.tables.channels {
            g.add_channel(c.from.0, c.to.0);
        }
        for b in &self.tables.bundles {
            let usage = match b.usage {
                BundleUsage::Broadcast => cp_check::GraphBundleUsage::Broadcast,
                // Gather and Select share the single-reader shape.
                BundleUsage::Gather | BundleUsage::Select => cp_check::GraphBundleUsage::Gather,
            };
            let members: Vec<usize> = b.channels.iter().map(|c| c.0).collect();
            g.add_bundle(usage, &members, b.common.0);
        }
        let mut diags = cp_check::verify(&g);
        diags.extend(cp_check::analyze(&g));
        self.opts.lint_config.apply(diags)
    }

    /// `PI_StartAll` + `PI_StopMain` with call-log retrieval: like
    /// [`PilotConfig::run`] but also returns the channel-call log (empty
    /// unless [`PilotOpts::call_log`] is set).
    pub fn run_logged<M>(
        self,
        main: M,
    ) -> Result<(SimReport, Vec<crate::runtime::CallRecord>), SimError>
    where
        M: FnOnce(&Pilot) + Send + 'static,
    {
        let sink = crate::runtime::CallLog::new(self.opts.call_log);
        let s2 = sink.clone();
        let report = self.run_with_log(main, s2)?;
        Ok((report, sink.take()))
    }

    /// `PI_StartAll` + `PI_StopMain`: run the execution phase to
    /// completion. `main` runs as `PI_MAIN` on rank 0.
    pub fn run<M>(self, main: M) -> Result<SimReport, SimError>
    where
        M: FnOnce(&Pilot) + Send + 'static,
    {
        let sink = crate::runtime::CallLog::new(self.opts.call_log);
        self.run_with_log(main, sink)
    }

    fn run_with_log<M>(self, main: M, log: crate::runtime::CallLog) -> Result<SimReport, SimError>
    where
        M: FnOnce(&Pilot) + Send + 'static,
    {
        if self.opts.strict_checks {
            let lints = self.check();
            if lints.iter().any(|d| d.is_error()) {
                return Err(SimError::Aborted {
                    pid: 0,
                    name: "cp-check".into(),
                    message: cp_check::render(&lints),
                });
            }
        }
        if self.opts.backend == Backend::Native && self.opts.faults.is_some() {
            return Err(SimError::Aborted {
                pid: 0,
                name: "pilot-config".into(),
                message: "fault injection is sim-only: fault plans script virtual-time events \
                          the native backend has no clock for (run with Backend::Sim)"
                    .into(),
            });
        }
        let PilotConfig {
            spec,
            placement,
            opts,
            tables,
            bodies,
            next_rank: _,
        } = self;
        let cluster = spec.build();
        let faults = opts
            .faults
            .clone()
            .unwrap_or_else(|| Arc::new(FaultPlan::new()));
        let world = MpiWorld::with_faults(
            cluster,
            placement,
            opts.mpi_costs.clone(),
            faults,
            opts.retry,
        );
        let tables = Arc::new(tables);
        let mut sim = Runner::for_backend(opts.backend);
        sim.set_schedule_seed(opts.schedule_seed);
        // Application processes.
        for (pidx, body) in bodies.into_iter().enumerate() {
            let entry = &tables.processes[pidx];
            let rank = entry.rank;
            let index = entry.index;
            let name = entry.name.clone();
            let tables = tables.clone();
            let costs = opts.costs.clone();
            match body {
                None => {
                    // PI_MAIN — handled below to keep `main`'s distinct type.
                    debug_assert_eq!(pidx, 0);
                }
                Some(f) => {
                    let log = log.clone();
                    let deadline = opts.channel_timeout;
                    world.launch(&mut sim, rank, &name, move |comm| {
                        let pilot = Pilot::new(comm, tables, costs, PiProcess(pidx), log, deadline);
                        f(&pilot, index);
                        pilot.finish();
                    });
                }
            }
        }
        {
            let tables2 = tables.clone();
            let costs = opts.costs.clone();
            let log = log.clone();
            let deadline = opts.channel_timeout;
            world.launch(&mut sim, 0, "main", move |comm| {
                let pilot = Pilot::new(comm, tables2, costs, PiProcess(0), log, deadline);
                main(&pilot);
                pilot.finish();
            });
        }
        // Deadlock-detection service.
        if let Some(det_rank) = tables.detector_rank {
            let tables2 = tables.clone();
            world.launch(&mut sim, det_rank, "pilot-deadlock-svc", move |comm| {
                service::detector_main(comm, tables2);
            });
        }
        sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PilotConfig {
        PilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), PilotOpts::default())
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_placement_panics() {
        let _ = PilotConfig::new(
            ClusterSpec::two_cells_one_xeon(),
            Vec::new(),
            PilotOpts::default(),
        );
    }

    #[test]
    #[should_panic(expected = "consumes one MPI process")]
    fn detection_needs_two_ranks() {
        let opts = PilotOpts {
            deadlock_detection: true,
            ..Default::default()
        };
        let _ = PilotConfig::new(
            ClusterSpec::two_cells_one_xeon(),
            vec![cp_simnet::NodeId(0)],
            opts,
        );
    }

    #[test]
    fn process_limit_follows_rank_count() {
        let mut c = cfg(); // 3 nodes -> 3 ranks -> main + 2 processes
        assert_eq!(c.processes_available(), 2);
        c.create_process("a", 0, |_, _| {}).unwrap();
        c.create_process("b", 1, |_, _| {}).unwrap();
        assert_eq!(c.processes_available(), 0);
        assert!(matches!(
            c.create_process("c", 2, |_, _| {}),
            Err(PilotError::TooManyProcesses { .. })
        ));
    }

    #[test]
    fn detection_service_consumes_a_rank() {
        let opts = PilotOpts {
            deadlock_detection: true,
            ..Default::default()
        };
        let c = PilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
        assert_eq!(c.processes_available(), 1);
    }

    #[test]
    fn self_channel_rejected() {
        let mut c = cfg();
        let a = c.create_process("a", 0, |_, _| {}).unwrap();
        assert_eq!(
            c.create_channel(a, a),
            Err(PilotError::SelfChannel).map(|_: PiChannel| unreachable!())
        );
    }

    #[test]
    fn bundle_requires_common_endpoint() {
        let mut c = cfg();
        let a = c.create_process("a", 0, |_, _| {}).unwrap();
        let b = c.create_process("b", 1, |_, _| {}).unwrap();
        let ch1 = c.create_channel(crate::PI_MAIN, a).unwrap();
        let ch2 = c.create_channel(crate::PI_MAIN, b).unwrap();
        let ch3 = c.create_channel(a, b).unwrap();
        // Broadcast from PI_MAIN: ok.
        let bun = c
            .create_bundle(BundleUsage::Broadcast, &[ch1, ch2])
            .unwrap();
        assert_eq!(bun, PiBundle(0));
        // ch3's writer is not PI_MAIN.
        assert!(matches!(
            c.create_bundle(BundleUsage::Broadcast, &[ch1, ch3]),
            Err(PilotError::ChannelAlreadyBundled(_)) | Err(PilotError::BundleCommonEndpoint)
        ));
        // Empty bundle.
        assert!(matches!(
            c.create_bundle(BundleUsage::Select, &[]),
            Err(PilotError::EmptyBundle)
        ));
    }

    #[test]
    fn strict_checks_pass_a_well_formed_config() {
        let mut c = PilotConfig::one_rank_per_node(
            ClusterSpec::two_cells_one_xeon(),
            PilotOpts::new().with_strict_checks(),
        );
        let a = c
            .create_process("a", 0, |p, _| {
                let v = p.read(crate::PiChannel(0), "%d").unwrap();
                assert_eq!(v.len(), 1);
            })
            .unwrap();
        let _b = c.create_process("b", 1, |_, _| {}).unwrap();
        let ch = c.create_channel(crate::PI_MAIN, a).unwrap();
        assert!(c.check().is_empty(), "{:?}", c.check());
        c.run(move |p| {
            p.write(ch, "%d", &[crate::PiValue::from(7i32)]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn native_backend_runs_the_same_program() {
        // The exact program from strict_checks_pass_a_well_formed_config,
        // with only the backend changed: same declarations, same bodies.
        let mut c = PilotConfig::one_rank_per_node(
            ClusterSpec::two_cells_one_xeon(),
            PilotOpts::new().with_backend(Backend::Native),
        );
        let a = c
            .create_process("a", 0, |p, _| {
                let v = p.read(crate::PiChannel(0), "%d").unwrap();
                assert_eq!(v[0], crate::PiValue::from(7i32));
            })
            .unwrap();
        let _b = c.create_process("b", 1, |_, _| {}).unwrap();
        let ch = c.create_channel(crate::PI_MAIN, a).unwrap();
        c.run(move |p| {
            p.write(ch, "%d", &[crate::PiValue::from(7i32)]).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn native_backend_with_deadlock_service() {
        // The dlsvc detector polls with timed waits; a clean program must
        // terminate (EV_FINISH from every endpoint retires the service).
        let opts = PilotOpts::new()
            .with_deadlock_service()
            .with_backend(Backend::Native);
        let mut c = PilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
        let a = c
            .create_process("echo", 0, |p, _| {
                let v = p.read(crate::PiChannel(0), "%d").unwrap();
                p.write(crate::PiChannel(1), "%d", &v).unwrap();
            })
            .unwrap();
        let c_out = c.create_channel(crate::PI_MAIN, a).unwrap();
        let c_back = c.create_channel(a, crate::PI_MAIN).unwrap();
        assert_eq!(c_out, crate::PiChannel(0));
        assert_eq!(c_back, crate::PiChannel(1));
        c.run(move |p| {
            p.write(c_out, "%d", &[crate::PiValue::from(41i32)])
                .unwrap();
            let v = p.read(c_back, "%d").unwrap();
            assert_eq!(v[0], crate::PiValue::from(41i32));
        })
        .unwrap();
    }

    #[test]
    fn native_backend_rejects_fault_plans() {
        let opts = PilotOpts::new()
            .with_faults(Arc::new(FaultPlan::new()))
            .with_backend(Backend::Native);
        let c = PilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
        match c.run(|_| {}) {
            Err(SimError::Aborted { message, .. }) => assert!(message.contains("sim-only")),
            other => panic!("expected sim-only abort, got {other:?}"),
        }
    }

    #[test]
    fn channel_cannot_join_two_bundles() {
        let mut c = cfg();
        let a = c.create_process("a", 0, |_, _| {}).unwrap();
        let b = c.create_process("b", 1, |_, _| {}).unwrap();
        let ch1 = c.create_channel(a, crate::PI_MAIN).unwrap();
        let ch2 = c.create_channel(b, crate::PI_MAIN).unwrap();
        c.create_bundle(BundleUsage::Gather, &[ch1, ch2]).unwrap();
        assert!(matches!(
            c.create_bundle(BundleUsage::Select, &[ch1]),
            Err(PilotError::ChannelAlreadyBundled(_))
        ));
    }
}
