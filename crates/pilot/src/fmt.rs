//! Pilot format strings: the `fprintf`/`fscanf`-inspired data descriptions
//! used by `PI_Write` and `PI_Read`.
//!
//! A format is a sequence of conversions, optionally separated by
//! whitespace. Each conversion is `%`, an optional repetition count (a
//! positive integer, or `*` meaning "count supplied at run time"), and a
//! conversion letter:
//!
//! | conversion | element type | wire bytes |
//! |-----------|--------------|-----------|
//! | `%b`  | byte          | 1  |
//! | `%c`  | character     | 1  |
//! | `%hd` | short         | 2  |
//! | `%d`  | int           | 4  |
//! | `%u`  | unsigned      | 4  |
//! | `%ld` | long          | 8  |
//! | `%f`  | float         | 4  |
//! | `%lf` | double        | 8  |
//! | `%Lf` | long double   | 16 |
//!
//! As the paper notes, the format "is simply a convenient way to describe
//! the data; it does not imply that the data is converted to text for
//! transmission" — and it "need not be a string literal; it can be supplied
//! by a variable". Example from the paper: `PI_Write(workerdata, "%1000f",
//! data)` sends 1000 floats; `PI_Read(betweenSPEs, "%*d", 100, Array)`
//! reads an argument-supplied count of ints.

use cp_mpisim::Datatype;
use std::fmt;

/// Repetition count of one conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountSpec {
    /// A fixed count from the format string (`%100d`; bare `%d` is 1).
    Fixed(usize),
    /// `%*d`: the count is supplied as a run-time argument.
    Runtime,
}

/// One parsed conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conversion {
    /// How many elements.
    pub count: CountSpec,
    /// Element type.
    pub dtype: Datatype,
}

/// A format-string parse error, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmtError {
    /// Byte offset in the format string.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "format error at offset {}: {}", self.at, self.message)
    }
}

impl std::error::Error for FmtError {}

/// Parse a Pilot format string into its conversions.
pub fn parse_format(format: &str) -> Result<Vec<Conversion>, FmtError> {
    let bytes = format.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b != b'%' {
            return Err(FmtError {
                at: i,
                message: format!("expected '%', found {:?}", b as char),
            });
        }
        i += 1;
        // Count: digits, '*', or empty (=1).
        let count = if i < bytes.len() && bytes[i] == b'*' {
            i += 1;
            CountSpec::Runtime
        } else {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i > start {
                let n: usize = format[start..i].parse().map_err(|_| FmtError {
                    at: start,
                    message: "repetition count overflows".into(),
                })?;
                if n == 0 {
                    return Err(FmtError {
                        at: start,
                        message: "repetition count must be positive".into(),
                    });
                }
                CountSpec::Fixed(n)
            } else {
                CountSpec::Fixed(1)
            }
        };
        // Conversion letter(s).
        let dtype = match bytes.get(i) {
            Some(b'b') => {
                i += 1;
                Datatype::Byte
            }
            Some(b'c') => {
                i += 1;
                Datatype::Char
            }
            Some(b'd') => {
                i += 1;
                Datatype::Int32
            }
            Some(b'u') => {
                i += 1;
                Datatype::UInt32
            }
            Some(b'h') => {
                if bytes.get(i + 1) == Some(&b'd') {
                    i += 2;
                    Datatype::Int16
                } else {
                    return Err(FmtError {
                        at: i,
                        message: "expected 'hd'".into(),
                    });
                }
            }
            Some(b'l') => match bytes.get(i + 1) {
                Some(b'd') => {
                    i += 2;
                    Datatype::Int64
                }
                Some(b'f') => {
                    i += 2;
                    Datatype::Float64
                }
                _ => {
                    return Err(FmtError {
                        at: i,
                        message: "expected 'ld' or 'lf'".into(),
                    })
                }
            },
            Some(b'L') => {
                if bytes.get(i + 1) == Some(&b'f') {
                    i += 2;
                    Datatype::LongDouble
                } else {
                    return Err(FmtError {
                        at: i,
                        message: "expected 'Lf'".into(),
                    });
                }
            }
            Some(b'f') => {
                i += 1;
                Datatype::Float32
            }
            Some(&other) => {
                return Err(FmtError {
                    at: i,
                    message: format!("unknown conversion {:?}", other as char),
                })
            }
            None => {
                return Err(FmtError {
                    at: i,
                    message: "format ends after '%'".into(),
                })
            }
        };
        out.push(Conversion { count, dtype });
    }
    if out.is_empty() {
        return Err(FmtError {
            at: 0,
            message: "format contains no conversions".into(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(fmt: &str) -> Conversion {
        let v = parse_format(fmt).unwrap();
        assert_eq!(v.len(), 1);
        v[0]
    }

    #[test]
    fn paper_examples() {
        // PI_Write(workerdata, "%1000f", data)
        assert_eq!(
            one("%1000f"),
            Conversion {
                count: CountSpec::Fixed(1000),
                dtype: Datatype::Float32
            }
        );
        // PI_Write(betweenSPEs, "%100d", Array)
        assert_eq!(
            one("%100d"),
            Conversion {
                count: CountSpec::Fixed(100),
                dtype: Datatype::Int32
            }
        );
        // PI_Read(betweenSPEs, "%*d", 100, Array)
        assert_eq!(
            one("%*d"),
            Conversion {
                count: CountSpec::Runtime,
                dtype: Datatype::Int32
            }
        );
        // Table II's data types: "%b" and "%100Lf".
        assert_eq!(one("%b").dtype, Datatype::Byte);
        assert_eq!(
            one("%100Lf"),
            Conversion {
                count: CountSpec::Fixed(100),
                dtype: Datatype::LongDouble
            }
        );
    }

    #[test]
    fn every_conversion_letter() {
        for (f, dt) in [
            ("%b", Datatype::Byte),
            ("%c", Datatype::Char),
            ("%hd", Datatype::Int16),
            ("%d", Datatype::Int32),
            ("%u", Datatype::UInt32),
            ("%ld", Datatype::Int64),
            ("%f", Datatype::Float32),
            ("%lf", Datatype::Float64),
            ("%Lf", Datatype::LongDouble),
        ] {
            assert_eq!(one(f).dtype, dt, "format {f}");
            assert_eq!(one(f).count, CountSpec::Fixed(1));
        }
    }

    #[test]
    fn multiple_conversions_with_whitespace() {
        let v = parse_format("%d %10f  %*Lf").unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].count, CountSpec::Fixed(10));
        assert_eq!(v[2].count, CountSpec::Runtime);
        assert_eq!(v[2].dtype, Datatype::LongDouble);
    }

    #[test]
    fn errors_carry_offsets() {
        assert_eq!(parse_format("x%d").unwrap_err().at, 0);
        assert_eq!(parse_format("%q").unwrap_err().at, 1);
        assert_eq!(parse_format("%0d").unwrap_err().at, 1);
        assert!(parse_format("%").unwrap_err().message.contains("ends"));
        assert!(parse_format("").is_err());
        assert!(parse_format("   ").is_err());
        assert!(parse_format("%h").is_err());
        assert!(parse_format("%lx").is_err());
        assert!(parse_format("%L").is_err());
    }
}
