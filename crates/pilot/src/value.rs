//! Typed argument values for `PI_Write`/`PI_Read` and the channel wire
//! format.
//!
//! A Pilot message is the concatenation of the segments described by the
//! write format. On the wire each segment carries its datatype and element
//! count, so the reading side can verify its own format agrees — Pilot's
//! run-time architecture enforcement extends to data descriptions, turning
//! "process A sent doubles, process B read ints" into a diagnostic instead
//! of corrupted data.

use crate::fmt::{Conversion, CountSpec};
use cp_mpisim::{decode_slice, encode_slice, Datatype, LongDouble};
use std::fmt;

/// One typed argument passed to a write, or returned from a read.
#[derive(Debug, Clone, PartialEq)]
pub enum PiValue {
    /// `%b`
    Byte(Vec<u8>),
    /// `%c` (ASCII)
    Char(Vec<u8>),
    /// `%hd`
    Int16(Vec<i16>),
    /// `%d`
    Int32(Vec<i32>),
    /// `%u`
    UInt32(Vec<u32>),
    /// `%ld`
    Int64(Vec<i64>),
    /// `%f`
    Float32(Vec<f32>),
    /// `%lf`
    Float64(Vec<f64>),
    /// `%Lf`
    LongDouble(Vec<LongDouble>),
}

impl PiValue {
    /// The matching datatype.
    pub fn dtype(&self) -> Datatype {
        match self {
            PiValue::Byte(_) => Datatype::Byte,
            PiValue::Char(_) => Datatype::Char,
            PiValue::Int16(_) => Datatype::Int16,
            PiValue::Int32(_) => Datatype::Int32,
            PiValue::UInt32(_) => Datatype::UInt32,
            PiValue::Int64(_) => Datatype::Int64,
            PiValue::Float32(_) => Datatype::Float32,
            PiValue::Float64(_) => Datatype::Float64,
            PiValue::LongDouble(_) => Datatype::LongDouble,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            PiValue::Byte(v) => v.len(),
            PiValue::Char(v) => v.len(),
            PiValue::Int16(v) => v.len(),
            PiValue::Int32(v) => v.len(),
            PiValue::UInt32(v) => v.len(),
            PiValue::Int64(v) => v.len(),
            PiValue::Float32(v) => v.len(),
            PiValue::Float64(v) => v.len(),
            PiValue::LongDouble(v) => v.len(),
        }
    }

    /// True if the value holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical wire bytes of the elements.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            PiValue::Byte(v) | PiValue::Char(v) => v.clone(),
            PiValue::Int16(v) => encode_slice(v),
            PiValue::Int32(v) => encode_slice(v),
            PiValue::UInt32(v) => encode_slice(v),
            PiValue::Int64(v) => encode_slice(v),
            PiValue::Float32(v) => encode_slice(v),
            PiValue::Float64(v) => encode_slice(v),
            PiValue::LongDouble(v) => encode_slice(v),
        }
    }

    /// Decode elements of `dtype` from wire bytes.
    pub fn decode(dtype: Datatype, bytes: &[u8]) -> PiValue {
        match dtype {
            Datatype::Byte => PiValue::Byte(bytes.to_vec()),
            Datatype::Char => PiValue::Char(bytes.to_vec()),
            Datatype::Int16 => PiValue::Int16(decode_slice(bytes)),
            Datatype::Int32 => PiValue::Int32(decode_slice(bytes)),
            Datatype::UInt32 => PiValue::UInt32(decode_slice(bytes)),
            Datatype::Int64 => PiValue::Int64(decode_slice(bytes)),
            Datatype::Float32 => PiValue::Float32(decode_slice(bytes)),
            Datatype::Float64 => PiValue::Float64(decode_slice(bytes)),
            Datatype::LongDouble => PiValue::LongDouble(decode_slice(bytes)),
        }
    }
}

macro_rules! from_vec {
    ($($t:ty => $variant:ident),*) => {$(
        impl From<Vec<$t>> for PiValue {
            fn from(v: Vec<$t>) -> PiValue { PiValue::$variant(v) }
        }
        impl From<&[$t]> for PiValue {
            fn from(v: &[$t]) -> PiValue { PiValue::$variant(v.to_vec()) }
        }
        impl From<$t> for PiValue {
            fn from(v: $t) -> PiValue { PiValue::$variant(vec![v]) }
        }
    )*};
}

from_vec!(i16 => Int16, i32 => Int32, u32 => UInt32, i64 => Int64,
          f32 => Float32, f64 => Float64, LongDouble => LongDouble, u8 => Byte);

/// A Rust scalar usable with the typed channel helpers
/// ([`Pilot::write_slice`]/[`Pilot::read_vec`]): each implementor maps to
/// one [`PiValue`] variant and the Pilot format conversion describing it.
///
/// [`Pilot::write_slice`]: crate::Pilot::write_slice
/// [`Pilot::read_vec`]: crate::Pilot::read_vec
pub trait PiScalar: Copy + Send + 'static {
    /// The conversion character(s) of a `%N<conv>` format segment for this
    /// type (`"d"` for `i32`, `"lf"` for `f64`, …).
    const CONV: &'static str;
    /// Wrap a vector as the matching [`PiValue`] variant.
    fn wrap(v: Vec<Self>) -> PiValue;
    /// Unwrap the matching variant; `None` on a variant mismatch.
    fn unwrap(v: PiValue) -> Option<Vec<Self>>;
}

macro_rules! pi_scalar {
    ($($t:ty => $variant:ident, $conv:literal;)*) => {$(
        impl PiScalar for $t {
            const CONV: &'static str = $conv;
            fn wrap(v: Vec<$t>) -> PiValue { PiValue::$variant(v) }
            fn unwrap(v: PiValue) -> Option<Vec<$t>> {
                match v { PiValue::$variant(v) => Some(v), _ => None }
            }
        }
    )*};
}

pi_scalar! {
    u8 => Byte, "b";
    i16 => Int16, "hd";
    i32 => Int32, "d";
    u32 => UInt32, "u";
    i64 => Int64, "ld";
    f32 => Float32, "f";
    f64 => Float64, "lf";
    LongDouble => LongDouble, "Lf";
}

/// Why a value list does not satisfy a format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// Fewer/more values than conversions.
    ArgCount {
        /// Conversions in the format.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value's type disagrees with its conversion.
    TypeMismatch {
        /// Zero-based conversion index.
        index: usize,
        /// Type the format demands.
        expected: Datatype,
        /// Type the value holds.
        got: Datatype,
    },
    /// A fixed-count conversion got a different element count.
    CountMismatch {
        /// Zero-based conversion index.
        index: usize,
        /// Count the format demands.
        expected: usize,
        /// Count the value holds.
        got: usize,
    },
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::ArgCount { expected, got } => {
                write!(
                    f,
                    "format has {expected} conversions but {got} values supplied"
                )
            }
            MatchError::TypeMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "conversion #{index} expects {expected} but value holds {got}"
            ),
            MatchError::CountMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "conversion #{index} expects {expected} elements but value holds {got}"
            ),
        }
    }
}

impl std::error::Error for MatchError {}

/// Check that `values` satisfy the parsed `conversions` (a write-side
/// check; `%*` conversions accept any length).
pub fn check_against_format(
    conversions: &[Conversion],
    values: &[PiValue],
) -> Result<(), MatchError> {
    if conversions.len() != values.len() {
        return Err(MatchError::ArgCount {
            expected: conversions.len(),
            got: values.len(),
        });
    }
    for (index, (c, v)) in conversions.iter().zip(values).enumerate() {
        if c.dtype != v.dtype() {
            return Err(MatchError::TypeMismatch {
                index,
                expected: c.dtype,
                got: v.dtype(),
            });
        }
        if let CountSpec::Fixed(n) = c.count {
            if v.len() != n {
                return Err(MatchError::CountMismatch {
                    index,
                    expected: n,
                    got: v.len(),
                });
            }
        }
    }
    Ok(())
}

/// Check that an incoming message's segments satisfy the *reader's*
/// conversions (a read-side check; `%*` accepts the sender's count).
pub fn check_read_format(
    conversions: &[Conversion],
    segments: &[(Datatype, usize)],
) -> Result<(), MatchError> {
    if conversions.len() != segments.len() {
        return Err(MatchError::ArgCount {
            expected: conversions.len(),
            got: segments.len(),
        });
    }
    for (index, (c, &(dtype, count))) in conversions.iter().zip(segments).enumerate() {
        if c.dtype != dtype {
            return Err(MatchError::TypeMismatch {
                index,
                expected: c.dtype,
                got: dtype,
            });
        }
        if let CountSpec::Fixed(n) = c.count {
            if count != n {
                return Err(MatchError::CountMismatch {
                    index,
                    expected: n,
                    got: count,
                });
            }
        }
    }
    Ok(())
}

// --- Wire format: [u32 nsegs] ([u8 dtype][u32 count][bytes])* ---

fn dtype_code(d: Datatype) -> u8 {
    match d {
        Datatype::Byte => 0,
        Datatype::Char => 1,
        Datatype::Int16 => 2,
        Datatype::Int32 => 3,
        Datatype::UInt32 => 4,
        Datatype::Int64 => 5,
        Datatype::Float32 => 6,
        Datatype::Float64 => 7,
        Datatype::LongDouble => 8,
    }
}

fn code_dtype(c: u8) -> Option<Datatype> {
    Some(match c {
        0 => Datatype::Byte,
        1 => Datatype::Char,
        2 => Datatype::Int16,
        3 => Datatype::Int32,
        4 => Datatype::UInt32,
        5 => Datatype::Int64,
        6 => Datatype::Float32,
        7 => Datatype::Float64,
        8 => Datatype::LongDouble,
        _ => return None,
    })
}

/// Serialize values into one channel message.
pub fn pack_message(values: &[PiValue]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(values.len() as u32).to_be_bytes());
    for v in values {
        out.push(dtype_code(v.dtype()));
        out.extend_from_slice(&(v.len() as u32).to_be_bytes());
        out.extend_from_slice(&v.encode());
    }
    out
}

/// Deserialize a channel message into its values. Returns `None` on a
/// malformed payload (which would indicate a library bug, not user error).
pub fn unpack_message(bytes: &[u8]) -> Option<Vec<PiValue>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        if *pos + n <= bytes.len() {
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Some(s)
        } else {
            None
        }
    };
    let nsegs = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(nsegs);
    for _ in 0..nsegs {
        let code = take(&mut pos, 1)?[0];
        let dtype = code_dtype(code)?;
        let count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let data = take(&mut pos, count * dtype.wire_size())?;
        out.push(PiValue::decode(dtype, data));
    }
    if pos == bytes.len() {
        Some(out)
    } else {
        None
    }
}

/// Total payload bytes the values occupy on the wire (excluding headers) —
/// the quantity the latency model charges for.
pub fn payload_bytes(values: &[PiValue]) -> usize {
    values.iter().map(|v| v.len() * v.dtype().wire_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmt::parse_format;

    #[test]
    fn pack_unpack_roundtrip() {
        let vals = vec![
            PiValue::Int32(vec![1, -2, 3]),
            PiValue::Byte(vec![9]),
            PiValue::LongDouble(vec![LongDouble(2.5); 100]),
            PiValue::Char(b"hello".to_vec()),
        ];
        let bytes = pack_message(&vals);
        assert_eq!(unpack_message(&bytes).unwrap(), vals);
    }

    #[test]
    fn payload_bytes_matches_paper_array() {
        let vals = vec![PiValue::LongDouble(vec![LongDouble(0.0); 100])];
        assert_eq!(payload_bytes(&vals), 1600);
        let one = vec![PiValue::Byte(vec![0])];
        assert_eq!(payload_bytes(&one), 1);
    }

    #[test]
    fn write_check_catches_type_and_count() {
        let conv = parse_format("%d %10f").unwrap();
        let ok = vec![PiValue::Int32(vec![1]), PiValue::Float32(vec![0.0; 10])];
        assert!(check_against_format(&conv, &ok).is_ok());
        let wrong_type = vec![PiValue::Float64(vec![1.0]), PiValue::Float32(vec![0.0; 10])];
        assert!(matches!(
            check_against_format(&conv, &wrong_type),
            Err(MatchError::TypeMismatch { index: 0, .. })
        ));
        let wrong_count = vec![PiValue::Int32(vec![1]), PiValue::Float32(vec![0.0; 9])];
        assert!(matches!(
            check_against_format(&conv, &wrong_count),
            Err(MatchError::CountMismatch {
                index: 1,
                expected: 10,
                got: 9
            })
        ));
        assert!(matches!(
            check_against_format(&conv, &ok[..1]),
            Err(MatchError::ArgCount {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn star_accepts_any_length() {
        let conv = parse_format("%*d").unwrap();
        for n in [0usize, 1, 100] {
            let vals = vec![PiValue::Int32(vec![0; n])];
            assert!(check_against_format(&conv, &vals).is_ok(), "n={n}");
        }
    }

    #[test]
    fn read_check_against_segments() {
        let conv = parse_format("%*d").unwrap();
        assert!(check_read_format(&conv, &[(Datatype::Int32, 100)]).is_ok());
        assert!(check_read_format(&conv, &[(Datatype::Float32, 100)]).is_err());
        let fixed = parse_format("%100d").unwrap();
        assert!(check_read_format(&fixed, &[(Datatype::Int32, 99)]).is_err());
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(unpack_message(&[]).is_none());
        assert!(
            unpack_message(&[0, 0, 0, 1, 200, 0, 0, 0, 0]).is_none(),
            "bad dtype code"
        );
        let mut ok = pack_message(&[PiValue::Byte(vec![1])]);
        ok.push(0); // trailing garbage
        assert!(unpack_message(&ok).is_none());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(PiValue::from(5i32), PiValue::Int32(vec![5]));
        assert_eq!(PiValue::from(vec![1u8, 2]), PiValue::Byte(vec![1, 2]));
        let s: &[f64] = &[1.0];
        assert_eq!(PiValue::from(s), PiValue::Float64(vec![1.0]));
    }
}
