#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-pilot — the Pilot library
//!
//! A from-scratch reimplementation of Pilot (Carter, Gardner, Grewal —
//! PDSEC'10), the CSP-flavoured process/channel layer over MPI that
//! CellPilot extends. Applications are written in two phases:
//!
//! 1. **Configuration**: declare processes ([`PilotConfig::create_process`]),
//!    channels between process pairs ([`PilotConfig::create_channel`]) and
//!    bundles ([`PilotConfig::create_bundle`]).
//! 2. **Execution** ([`PilotConfig::run`]): every process runs its
//!    function; `PI_MAIN` (rank 0) runs `main`. Processes communicate only
//!    over the pre-declared channels with stdio-style formats:
//!    `pi_write!(p, chan, "%1000f", data)` / `pi_read!(p, chan, "%*f")`.
//!
//! Pilot's safety story is reproduced: the architecture is enforced at run
//! time (writing someone else's channel, format mismatches, etc. abort
//! with a source-located diagnostic), and the optional deadlock-detection
//! service diagnoses circular waits.
//!
//! ```
//! use cp_pilot::{PilotConfig, PilotOpts};
//! use cp_simnet::ClusterSpec;
//!
//! let mut cfg = PilotConfig::one_rank_per_node(
//!     ClusterSpec::two_cells_one_xeon(), PilotOpts::new());
//! let worker = cfg.create_process("worker", 0, |p, _idx| {
//!     let vals = p.read_vec::<i32>(cp_pilot::PiChannel(0)).unwrap();
//!     assert_eq!(vals, vec![1, 2, 3]);
//! }).unwrap();
//! let chan = cfg.create_channel(cp_pilot::PI_MAIN, worker).unwrap();
//! cfg.run(move |p| {
//!     p.write_slice(chan, &[1i32, 2, 3]).unwrap();
//! }).unwrap();
//! ```
//!
//! The stdio-style formats remain available through [`pi_write!`] /
//! [`pi_read!`] (`pi_write!(p, chan, "%1000f", data)` /
//! `pi_read!(p, chan, "%*f")`), which also reproduce Pilot's
//! abort-with-source-location diagnostics.

mod config;
mod error;
pub mod fmt;
mod runtime;
mod service;
mod table;
pub mod value;

pub use config::{PilotConfig, PilotOpts};
pub use cp_des::Backend;
pub use error::PilotError;
pub use fmt::{parse_format, Conversion, CountSpec, FmtError};
pub use runtime::{CallLog, CallRecord, Pilot, PilotCosts};
pub use service::{
    decode_event, encode_event, DlEndpoint, DlEvent, WaitGraph, EVENT_LEN, EV_FINISH, EV_READWAIT,
    EV_WRITE, GRACE_US, POLL_US, TAG_SVC,
};
pub use table::{BundleUsage, PiBundle, PiChannel, PiProcess, Tables, PI_MAIN};
pub use value::{pack_message, payload_bytes, unpack_message, MatchError, PiScalar, PiValue};
