//! Property tests for the MPI layer: collectives against sequential
//! references, datatype round trips, and message-order invariants.

use cp_mpisim::{decode_slice, encode_slice, mpirun, LongDouble, MpiCosts, ReduceOp};
use cp_simnet::{ClusterSpec, NodeId, NodeKind};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn spec(n: usize) -> (ClusterSpec, Vec<NodeId>) {
    let spec = ClusterSpec {
        nodes: vec![NodeKind::Commodity { cores: 4 }; n],
        ..ClusterSpec::two_cells_one_xeon()
    };
    (spec, (0..n).map(NodeId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast delivers the root's exact data to every rank, for any
    /// rank count, root, and payload.
    #[test]
    fn bcast_equals_root_data(
        n in 2usize..9,
        root_sel in 0usize..8,
        data in proptest::collection::vec(any::<i32>(), 0..32),
    ) {
        let root = root_sel % n;
        let (s, p) = spec(n);
        let data2 = data.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let got = if comm.rank() == root {
                comm.bcast(root, Some(&data2))
            } else {
                comm.bcast::<i32>(root, None)
            };
            assert_eq!(got, data2);
        }).unwrap();
    }

    /// Reduce(Sum) equals the sequential elementwise sum.
    #[test]
    fn reduce_sum_matches_reference(
        n in 2usize..9,
        len in 1usize..16,
        seed in any::<u64>(),
    ) {
        let contributions: Vec<Vec<i64>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed ^ (r as u64 * 0x9E37) ^ (i as u64 * 0x85EB)) % 1000) as i64)
                    .collect()
            })
            .collect();
        let expected: Vec<i64> = (0..len)
            .map(|i| contributions.iter().map(|c| c[i]).sum())
            .collect();
        let (s, p) = spec(n);
        let contrib = contributions.clone();
        let exp = expected.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let mine = &contrib[comm.rank()];
            if let Some(total) = comm.reduce(0, ReduceOp::Sum, mine) {
                assert_eq!(total, exp);
            }
        }).unwrap();
    }

    /// Gather returns every rank's contribution in rank order; scatter is
    /// its inverse.
    #[test]
    fn gather_scatter_inverse(
        n in 2usize..7,
        len in 1usize..8,
    ) {
        let (s, p) = spec(n);
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let mine: Vec<u32> = (0..len).map(|i| (comm.rank() * 100 + i) as u32).collect();
            let gathered = comm.gather(0, &mine);
            let parts = gathered.map(|g| g.into_iter().collect::<Vec<_>>());
            let back = if comm.rank() == 0 {
                comm.scatter(0, Some(parts.as_ref().unwrap()))
            } else {
                comm.scatter::<u32>(0, None)
            };
            assert_eq!(back, mine, "scatter(gather(x)) == x");
        }).unwrap();
    }

    /// Per-pair message order is FIFO under randomized payload sizes and
    /// pauses (non-overtaking rule).
    #[test]
    fn same_pair_fifo(
        msgs in proptest::collection::vec((0usize..200, 0u64..50), 1..20),
    ) {
        let (s, p) = spec(2);
        let sent = Arc::new(Mutex::new(Vec::new()));
        let sent2 = sent.clone();
        let msgs2 = msgs.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            if comm.rank() == 0 {
                for (i, &(len, pause)) in msgs2.iter().enumerate() {
                    comm.ctx().advance(cp_des::SimDuration::from_micros(pause));
                    let payload: Vec<u8> = std::iter::repeat_n(i as u8, len).collect();
                    comm.send(1, 7, &payload);
                }
            } else {
                for i in 0..msgs2.len() {
                    let m = comm.recv(Some(0), Some(7));
                    assert!(m.data.iter().all(|&b| b == i as u8), "message {i} out of order");
                    sent2.lock().push(i);
                }
            }
        }).unwrap();
        prop_assert_eq!(sent.lock().len(), msgs.len());
    }

    /// Scalar encode/decode round trips for every datatype.
    #[test]
    fn scalar_roundtrips(
        i16s in proptest::collection::vec(any::<i16>(), 0..16),
        f64s in proptest::collection::vec(any::<f64>(), 0..16),
        lds in proptest::collection::vec(any::<f64>(), 0..16),
    ) {
        prop_assert_eq!(decode_slice::<i16>(&encode_slice(&i16s)), i16s);
        let back = decode_slice::<f64>(&encode_slice(&f64s));
        prop_assert_eq!(f64s.len(), back.len());
        for (a, b) in f64s.iter().zip(&back) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
        let lds: Vec<LongDouble> = lds.into_iter().map(LongDouble).collect();
        let back = decode_slice::<LongDouble>(&encode_slice(&lds));
        for (a, b) in lds.iter().zip(&back) {
            prop_assert!(a.0.to_bits() == b.0.to_bits());
        }
    }
}
