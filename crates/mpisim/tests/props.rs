//! Property tests for the MPI layer: collectives against sequential
//! references, datatype round trips, and message-order invariants.

use cp_mpisim::{decode_slice, encode_slice, mpirun, Datatype, LongDouble, MpiCosts, ReduceOp};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId, NodeKind, RetryPolicy};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn spec(n: usize) -> (ClusterSpec, Vec<NodeId>) {
    let spec = ClusterSpec {
        nodes: vec![NodeKind::Commodity { cores: 4 }; n],
        ..ClusterSpec::two_cells_one_xeon()
    };
    (spec, (0..n).map(NodeId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast delivers the root's exact data to every rank, for any
    /// rank count, root, and payload.
    #[test]
    fn bcast_equals_root_data(
        n in 2usize..9,
        root_sel in 0usize..8,
        data in proptest::collection::vec(any::<i32>(), 0..32),
    ) {
        let root = root_sel % n;
        let (s, p) = spec(n);
        let data2 = data.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let got = if comm.rank() == root {
                comm.bcast(root, Some(&data2))
            } else {
                comm.bcast::<i32>(root, None)
            };
            assert_eq!(got, data2);
        }).unwrap();
    }

    /// Reduce(Sum) equals the sequential elementwise sum.
    #[test]
    fn reduce_sum_matches_reference(
        n in 2usize..9,
        len in 1usize..16,
        seed in any::<u64>(),
    ) {
        let contributions: Vec<Vec<i64>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed ^ (r as u64 * 0x9E37) ^ (i as u64 * 0x85EB)) % 1000) as i64)
                    .collect()
            })
            .collect();
        let expected: Vec<i64> = (0..len)
            .map(|i| contributions.iter().map(|c| c[i]).sum())
            .collect();
        let (s, p) = spec(n);
        let contrib = contributions.clone();
        let exp = expected.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let mine = &contrib[comm.rank()];
            if let Some(total) = comm.reduce(0, ReduceOp::Sum, mine) {
                assert_eq!(total, exp);
            }
        }).unwrap();
    }

    /// Gather returns every rank's contribution in rank order; scatter is
    /// its inverse.
    #[test]
    fn gather_scatter_inverse(
        n in 2usize..7,
        len in 1usize..8,
    ) {
        let (s, p) = spec(n);
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let mine: Vec<u32> = (0..len).map(|i| (comm.rank() * 100 + i) as u32).collect();
            let gathered = comm.gather(0, &mine);
            let parts = gathered.map(|g| g.into_iter().collect::<Vec<_>>());
            let back = if comm.rank() == 0 {
                comm.scatter(0, Some(parts.as_ref().unwrap()))
            } else {
                comm.scatter::<u32>(0, None)
            };
            assert_eq!(back, mine, "scatter(gather(x)) == x");
        }).unwrap();
    }

    /// Per-pair message order is FIFO under randomized payload sizes and
    /// pauses (non-overtaking rule).
    #[test]
    fn same_pair_fifo(
        msgs in proptest::collection::vec((0usize..200, 0u64..50), 1..20),
    ) {
        let (s, p) = spec(2);
        let sent = Arc::new(Mutex::new(Vec::new()));
        let sent2 = sent.clone();
        let msgs2 = msgs.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            if comm.rank() == 0 {
                for (i, &(len, pause)) in msgs2.iter().enumerate() {
                    comm.ctx().advance(cp_des::SimDuration::from_micros(pause));
                    let payload: Vec<u8> = std::iter::repeat_n(i as u8, len).collect();
                    comm.send(1, 7, &payload);
                }
            } else {
                for i in 0..msgs2.len() {
                    let m = comm.recv(Some(0), Some(7));
                    assert!(m.data.iter().all(|&b| b == i as u8), "message {i} out of order");
                    sent2.lock().push(i);
                }
            }
        }).unwrap();
        prop_assert_eq!(sent.lock().len(), msgs.len());
    }

    /// Exactly-once under injected loss *and* duplication: whatever mix of
    /// dropped (and retransmitted) and duplicated wire copies the fault plan
    /// produces, the receiver sees each logical send exactly once, in FIFO
    /// order, with no stragglers left queued.
    #[test]
    fn drop_retry_and_duplication_never_surface_duplicates(
        n_msgs in 1usize..12,
        drops in 0u32..3,
        dups in 1u32..8,
        len in 1usize..64,
    ) {
        use cp_des::{SimDuration, SimTime, Simulation};
        use cp_mpisim::MpiWorld;

        let (s, p) = spec(2);
        let window = (SimTime::ZERO, SimTime(u64::MAX));
        // Budgeted faults on the 0 -> 1 link: each logical send may lose up
        // to `drops` wire copies (the retry budget of 4 covers recovery) and
        // `dups` sends get a duplicated wire copy.
        let mut plan = FaultPlan::new()
            .duplicate_link(NodeId(0), NodeId(1), window.0, window.1, dups);
        if drops > 0 {
            plan = plan.drop_link(NodeId(0), NodeId(1), window.0, window.1, drops);
        }
        let world = MpiWorld::with_faults(
            s.build(), p, MpiCosts::default(), Arc::new(plan), RetryPolicy::default(),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        let w = world.clone();
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "sender", move |comm| {
            for i in 0..n_msgs {
                let payload: Vec<u8> = std::iter::repeat_n(i as u8, len).collect();
                comm.send(1, 5, &payload);
            }
        });
        w.launch(&mut sim, 1, "receiver", move |comm| {
            for _ in 0..n_msgs {
                let m = comm.recv(Some(0), Some(5));
                got2.lock().push(m.decode::<u8>());
            }
            // Give late wire copies time to land, then check none did.
            comm.ctx().advance(SimDuration::from_millis(10));
            assert!(comm.iprobe(Some(0), Some(5)).is_none(), "duplicate surfaced");
        });
        sim.run().unwrap();
        let received = got.lock();
        prop_assert_eq!(received.len(), n_msgs);
        for (i, data) in received.iter().enumerate() {
            prop_assert_eq!(data.len(), len);
            prop_assert!(data.iter().all(|&b| b == i as u8), "message {} out of order", i);
        }
    }

    /// Scalar encode/decode round trips for every datatype.
    #[test]
    fn scalar_roundtrips(
        i16s in proptest::collection::vec(any::<i16>(), 0..16),
        f64s in proptest::collection::vec(any::<f64>(), 0..16),
        lds in proptest::collection::vec(any::<f64>(), 0..16),
    ) {
        prop_assert_eq!(decode_slice::<i16>(&encode_slice(&i16s)), i16s);
        let back = decode_slice::<f64>(&encode_slice(&f64s));
        prop_assert_eq!(f64s.len(), back.len());
        for (a, b) in f64s.iter().zip(&back) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
        let lds: Vec<LongDouble> = lds.into_iter().map(LongDouble).collect();
        let back = decode_slice::<LongDouble>(&encode_slice(&lds));
        for (a, b) in lds.iter().zip(&back) {
            prop_assert!(a.0.to_bits() == b.0.to_bits());
        }
    }

    /// Round trips for the remaining scalar datatypes, plus the wire-size
    /// law: an encoded slice is exactly `len * wire_size` bytes.
    #[test]
    fn remaining_scalars_roundtrip_with_exact_wire_size(
        u8s in proptest::collection::vec(any::<u8>(), 0..24),
        i32s in proptest::collection::vec(any::<i32>(), 0..24),
        u32s in proptest::collection::vec(any::<u32>(), 0..24),
        i64s in proptest::collection::vec(any::<i64>(), 0..24),
        f32s in proptest::collection::vec(any::<f32>(), 0..24),
    ) {
        let b = encode_slice(&u8s);
        prop_assert_eq!(b.len(), u8s.len() * Datatype::Byte.wire_size());
        prop_assert_eq!(decode_slice::<u8>(&b), u8s);

        let b = encode_slice(&i32s);
        prop_assert_eq!(b.len(), i32s.len() * Datatype::Int32.wire_size());
        prop_assert_eq!(decode_slice::<i32>(&b), i32s);

        let b = encode_slice(&u32s);
        prop_assert_eq!(b.len(), u32s.len() * Datatype::UInt32.wire_size());
        prop_assert_eq!(decode_slice::<u32>(&b), u32s);

        let b = encode_slice(&i64s);
        prop_assert_eq!(b.len(), i64s.len() * Datatype::Int64.wire_size());
        prop_assert_eq!(decode_slice::<i64>(&b), i64s);

        let b = encode_slice(&f32s);
        prop_assert_eq!(b.len(), f32s.len() * Datatype::Float32.wire_size());
        let back = decode_slice::<f32>(&b);
        prop_assert_eq!(f32s.len(), back.len());
        for (a, x) in f32s.iter().zip(&back) {
            prop_assert!(a.to_bits() == x.to_bits());
        }
    }

    /// Allgather gives every rank the same rank-ordered view that a
    /// root-gather would have produced.
    #[test]
    fn allgather_matches_gather_everywhere(
        n in 2usize..7,
        len in 0usize..8,
    ) {
        let (s, p) = spec(n);
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let mine: Vec<i32> = (0..len).map(|i| (comm.rank() * 1000 + i) as i32).collect();
            let all = comm.allgather(&mine);
            assert_eq!(all.len(), n);
            for (r, part) in all.iter().enumerate() {
                let expect: Vec<i32> = (0..len).map(|i| (r * 1000 + i) as i32).collect();
                assert_eq!(part, &expect, "rank {r}'s contribution");
            }
        }).unwrap();
    }

    /// Alltoall is a distributed transpose: rank j's received part i is
    /// what rank i addressed to rank j.
    #[test]
    fn alltoall_transposes(
        n in 2usize..6,
        len in 0usize..6,
    ) {
        let (s, p) = spec(n);
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let me = comm.rank();
            let outgoing: Vec<Vec<u32>> = (0..n)
                .map(|dst| (0..len).map(|i| (me * 10_000 + dst * 100 + i) as u32).collect())
                .collect();
            let incoming = comm.alltoall(&outgoing);
            assert_eq!(incoming.len(), n);
            for (src, part) in incoming.iter().enumerate() {
                let expect: Vec<u32> =
                    (0..len).map(|i| (src * 10_000 + me * 100 + i) as u32).collect();
                assert_eq!(part, &expect, "part from rank {src}");
            }
        }).unwrap();
    }

    /// Scan(Sum) gives rank r the inclusive prefix sum over ranks 0..=r,
    /// and allreduce gives everyone the full reduction (== the last
    /// rank's scan).
    #[test]
    fn scan_is_prefix_of_allreduce(
        n in 2usize..7,
        len in 1usize..8,
        seed in any::<u64>(),
    ) {
        let contributions: Vec<Vec<i64>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed ^ (r as u64 * 0x5851) ^ (i as u64 * 0x14057)) % 512) as i64)
                    .collect()
            })
            .collect();
        let (s, p) = spec(n);
        let contrib = contributions.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            let me = comm.rank();
            let mine = &contrib[me];
            let prefix = comm.scan(ReduceOp::Sum, mine);
            let expect_prefix: Vec<i64> = (0..len)
                .map(|i| contrib[..=me].iter().map(|c| c[i]).sum())
                .collect();
            assert_eq!(prefix, expect_prefix, "rank {me} inclusive prefix");
            let total = comm.allreduce(ReduceOp::Sum, mine);
            let expect_total: Vec<i64> = (0..len)
                .map(|i| contrib.iter().map(|c| c[i]).sum())
                .collect();
            assert_eq!(total, expect_total, "rank {me} allreduce");
        }).unwrap();
    }
}

fn shuffle_by_seed<T>(items: &mut [T], mut seed: u64) {
    // splitmix64-driven Fisher–Yates: deterministic per proptest case.
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once wire-seq dedup at the mailbox: for any interleaving of
    /// duplicated and reordered wire copies — the traffic pattern one-sided
    /// window puts produce under retransmission and failover replay — each
    /// sequenced envelope surfaces exactly once, and replaying the entire
    /// interleaving a second time delivers nothing new.
    #[test]
    fn mailstore_wire_seq_dedup_is_idempotent(
        n_msgs in 1usize..12,
        dups in proptest::collection::vec(any::<u64>(), 0..48),
        perm_seed in any::<u64>(),
    ) {
        use cp_des::{SimDuration, Simulation};
        use cp_mpisim::{Envelope, MailStore, Payload};

        let env_for = |i: usize| Envelope {
            src: 1,
            dst: 0,
            tag: 7,
            dtype: Datatype::Byte,
            count: 1,
            wire_seq: (i + 1) as u64, // 0 means "unsequenced"; never used here
            payload: Payload::Data(vec![i as u8]),
        };
        // One full pass in a shuffled order guarantees coverage; the extra
        // copies land before, between, and after in arbitrary positions.
        let mut order: Vec<usize> = (0..n_msgs).collect();
        shuffle_by_seed(&mut order, perm_seed);
        let mut wire: Vec<usize> = dups.iter().map(|d| (*d % n_msgs as u64) as usize).collect();
        let cut = wire.len() / 2;
        let tail = wire.split_off(cut);
        wire.extend(order);
        wire.extend(tail);

        let mut sim = Simulation::new();
        let store = MailStore::new("dedup-prop");
        sim.spawn("wire", move |ctx| {
            for &i in &wire {
                store.deliver(ctx, env_for(i), SimDuration::ZERO);
            }
            // Idempotence: the complete interleaving again, verbatim.
            for &i in &wire {
                store.deliver(ctx, env_for(i), SimDuration::ZERO);
            }
            // A fresh sentinel lands behind any leaked replay, so the
            // drain below would surface the leak before the sentinel.
            let mut sentinel = env_for(n_msgs);
            sentinel.payload = Payload::Data(vec![0xFF]);
            store.deliver(ctx, sentinel, SimDuration::ZERO);

            let mut seen = Vec::new();
            for _ in 0..n_msgs {
                let env = store.recv_where(ctx, "payload", |_| true);
                let Payload::Data(bytes) = &env.payload else {
                    panic!("unexpected payload kind");
                };
                assert_eq!(bytes, &vec![(env.wire_seq - 1) as u8]);
                seen.push(env.wire_seq);
            }
            seen.sort_unstable();
            let expect: Vec<u64> = (1..=n_msgs as u64).collect();
            assert_eq!(seen, expect, "each sequenced envelope exactly once");
            let last = store.recv_where(ctx, "sentinel", |_| true);
            assert_eq!(last.payload, Payload::Data(vec![0xFF]));
        });
        sim.run().unwrap();
    }

    /// The window fabric's put-side guard under the same adversary: landed
    /// puts are exactly the strictly-increasing record subsequence of the
    /// interleaving (each seq at most once), and replaying the whole
    /// interleaving afterwards lands nothing and moves no counter.
    #[test]
    fn window_put_dedup_is_idempotent(
        seqs in proptest::collection::vec(0u64..24, 1..64),
    ) {
        use cp_simnet::{PutStatus, WindowDesc, WindowFabric};

        let fabric = WindowFabric::new();
        fabric
            .register(WindowDesc {
                chan: 0,
                node: 0,
                spe: 0,
                start: 0,
                len: 64,
                owner_rank: 1,
            })
            .unwrap();

        let mut expect_landed = Vec::new();
        let mut record = None;
        for &s in &seqs {
            let status = fabric.put(0, s, vec![s as u8]).unwrap();
            if record.is_none_or(|r| s >= r) {
                assert_eq!(status, PutStatus::Landed, "seq {s} sets a new record");
                record = Some(s + 1);
                expect_landed.push(s);
            } else {
                assert_eq!(status, PutStatus::Duplicate, "stale seq {s}");
            }
        }
        let after_first = fabric.counters(0).unwrap();
        assert_eq!(after_first.puts, record.unwrap());

        for &s in &seqs {
            assert_eq!(
                fabric.put(0, s, vec![s as u8]).unwrap(),
                PutStatus::Duplicate,
                "replayed seq {s} must not land twice"
            );
        }
        assert_eq!(fabric.counters(0).unwrap(), after_first);
        let mut landed = Vec::new();
        while let Some(p) = fabric.take(0).unwrap() {
            landed.push(p.seq);
        }
        assert_eq!(landed, expect_landed, "FIFO of applied puts");
    }
}
