//! Message envelopes and the per-rank matching store.
//!
//! Each rank owns a [`MailStore`]: delivered envelopes wait there (with
//! their modelled arrival instants) until the rank consumes them with a
//! matching receive. Matching follows MPI semantics — by source and tag,
//! either of which may be a wildcard — and preserves non-overtaking order
//! between any one sender/receiver pair.

use crate::datatype::Datatype;
use cp_des::{Pid, ProcCtx, SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// An MPI rank number.
pub type Rank = usize;

/// An MPI message tag. User tags are non-negative; negative tags are
/// reserved for internal protocol traffic (collectives, Pilot services).
pub type Tag = i32;

/// Wildcard-capable source selector (`MPI_ANY_SOURCE` = `None`).
pub type SrcSel = Option<Rank>;

/// Wildcard-capable tag selector (`MPI_ANY_TAG` = `None`).
pub type TagSel = Option<Tag>;

/// What an envelope carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An eager data message.
    Data(Vec<u8>),
    /// Rendezvous request-to-send: "I have `bytes` for you under this id".
    Rts {
        /// Handshake id.
        id: u64,
        /// Payload size the sender holds.
        bytes: usize,
    },
    /// Rendezvous clear-to-send for the given id.
    Cts {
        /// Handshake id.
        id: u64,
    },
    /// Rendezvous data for the given id.
    RdvData {
        /// Handshake id.
        id: u64,
        /// The payload.
        data: Vec<u8>,
    },
}

/// One in-flight or queued message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Element type of the data.
    pub dtype: Datatype,
    /// Number of elements.
    pub count: usize,
    /// Wire sequence number for exactly-once delivery: every *logical* send
    /// gets a cluster-unique non-zero id, and every wire-level copy of it
    /// (fault-plan duplicates, retransmissions after a dropped attempt)
    /// carries the same id, so the receiving [`MailStore`] can discard all
    /// but the first copy. `0` means "unsequenced" and is never deduped
    /// (used by hand-built envelopes in tests).
    pub wire_seq: u64,
    /// The payload.
    pub payload: Payload,
}

impl Envelope {
    /// True if this envelope is the *start* of a user-visible message
    /// (eager data or a rendezvous header) matching the given selectors.
    pub fn matches_recv(&self, src: SrcSel, tag: TagSel) -> bool {
        let kind_ok = matches!(self.payload, Payload::Data(_) | Payload::Rts { .. });
        kind_ok && src.is_none_or(|s| s == self.src) && tag.is_none_or(|t| t == self.tag)
    }
}

/// Unwind payload raised when a process touches the mailbox of a rank that a
/// fault plan has killed. [`crate::MpiWorld::launch`] catches it and retires
/// the rank's process cleanly instead of failing the whole simulation.
pub(crate) struct RankDeadUnwind;

/// Run `f`, absorbing the fail-stop unwind raised when the mailbox it was
/// blocked on is poisoned or retired ([`MailStore::poison`] /
/// [`MailStore::take_over`]). Returns `Some(value)` on normal completion and
/// `None` if the rank died under `f`; any other panic propagates.
///
/// This lets a service loop that shares a rank's mailbox (e.g. a Co-Pilot's
/// MPI pump) retire quietly when a fault plan kills the rank or a standby
/// takes the mailbox over, instead of failing the whole simulation.
pub fn absorb_rank_death<T>(f: impl FnOnce() -> T) -> Option<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<RankDeadUnwind>().is_some() {
                None
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

struct StoreInner {
    arrived: Vec<(SimTime, u64, Envelope)>,
    next_arrival: u64,
    waiters: VecDeque<Pid>,
    label: String,
    /// Set when the owning rank is killed by a fault plan: deliveries are
    /// discarded and the owner's receives unwind with [`RankDeadUnwind`].
    poisoned: bool,
    /// Wire sequence numbers already delivered (exactly-once dedup): a
    /// second wire copy of a sequenced envelope is silently discarded.
    seen: HashSet<u64>,
    /// Set by [`MailStore::take_over`]: future deliveries are forwarded to
    /// the adopting store and blocked receivers unwind as dead so the old
    /// owner's pump can retire.
    forward_to: Option<MailStore>,
}

/// The matching store of one rank.
pub struct MailStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl Clone for MailStore {
    fn clone(&self) -> Self {
        MailStore {
            inner: self.inner.clone(),
        }
    }
}

impl MailStore {
    /// A fresh store labelled for diagnostics.
    pub fn new(label: &str) -> MailStore {
        MailStore {
            inner: Arc::new(Mutex::new(StoreInner {
                arrived: Vec::new(),
                next_arrival: 0,
                waiters: VecDeque::new(),
                label: label.to_string(),
                poisoned: false,
                seen: HashSet::new(),
                forward_to: None,
            })),
        }
    }

    /// Deliver an envelope that becomes visible `latency` from now.
    ///
    /// Exactly-once: a sequenced envelope (`wire_seq != 0`) whose sequence
    /// number was already delivered here is silently discarded, so
    /// fault-plan duplicates and retransmitted copies never surface twice.
    ///
    /// Wakes *every* waiter: several processes may wait on one store with
    /// different predicates (e.g. a Co-Pilot's MPI pump waiting for data
    /// while the Co-Pilot itself waits for a rendezvous CTS on the same
    /// rank), and only the matching one will consume; the rest re-register.
    pub fn deliver(&self, ctx: &ProcCtx, env: Envelope, latency: SimDuration) {
        let forward = {
            let mut st = self.inner.lock();
            if st.poisoned {
                // The owning rank is dead: the wire drops the message on the
                // floor, exactly like a real NIC with no host behind it.
                return;
            }
            match &st.forward_to {
                Some(target) => target.clone(),
                None => {
                    if env.wire_seq != 0 && !st.seen.insert(env.wire_seq) {
                        // Second wire copy of an already-delivered message.
                        return;
                    }
                    let seq = st.next_arrival;
                    st.next_arrival += 1;
                    st.arrived.push((ctx.now() + latency, seq, env));
                    for w in std::mem::take(&mut st.waiters) {
                        ctx.unblock(w, latency);
                    }
                    return;
                }
            }
        };
        // A standby took this mailbox over: the wire now lands there.
        forward.deliver(ctx, env, latency);
    }

    /// Hand this store's queue over to `target` (Co-Pilot failover): queued
    /// envelopes move across preserving their arrival instants and relative
    /// order, the dedup set merges so retransmitted copies of anything the
    /// old owner already saw stay suppressed, future [`MailStore::deliver`]
    /// calls forward to `target`, and any process blocked receiving on this
    /// store unwinds as dead (absorb with [`absorb_rank_death`]).
    pub fn take_over(&self, ctx: &ProcCtx, target: &MailStore) {
        let (moved, seen, waiters) = {
            let mut st = self.inner.lock();
            st.forward_to = Some(target.clone());
            let mut moved = std::mem::take(&mut st.arrived);
            moved.sort_by_key(|(at, seq, _)| (*at, *seq));
            (
                moved,
                std::mem::take(&mut st.seen),
                std::mem::take(&mut st.waiters),
            )
        };
        {
            let mut tgt = target.inner.lock();
            for (at, _, env) in moved {
                let seq = tgt.next_arrival;
                tgt.next_arrival += 1;
                tgt.arrived.push((at, seq, env));
            }
            tgt.seen.extend(seen);
            let tw = std::mem::take(&mut tgt.waiters);
            for w in tw {
                ctx.unblock(w, SimDuration::ZERO);
            }
        }
        // Wake the old owner's blocked receivers so they notice retirement
        // and unwind (their next pass sees `forward_to` set).
        for w in waiters {
            ctx.unblock(w, SimDuration::ZERO);
        }
    }

    /// True once [`MailStore::take_over`] has redirected this store.
    pub fn is_retired(&self) -> bool {
        self.inner.lock().forward_to.is_some()
    }

    /// Kill the owning rank's mailbox: pending and future deliveries are
    /// discarded and any process receiving on the store unwinds as dead.
    /// Called by the rank-death reaper a fault plan schedules.
    pub fn poison(&self, ctx: &ProcCtx) {
        let mut st = self.inner.lock();
        st.poisoned = true;
        st.arrived.clear();
        for w in std::mem::take(&mut st.waiters) {
            ctx.unblock(w, SimDuration::ZERO);
        }
    }

    /// True once [`MailStore::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Blocking receive of the envelope matching `pred`, honouring arrival
    /// times. Among simultaneously-matching envelopes the earliest-arriving
    /// wins, which preserves per-pair FIFO order.
    pub fn recv_where<F>(&self, ctx: &ProcCtx, what: &str, pred: F) -> Envelope
    where
        F: Fn(&Envelope) -> bool,
    {
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.poisoned || st.forward_to.is_some() {
                    drop(st);
                    std::panic::resume_unwind(Box::new(RankDeadUnwind));
                }
                let best = st
                    .arrived
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, e))| pred(e))
                    .min_by_key(|(_, (at, seq, _))| (*at, *seq))
                    .map(|(i, (at, _, _))| (i, *at));
                if let Some((idx, at)) = best {
                    if at <= ctx.now() {
                        let (_, _, env) = st.arrived.remove(idx);
                        return env;
                    }
                    let wait = at - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: {what}"));
        }
    }

    /// Like [`MailStore::recv_where`], but gives up `deadline` of virtual
    /// time after the call, returning `None` with the clock at exactly
    /// `start + deadline`. A message whose modelled arrival instant lies
    /// beyond the deadline does not count as received.
    pub fn recv_where_deadline<F>(
        &self,
        ctx: &ProcCtx,
        what: &str,
        pred: F,
        deadline: SimDuration,
    ) -> Option<Envelope>
    where
        F: Fn(&Envelope) -> bool,
    {
        let deadline_at = ctx.now() + deadline;
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.poisoned || st.forward_to.is_some() {
                    drop(st);
                    std::panic::resume_unwind(Box::new(RankDeadUnwind));
                }
                let best = st
                    .arrived
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, e))| pred(e))
                    .min_by_key(|(_, (at, seq, _))| (*at, *seq))
                    .map(|(i, (at, _, _))| (i, *at));
                if let Some((idx, at)) = best {
                    if at <= ctx.now() {
                        let (_, _, env) = st.arrived.remove(idx);
                        return Some(env);
                    }
                    if at > deadline_at {
                        // It will arrive, but too late to matter.
                        let wait = deadline_at - ctx.now();
                        drop(st);
                        ctx.advance(wait);
                        return None;
                    }
                    let wait = at - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                if ctx.now() >= deadline_at {
                    return None;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            let remaining = deadline_at - ctx.now();
            if !ctx.block_timeout(&format!("{label}: {what}"), remaining) {
                // Deadline fired while parked: deregister and give up.
                let me = ctx.pid();
                self.inner.lock().waiters.retain(|&p| p != me);
                return None;
            }
        }
    }

    /// Blocking probe: like [`MailStore::recv_where`] but leaves the
    /// envelope in place and returns a clone.
    pub fn probe_where<F>(&self, ctx: &ProcCtx, what: &str, pred: F) -> Envelope
    where
        F: Fn(&Envelope) -> bool,
    {
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.poisoned || st.forward_to.is_some() {
                    drop(st);
                    std::panic::resume_unwind(Box::new(RankDeadUnwind));
                }
                let best = st
                    .arrived
                    .iter()
                    .filter(|(_, _, e)| pred(e))
                    .min_by_key(|(at, seq, _)| (*at, *seq))
                    .map(|(at, _, e)| (*at, e.clone()));
                if let Some((at, env)) = best {
                    if at <= ctx.now() {
                        return env;
                    }
                    let wait = at - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: {what}"));
        }
    }

    /// Non-blocking probe: is a matching envelope available right now?
    pub fn iprobe<F>(&self, ctx: &ProcCtx, pred: F) -> Option<Envelope>
    where
        F: Fn(&Envelope) -> bool,
    {
        let st = self.inner.lock();
        st.arrived
            .iter()
            .filter(|(at, _, e)| *at <= ctx.now() && pred(e))
            .min_by_key(|(at, seq, _)| (*at, *seq))
            .map(|(_, _, e)| e.clone())
    }

    /// Number of queued envelopes (diagnostics).
    pub fn queued(&self) -> usize {
        self.inner.lock().arrived.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::Simulation;

    fn env(src: Rank, tag: Tag, byte: u8) -> Envelope {
        Envelope {
            src,
            dst: 0,
            tag,
            dtype: Datatype::Byte,
            count: 1,
            wire_seq: 0,
            payload: Payload::Data(vec![byte]),
        }
    }

    #[test]
    fn recv_matches_by_source_and_tag() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            s1.deliver(ctx, env(1, 10, b'a'), SimDuration::ZERO);
            s1.deliver(ctx, env(2, 20, b'b'), SimDuration::ZERO);
            s1.deliver(ctx, env(1, 20, b'c'), SimDuration::ZERO);
        });
        sim.spawn("recv", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(Some(2), Some(20)));
            assert_eq!(m.payload, Payload::Data(vec![b'b']));
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, Some(20)));
            assert_eq!(m.src, 1);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, None));
            assert_eq!(m.tag, 10);
        });
        sim.run().unwrap();
    }

    #[test]
    fn earliest_arrival_wins_not_delivery_order() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            // Delivered first but arrives later (slow path).
            s1.deliver(ctx, env(1, 0, b'x'), SimDuration::from_micros(100));
            // Delivered second, arrives sooner (fast local path).
            s1.deliver(ctx, env(2, 0, b'y'), SimDuration::from_micros(10));
        });
        sim.spawn("recv", move |ctx| {
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, None));
            assert_eq!(m.src, 2);
            assert_eq!(ctx.now().as_micros_f64(), 10.0);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, None));
            assert_eq!(m.src, 1);
            assert_eq!(ctx.now().as_micros_f64(), 100.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn same_pair_order_is_fifo() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            s1.deliver(ctx, env(1, 0, 1), SimDuration::from_micros(5));
            s1.deliver(ctx, env(1, 0, 2), SimDuration::from_micros(5));
        });
        sim.spawn("recv", move |ctx| {
            for expect in [1u8, 2] {
                let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(Some(1), None));
                assert_eq!(m.payload, Payload::Data(vec![expect]));
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn probe_does_not_consume() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            ctx.advance(SimDuration::from_micros(3));
            s1.deliver(ctx, env(1, 7, 9), SimDuration::ZERO);
        });
        sim.spawn("recv", move |ctx| {
            assert!(s2.iprobe(ctx, |e| e.matches_recv(None, None)).is_none());
            let p = s2.probe_where(ctx, "probe", |e| e.matches_recv(None, Some(7)));
            assert_eq!(p.src, 1);
            assert_eq!(s2.queued(), 1);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, Some(7)));
            assert_eq!(m.payload, Payload::Data(vec![9]));
            assert_eq!(s2.queued(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn sequenced_duplicate_is_discarded_unsequenced_is_not() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            let mut sequenced = env(1, 0, b'a');
            sequenced.wire_seq = 7;
            // Two wire copies of one logical send: only the first lands.
            s1.deliver(ctx, sequenced.clone(), SimDuration::ZERO);
            s1.deliver(ctx, sequenced, SimDuration::from_micros(3));
            // Unsequenced envelopes never dedup.
            s1.deliver(ctx, env(2, 0, b'b'), SimDuration::ZERO);
            s1.deliver(ctx, env(2, 0, b'b'), SimDuration::ZERO);
        });
        sim.spawn("recv", move |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            assert_eq!(s2.queued(), 3);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(Some(1), None));
            assert_eq!(m.payload, Payload::Data(vec![b'a']));
            assert!(s2.iprobe(ctx, |e| e.matches_recv(Some(1), None)).is_none());
        });
        sim.run().unwrap();
    }

    #[test]
    fn take_over_moves_queue_forwards_and_keeps_dedup() {
        let old = MailStore::new("primary");
        let new = MailStore::new("standby");
        let mut sim = Simulation::new();
        let (old_s, new_s) = (old.clone(), new.clone());
        sim.spawn("driver", move |ctx| {
            let mut first = env(1, 0, b'x');
            first.wire_seq = 11;
            old_s.deliver(ctx, first.clone(), SimDuration::ZERO);
            old_s.take_over(ctx, &new_s);
            assert!(old_s.is_retired());
            // The queued envelope moved across.
            assert_eq!(old_s.queued(), 0);
            assert_eq!(new_s.queued(), 1);
            // A retransmitted copy of the pre-takeover message forwards to
            // the new store and is still deduped there.
            old_s.deliver(ctx, first, SimDuration::ZERO);
            assert_eq!(new_s.queued(), 1);
            // Fresh traffic addressed to the old store lands in the new one.
            let mut second = env(1, 0, b'y');
            second.wire_seq = 12;
            old_s.deliver(ctx, second, SimDuration::ZERO);
            assert_eq!(new_s.queued(), 2);
            let m = new_s.recv_where(ctx, "recv", |e| e.matches_recv(Some(1), None));
            assert_eq!(m.payload, Payload::Data(vec![b'x']));
        });
        sim.run().unwrap();
    }

    #[test]
    fn receiver_blocked_on_taken_over_store_unwinds_absorbable() {
        let old = MailStore::new("primary");
        let new = MailStore::new("standby");
        let mut sim = Simulation::new();
        let (old_a, old_b, new_b) = (old.clone(), old, new);
        sim.spawn("pump", move |ctx| {
            let got = absorb_rank_death(|| {
                old_a.recv_where(ctx, "pump recv", |e| e.matches_recv(None, None))
            });
            assert!(got.is_none(), "pump must retire on takeover");
        });
        sim.spawn("watchdog", move |ctx| {
            ctx.advance(SimDuration::from_micros(5));
            old_b.take_over(ctx, &new_b);
        });
        sim.run().unwrap();
    }

    #[test]
    fn control_payloads_do_not_match_user_recv() {
        let e = Envelope {
            src: 0,
            dst: 1,
            tag: 5,
            dtype: Datatype::Byte,
            count: 0,
            wire_seq: 0,
            payload: Payload::Cts { id: 3 },
        };
        assert!(!e.matches_recv(None, None));
        let rts = Envelope {
            payload: Payload::Rts { id: 1, bytes: 100 },
            ..e.clone()
        };
        assert!(rts.matches_recv(Some(0), Some(5)));
    }
}
