//! Message envelopes and the per-rank matching store.
//!
//! Each rank owns a [`MailStore`]: delivered envelopes wait there (with
//! their modelled arrival instants) until the rank consumes them with a
//! matching receive. Matching follows MPI semantics — by source and tag,
//! either of which may be a wildcard — and preserves non-overtaking order
//! between any one sender/receiver pair.

use crate::datatype::Datatype;
use cp_des::{Pid, ProcCtx, SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// An MPI rank number.
pub type Rank = usize;

/// An MPI message tag. User tags are non-negative; negative tags are
/// reserved for internal protocol traffic (collectives, Pilot services).
pub type Tag = i32;

/// Wildcard-capable source selector (`MPI_ANY_SOURCE` = `None`).
pub type SrcSel = Option<Rank>;

/// Wildcard-capable tag selector (`MPI_ANY_TAG` = `None`).
pub type TagSel = Option<Tag>;

/// What an envelope carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An eager data message.
    Data(Vec<u8>),
    /// Rendezvous request-to-send: "I have `bytes` for you under this id".
    Rts {
        /// Handshake id.
        id: u64,
        /// Payload size the sender holds.
        bytes: usize,
    },
    /// Rendezvous clear-to-send for the given id.
    Cts {
        /// Handshake id.
        id: u64,
    },
    /// Rendezvous data for the given id.
    RdvData {
        /// Handshake id.
        id: u64,
        /// The payload.
        data: Vec<u8>,
    },
}

/// One in-flight or queued message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Element type of the data.
    pub dtype: Datatype,
    /// Number of elements.
    pub count: usize,
    /// The payload.
    pub payload: Payload,
}

impl Envelope {
    /// True if this envelope is the *start* of a user-visible message
    /// (eager data or a rendezvous header) matching the given selectors.
    pub fn matches_recv(&self, src: SrcSel, tag: TagSel) -> bool {
        let kind_ok = matches!(self.payload, Payload::Data(_) | Payload::Rts { .. });
        kind_ok && src.is_none_or(|s| s == self.src) && tag.is_none_or(|t| t == self.tag)
    }
}

/// Unwind payload raised when a process touches the mailbox of a rank that a
/// fault plan has killed. [`crate::MpiWorld::launch`] catches it and retires
/// the rank's process cleanly instead of failing the whole simulation.
pub(crate) struct RankDeadUnwind;

struct StoreInner {
    arrived: Vec<(SimTime, u64, Envelope)>,
    next_arrival: u64,
    waiters: VecDeque<Pid>,
    label: String,
    /// Set when the owning rank is killed by a fault plan: deliveries are
    /// discarded and the owner's receives unwind with [`RankDeadUnwind`].
    poisoned: bool,
}

/// The matching store of one rank.
pub struct MailStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl Clone for MailStore {
    fn clone(&self) -> Self {
        MailStore {
            inner: self.inner.clone(),
        }
    }
}

impl MailStore {
    /// A fresh store labelled for diagnostics.
    pub fn new(label: &str) -> MailStore {
        MailStore {
            inner: Arc::new(Mutex::new(StoreInner {
                arrived: Vec::new(),
                next_arrival: 0,
                waiters: VecDeque::new(),
                label: label.to_string(),
                poisoned: false,
            })),
        }
    }

    /// Deliver an envelope that becomes visible `latency` from now.
    ///
    /// Wakes *every* waiter: several processes may wait on one store with
    /// different predicates (e.g. a Co-Pilot's MPI pump waiting for data
    /// while the Co-Pilot itself waits for a rendezvous CTS on the same
    /// rank), and only the matching one will consume; the rest re-register.
    pub fn deliver(&self, ctx: &ProcCtx, env: Envelope, latency: SimDuration) {
        let mut st = self.inner.lock();
        if st.poisoned {
            // The owning rank is dead: the wire drops the message on the
            // floor, exactly like a real NIC with no host behind it.
            return;
        }
        let seq = st.next_arrival;
        st.next_arrival += 1;
        st.arrived.push((ctx.now() + latency, seq, env));
        for w in std::mem::take(&mut st.waiters) {
            ctx.unblock(w, latency);
        }
    }

    /// Kill the owning rank's mailbox: pending and future deliveries are
    /// discarded and any process receiving on the store unwinds as dead.
    /// Called by the rank-death reaper a fault plan schedules.
    pub fn poison(&self, ctx: &ProcCtx) {
        let mut st = self.inner.lock();
        st.poisoned = true;
        st.arrived.clear();
        for w in std::mem::take(&mut st.waiters) {
            ctx.unblock(w, SimDuration::ZERO);
        }
    }

    /// True once [`MailStore::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Blocking receive of the envelope matching `pred`, honouring arrival
    /// times. Among simultaneously-matching envelopes the earliest-arriving
    /// wins, which preserves per-pair FIFO order.
    pub fn recv_where<F>(&self, ctx: &ProcCtx, what: &str, pred: F) -> Envelope
    where
        F: Fn(&Envelope) -> bool,
    {
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.poisoned {
                    drop(st);
                    std::panic::resume_unwind(Box::new(RankDeadUnwind));
                }
                let best = st
                    .arrived
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, e))| pred(e))
                    .min_by_key(|(_, (at, seq, _))| (*at, *seq))
                    .map(|(i, (at, _, _))| (i, *at));
                if let Some((idx, at)) = best {
                    if at <= ctx.now() {
                        let (_, _, env) = st.arrived.remove(idx);
                        return env;
                    }
                    let wait = at - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: {what}"));
        }
    }

    /// Like [`MailStore::recv_where`], but gives up `deadline` of virtual
    /// time after the call, returning `None` with the clock at exactly
    /// `start + deadline`. A message whose modelled arrival instant lies
    /// beyond the deadline does not count as received.
    pub fn recv_where_deadline<F>(
        &self,
        ctx: &ProcCtx,
        what: &str,
        pred: F,
        deadline: SimDuration,
    ) -> Option<Envelope>
    where
        F: Fn(&Envelope) -> bool,
    {
        let deadline_at = ctx.now() + deadline;
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.poisoned {
                    drop(st);
                    std::panic::resume_unwind(Box::new(RankDeadUnwind));
                }
                let best = st
                    .arrived
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, e))| pred(e))
                    .min_by_key(|(_, (at, seq, _))| (*at, *seq))
                    .map(|(i, (at, _, _))| (i, *at));
                if let Some((idx, at)) = best {
                    if at <= ctx.now() {
                        let (_, _, env) = st.arrived.remove(idx);
                        return Some(env);
                    }
                    if at > deadline_at {
                        // It will arrive, but too late to matter.
                        let wait = deadline_at - ctx.now();
                        drop(st);
                        ctx.advance(wait);
                        return None;
                    }
                    let wait = at - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                if ctx.now() >= deadline_at {
                    return None;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            let remaining = deadline_at - ctx.now();
            if !ctx.block_timeout(&format!("{label}: {what}"), remaining) {
                // Deadline fired while parked: deregister and give up.
                let me = ctx.pid();
                self.inner.lock().waiters.retain(|&p| p != me);
                return None;
            }
        }
    }

    /// Blocking probe: like [`MailStore::recv_where`] but leaves the
    /// envelope in place and returns a clone.
    pub fn probe_where<F>(&self, ctx: &ProcCtx, what: &str, pred: F) -> Envelope
    where
        F: Fn(&Envelope) -> bool,
    {
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.poisoned {
                    drop(st);
                    std::panic::resume_unwind(Box::new(RankDeadUnwind));
                }
                let best = st
                    .arrived
                    .iter()
                    .filter(|(_, _, e)| pred(e))
                    .min_by_key(|(at, seq, _)| (*at, *seq))
                    .map(|(at, _, e)| (*at, e.clone()));
                if let Some((at, env)) = best {
                    if at <= ctx.now() {
                        return env;
                    }
                    let wait = at - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: {what}"));
        }
    }

    /// Non-blocking probe: is a matching envelope available right now?
    pub fn iprobe<F>(&self, ctx: &ProcCtx, pred: F) -> Option<Envelope>
    where
        F: Fn(&Envelope) -> bool,
    {
        let st = self.inner.lock();
        st.arrived
            .iter()
            .filter(|(at, _, e)| *at <= ctx.now() && pred(e))
            .min_by_key(|(at, seq, _)| (*at, *seq))
            .map(|(_, _, e)| e.clone())
    }

    /// Number of queued envelopes (diagnostics).
    pub fn queued(&self) -> usize {
        self.inner.lock().arrived.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::Simulation;

    fn env(src: Rank, tag: Tag, byte: u8) -> Envelope {
        Envelope {
            src,
            dst: 0,
            tag,
            dtype: Datatype::Byte,
            count: 1,
            payload: Payload::Data(vec![byte]),
        }
    }

    #[test]
    fn recv_matches_by_source_and_tag() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            s1.deliver(ctx, env(1, 10, b'a'), SimDuration::ZERO);
            s1.deliver(ctx, env(2, 20, b'b'), SimDuration::ZERO);
            s1.deliver(ctx, env(1, 20, b'c'), SimDuration::ZERO);
        });
        sim.spawn("recv", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(Some(2), Some(20)));
            assert_eq!(m.payload, Payload::Data(vec![b'b']));
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, Some(20)));
            assert_eq!(m.src, 1);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, None));
            assert_eq!(m.tag, 10);
        });
        sim.run().unwrap();
    }

    #[test]
    fn earliest_arrival_wins_not_delivery_order() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            // Delivered first but arrives later (slow path).
            s1.deliver(ctx, env(1, 0, b'x'), SimDuration::from_micros(100));
            // Delivered second, arrives sooner (fast local path).
            s1.deliver(ctx, env(2, 0, b'y'), SimDuration::from_micros(10));
        });
        sim.spawn("recv", move |ctx| {
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, None));
            assert_eq!(m.src, 2);
            assert_eq!(ctx.now().as_micros_f64(), 10.0);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, None));
            assert_eq!(m.src, 1);
            assert_eq!(ctx.now().as_micros_f64(), 100.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn same_pair_order_is_fifo() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            s1.deliver(ctx, env(1, 0, 1), SimDuration::from_micros(5));
            s1.deliver(ctx, env(1, 0, 2), SimDuration::from_micros(5));
        });
        sim.spawn("recv", move |ctx| {
            for expect in [1u8, 2] {
                let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(Some(1), None));
                assert_eq!(m.payload, Payload::Data(vec![expect]));
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn probe_does_not_consume() {
        let store = MailStore::new("r0");
        let mut sim = Simulation::new();
        let (s1, s2) = (store.clone(), store);
        sim.spawn("sender", move |ctx| {
            ctx.advance(SimDuration::from_micros(3));
            s1.deliver(ctx, env(1, 7, 9), SimDuration::ZERO);
        });
        sim.spawn("recv", move |ctx| {
            assert!(s2.iprobe(ctx, |e| e.matches_recv(None, None)).is_none());
            let p = s2.probe_where(ctx, "probe", |e| e.matches_recv(None, Some(7)));
            assert_eq!(p.src, 1);
            assert_eq!(s2.queued(), 1);
            let m = s2.recv_where(ctx, "recv", |e| e.matches_recv(None, Some(7)));
            assert_eq!(m.payload, Payload::Data(vec![9]));
            assert_eq!(s2.queued(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn control_payloads_do_not_match_user_recv() {
        let e = Envelope {
            src: 0,
            dst: 1,
            tag: 5,
            dtype: Datatype::Byte,
            count: 0,
            payload: Payload::Cts { id: 3 },
        };
        assert!(!e.matches_recv(None, None));
        let rts = Envelope {
            payload: Payload::Rts { id: 1, bytes: 100 },
            ..e.clone()
        };
        assert!(rts.matches_recv(Some(0), Some(5)));
    }
}
