//! Sub-communicators: `MPI_Comm_split`.
//!
//! A [`SubComm`] is a deterministic relabelling of a subset of world ranks:
//! every member calls [`Comm::split`] with a `color` (which group) and a
//! `key` (ordering within the group; ties broken by world rank, as the MPI
//! standard specifies). Collectives and point-to-point operate on group
//! ranks; traffic is isolated from other groups by a per-color tag offset.
//!
//! The split itself is computed locally from the full `(color, key)` table,
//! which the members exchange through an allgather — the same way real MPI
//! implementations do it.

use crate::collect::{ReduceOp, ReduceScalar};
use crate::datatype::MpiScalar;
use crate::message::{Rank, Tag};
use crate::world::Comm;

/// Reserved tag base for split-exchange and per-group traffic. Each color
/// gets its own tag slice so concurrent groups cannot collide.
const TAG_GROUP_BASE: Tag = -200_000;
const TAGS_PER_GROUP: Tag = 16;

/// The color passed to [`Comm::split`]; `None` opts out (like
/// `MPI_UNDEFINED`).
pub type Color = Option<u32>;

/// A communicator over a subset of world ranks.
pub struct SubComm<'a> {
    world: &'a Comm,
    /// World ranks of the members, in group-rank order.
    members: Vec<Rank>,
    /// My group rank.
    rank: usize,
    /// This group's color (tag-space selector).
    color: u32,
}

impl Comm {
    /// `MPI_Comm_split`: every rank of the world calls this; ranks passing
    /// the same `Some(color)` form a group ordered by `(key, world rank)`.
    /// Returns `None` for ranks passing `color = None`.
    ///
    /// ```
    /// use cp_mpisim::{mpirun, MpiCosts, ReduceOp};
    /// use cp_simnet::{ClusterSpec, NodeId};
    ///
    /// let spec = ClusterSpec::two_cells_one_xeon();
    /// mpirun(&spec, vec![NodeId(0), NodeId(1), NodeId(2)], MpiCosts::default(), |comm| {
    ///     // Odd and even world ranks form separate groups.
    ///     let g = comm.split(Some((comm.rank() % 2) as u32), 0).unwrap();
    ///     let total = g.reduce(0, ReduceOp::Sum, &[1i64]);
    ///     if g.rank() == 0 {
    ///         assert_eq!(total.unwrap()[0], g.size() as i64);
    ///     }
    /// }).unwrap();
    /// ```
    pub fn split(&self, color: Color, key: i32) -> Option<SubComm<'_>> {
        // Exchange (color, key) with everyone. Encode None as u32::MAX.
        let mine = [color.unwrap_or(u32::MAX), key as u32];
        let table = self.allgather(&mine);
        let my_color = color?;
        let mut members: Vec<(i32, Rank)> = table
            .iter()
            .enumerate()
            .filter(|(_, e)| e[0] == my_color)
            .map(|(r, e)| (e[1] as i32, r))
            .collect();
        members.sort();
        let members: Vec<Rank> = members.into_iter().map(|(_, r)| r).collect();
        let rank = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller is a member of its own color");
        Some(SubComm {
            world: self,
            members,
            rank,
            color: my_color,
        })
    }
}

impl SubComm<'_> {
    /// My rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The world rank of group member `r`.
    pub fn world_rank(&self, r: usize) -> Rank {
        self.members[r]
    }

    fn tag(&self, slot: Tag) -> Tag {
        TAG_GROUP_BASE - (self.color as Tag) * TAGS_PER_GROUP - slot
    }

    /// Point-to-point send to group rank `dst`.
    pub fn send<T: MpiScalar>(&self, dst: usize, data: &[T]) {
        self.world.send(self.members[dst], self.tag(0), data);
    }

    /// Blocking receive from group rank `src`.
    pub fn recv_typed<T: MpiScalar>(&self, src: usize) -> Vec<T> {
        let (v, _) = self
            .world
            .recv_typed::<T>(Some(self.members[src]), Some(self.tag(0)));
        v
    }

    /// Broadcast from group rank `root` (linear over group members — group
    /// sizes are small by construction).
    pub fn bcast<T: MpiScalar>(&self, root: usize, data: Option<&[T]>) -> Vec<T> {
        if self.rank == root {
            let d = data.expect("root must supply broadcast data").to_vec();
            for r in 0..self.size() {
                if r != root {
                    self.world.send(self.members[r], self.tag(1), &d);
                }
            }
            d
        } else {
            let (v, _) = self
                .world
                .recv_typed::<T>(Some(self.members[root]), Some(self.tag(1)));
            v
        }
    }

    /// Reduce to group rank `root`.
    pub fn reduce<T: ReduceScalar>(&self, root: usize, op: ReduceOp, data: &[T]) -> Option<Vec<T>> {
        if self.rank == root {
            let mut acc = data.to_vec();
            for r in 0..self.size() {
                if r == root {
                    continue;
                }
                let (v, _) = self
                    .world
                    .recv_typed::<T>(Some(self.members[r]), Some(self.tag(2)));
                for (a, b) in acc.iter_mut().zip(v) {
                    *a = T::combine(op, *a, b);
                }
            }
            Some(acc)
        } else {
            self.world.send(self.members[root], self.tag(2), data);
            None
        }
    }

    /// Barrier over the group (fan-in to group rank 0, fan-out).
    pub fn barrier(&self) {
        if self.rank == 0 {
            for r in 1..self.size() {
                let _ = self
                    .world
                    .recv_typed::<u8>(Some(self.members[r]), Some(self.tag(3)));
            }
            for r in 1..self.size() {
                self.world.send(self.members[r], self.tag(4), &[0u8; 0]);
            }
        } else {
            self.world.send(self.members[0], self.tag(3), &[0u8; 0]);
            let _ = self
                .world
                .recv_typed::<u8>(Some(self.members[0]), Some(self.tag(4)));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::costs::MpiCosts;
    use crate::world::mpirun;
    use crate::ReduceOp;
    use cp_simnet::{ClusterSpec, NodeId, NodeKind};

    fn spec(n: usize) -> (ClusterSpec, Vec<NodeId>) {
        let spec = ClusterSpec {
            nodes: vec![NodeKind::Commodity { cores: 4 }; n],
            ..ClusterSpec::two_cells_one_xeon()
        };
        (spec, (0..n).map(NodeId).collect())
    }

    #[test]
    fn split_by_parity_and_reduce() {
        let (s, p) = spec(7);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let color = Some((comm.rank() % 2) as u32);
            let g = comm.split(color, 0).unwrap();
            // Evens: ranks 0,2,4,6 (4 members); odds: 1,3,5 (3 members).
            let expect_size = if comm.rank() % 2 == 0 { 4 } else { 3 };
            assert_eq!(g.size(), expect_size);
            assert_eq!(g.world_rank(g.rank()), comm.rank());
            let total = g.reduce(0, ReduceOp::Sum, &[comm.rank() as i64]);
            if g.rank() == 0 {
                let expect: i64 = if comm.rank() % 2 == 0 {
                    2 + 4 + 6
                } else {
                    1 + 3 + 5
                };
                assert_eq!(total, Some(vec![expect]));
            } else {
                assert_eq!(total, None);
            }
        })
        .unwrap();
    }

    #[test]
    fn key_reorders_group_ranks() {
        let (s, p) = spec(4);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            // Reverse ordering: key = -world_rank.
            let g = comm.split(Some(0), -(comm.rank() as i32)).unwrap();
            assert_eq!(g.size(), 4);
            assert_eq!(g.rank(), 3 - comm.rank());
            // Group broadcast from the member with the highest world rank
            // (group rank 0).
            let got = if g.rank() == 0 {
                g.bcast(0, Some(&[comm.rank() as u32]))
            } else {
                g.bcast::<u32>(0, None)
            };
            assert_eq!(got, vec![3]);
        })
        .unwrap();
    }

    #[test]
    fn undefined_color_opts_out() {
        let (s, p) = spec(5);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let color = if comm.rank() == 2 { None } else { Some(9) };
            match comm.split(color, 0) {
                None => assert_eq!(comm.rank(), 2),
                Some(g) => {
                    assert_eq!(g.size(), 4);
                    g.barrier();
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn concurrent_groups_do_not_cross_talk() {
        let (s, p) = spec(6);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let g = comm.split(Some((comm.rank() % 3) as u32), 0).unwrap();
            assert_eq!(g.size(), 2);
            // Each pair ping-pongs its own color value simultaneously.
            let color = (comm.rank() % 3) as i32;
            if g.rank() == 0 {
                g.send(1, &[color * 100]);
                let v = g.recv_typed::<i32>(1);
                assert_eq!(v, vec![color * 100 + 1]);
            } else {
                let v = g.recv_typed::<i32>(0);
                assert_eq!(v, vec![color * 100]);
                g.send(0, &[color * 100 + 1]);
            }
        })
        .unwrap();
    }
}
