//! Per-rank MPI software costs.
//!
//! Together with `cp-simnet`'s transport model these reproduce the paper's
//! measured raw MPI ping-pong: a PPE endpoint contributes ~19 µs of software
//! latency per message (Open MPI 1.2.8 on the in-order, 3.2 GHz PPE is
//! slow — the paper explicitly notes PPE endpoints measured slower than
//! Xeon ones), so PPE↔PPE over the wire is 19 + 60 + 19 ≈ 98 µs — Table
//! II's type-1 baseline. Per-byte software cost (packetization, datatype
//! conversion) applies on the wire path; the shared-memory path moves bytes
//! at cache speed.

use cp_simnet::NodeKind;

/// MPI software cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiCosts {
    /// Per-message software latency on a PPE endpoint, µs.
    pub ppe_sw_latency_us: f64,
    /// Per-byte software cost on a PPE endpoint (wire path), µs/B.
    pub ppe_sw_per_byte_us: f64,
    /// Per-message software latency on a commodity endpoint, µs.
    pub commodity_sw_latency_us: f64,
    /// Per-byte software cost on a commodity endpoint (wire path), µs/B.
    pub commodity_sw_per_byte_us: f64,
    /// Per-message software latency on a PPE endpoint for the
    /// shared-memory path, µs (no packetization or NIC driver involved;
    /// calibrated from Table II type-3 minus type-2: the wire replaces the
    /// local path at ~81 µs, so local MPI α ≈ 17 µs on PPEs).
    pub ppe_shmem_sw_latency_us: f64,
    /// Shared-memory-path software latency on a commodity endpoint, µs.
    pub commodity_shmem_sw_latency_us: f64,
    /// Per-byte cost of the shared-memory path (per side), µs/B.
    pub shmem_per_byte_us: f64,
    /// Messages at or below this many bytes use the eager protocol;
    /// larger ones do a rendezvous handshake.
    pub eager_limit: usize,
}

impl Default for MpiCosts {
    fn default() -> Self {
        MpiCosts {
            ppe_sw_latency_us: 19.0,
            ppe_sw_per_byte_us: 0.0131,
            commodity_sw_latency_us: 5.0,
            commodity_sw_per_byte_us: 0.002,
            ppe_shmem_sw_latency_us: 6.0,
            commodity_shmem_sw_latency_us: 2.0,
            shmem_per_byte_us: 0.000_8,
            eager_limit: 16 * 1024,
        }
    }
}

impl MpiCosts {
    /// Software cost one side pays for a message of `bytes` on the given
    /// node kind; `wire` selects the internode path with its per-byte
    /// packetization cost.
    pub fn side_us(&self, kind: NodeKind, bytes: usize, wire: bool) -> f64 {
        if wire {
            let (lat, per_byte) = match kind {
                NodeKind::Cell { .. } => (self.ppe_sw_latency_us, self.ppe_sw_per_byte_us),
                NodeKind::Commodity { .. } => {
                    (self.commodity_sw_latency_us, self.commodity_sw_per_byte_us)
                }
            };
            lat + bytes as f64 * per_byte
        } else {
            let lat = match kind {
                NodeKind::Cell { .. } => self.ppe_shmem_sw_latency_us,
                NodeKind::Commodity { .. } => self.commodity_shmem_sw_latency_us,
            };
            lat + bytes as f64 * self.shmem_per_byte_us
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppe_wire_pingpong_anchor() {
        // Both sides PPE + default wire latency 60us: 19 + 60 + 19 = 98.
        let m = MpiCosts::default();
        let net = cp_simnet::NetCosts::default();
        let one_byte =
            m.side_us(NodeKind::Cell { spes: 8 }, 1, true) * 2.0 + net.transport_us(false, 1);
        assert!((one_byte - 98.0).abs() < 0.5, "got {one_byte}");
        let kb16 = 1600;
        let arr =
            m.side_us(NodeKind::Cell { spes: 8 }, kb16, true) * 2.0 + net.transport_us(false, kb16);
        assert!((arr - 160.0).abs() < 3.0, "got {arr}");
    }

    #[test]
    fn commodity_cheaper_than_ppe() {
        let m = MpiCosts::default();
        assert!(
            m.side_us(NodeKind::Commodity { cores: 4 }, 100, true)
                < m.side_us(NodeKind::Cell { spes: 8 }, 100, true)
        );
    }

    #[test]
    fn shmem_path_has_tiny_per_byte() {
        let m = MpiCosts::default();
        let wire = m.side_us(NodeKind::Cell { spes: 8 }, 1600, true);
        let shm = m.side_us(NodeKind::Cell { spes: 8 }, 1600, false);
        assert!(shm < wire);
        // Local PPE-PPE MPI latency anchor: 6 + 5 + 6 ≈ 17 us for one byte.
        let net = cp_simnet::NetCosts::default();
        let local =
            m.side_us(NodeKind::Cell { spes: 8 }, 1, false) * 2.0 + net.transport_us(true, 1);
        assert!((local - 17.0).abs() < 0.5, "local alpha {local}");
    }
}
