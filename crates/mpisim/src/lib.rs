#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-mpisim — an MPI-like message-passing layer for the simulated cluster
//!
//! Implements the slice of MPI-1 that Pilot (and hence CellPilot) builds on:
//! ranks placed on cluster nodes, typed point-to-point messages with tags
//! and wildcards, eager and rendezvous protocols, blocking/non-blocking
//! probe, and the collectives Pilot exposes through bundles (plus a few
//! more). Latencies are composed from `cp-simnet`'s transport model and the
//! per-rank software costs in [`MpiCosts`], calibrated so a PPE↔PPE
//! ping-pong over the wire reproduces the paper's raw-MPI baseline
//! (98 µs / 1 B, 160 µs / 1600 B).
//!
//! ```
//! use cp_mpisim::{mpirun, MpiCosts};
//! use cp_simnet::{ClusterSpec, NodeId};
//!
//! let spec = ClusterSpec::two_cells_one_xeon();
//! mpirun(&spec, vec![NodeId(0), NodeId(1)], MpiCosts::default(), |comm| {
//!     if comm.rank() == 0 {
//!         comm.send(1, 0, &[1.0f64, 2.0]);
//!     } else {
//!         let (v, _) = comm.recv_typed::<f64>(Some(0), Some(0));
//!         assert_eq!(v, vec![1.0, 2.0]);
//!     }
//! }).unwrap();
//! ```

mod collect;
mod costs;
mod datatype;
mod group;
mod message;
mod world;

pub use collect::{
    ReduceOp, ReduceScalar, TAG_ALLGATHER, TAG_ALLTOALL, TAG_BARRIER_DOWN, TAG_BARRIER_UP,
    TAG_BCAST, TAG_GATHER, TAG_REDUCE, TAG_SCAN, TAG_SCATTER,
};
pub use costs::MpiCosts;
pub use datatype::{decode_slice, encode_slice, Datatype, LongDouble, MpiScalar};
pub use group::{Color, SubComm};
pub use message::{absorb_rank_death, Envelope, MailStore, Payload, Rank, SrcSel, Tag, TagSel};
pub use world::{mpirun, Comm, MpiFault, MpiWorld, Msg};
