//! MPI datatypes and the canonical wire representation.
//!
//! The paper's cluster is heterogeneous: PowerPC-based PPEs (big-endian,
//! 16-byte `long double`) next to x86-64 Xeons (little-endian, 80-bit
//! `long double`). MPI's job — which Pilot leans on — is to make a
//! `PI_Write("%100Lf", …)` on one architecture arrive intact on another.
//! We reproduce that by defining one canonical big-endian wire format per
//! datatype; every rank encodes/decodes through it, so a transfer between
//! ranks of different word lengths or endianness is exercised on every
//! message. `long double` travels as the PPE's 16-byte format (the paper's
//! 1600-byte array is 100 of these).

use std::fmt;

/// An MPI element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datatype {
    /// Raw byte (Pilot `%b`).
    Byte,
    /// Character (Pilot `%c`).
    Char,
    /// 16-bit signed integer (Pilot `%hd`).
    Int16,
    /// 32-bit signed integer (Pilot `%d`).
    Int32,
    /// 32-bit unsigned integer (Pilot `%u`).
    UInt32,
    /// 64-bit signed integer (Pilot `%ld`).
    Int64,
    /// 32-bit float (Pilot `%f`).
    Float32,
    /// 64-bit double (Pilot `%lf`).
    Float64,
    /// 128-bit long double (Pilot `%Lf`), 16 bytes on the wire.
    LongDouble,
}

impl Datatype {
    /// Bytes one element occupies on the wire.
    pub fn wire_size(self) -> usize {
        match self {
            Datatype::Byte | Datatype::Char => 1,
            Datatype::Int16 => 2,
            Datatype::Int32 | Datatype::UInt32 | Datatype::Float32 => 4,
            Datatype::Int64 | Datatype::Float64 => 8,
            Datatype::LongDouble => 16,
        }
    }

    /// All datatypes (for exhaustive tests/benches — each row of the
    /// paper's latency experiment covers "each data type supported").
    pub const ALL: [Datatype; 9] = [
        Datatype::Byte,
        Datatype::Char,
        Datatype::Int16,
        Datatype::Int32,
        Datatype::UInt32,
        Datatype::Int64,
        Datatype::Float32,
        Datatype::Float64,
        Datatype::LongDouble,
    ];
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Datatype::Byte => "byte",
            Datatype::Char => "char",
            Datatype::Int16 => "int16",
            Datatype::Int32 => "int32",
            Datatype::UInt32 => "uint32",
            Datatype::Int64 => "int64",
            Datatype::Float32 => "float32",
            Datatype::Float64 => "float64",
            Datatype::LongDouble => "longdouble",
        };
        f.write_str(s)
    }
}

/// A scalar that can travel as an MPI element.
pub trait MpiScalar: Copy + PartialEq + fmt::Debug + Send + 'static {
    /// The matching [`Datatype`].
    const DATATYPE: Datatype;
    /// Append this value's canonical wire bytes.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from its canonical wire bytes.
    fn decode(bytes: &[u8]) -> Self;
}

macro_rules! scalar_impl {
    ($t:ty, $dt:expr) => {
        impl MpiScalar for $t {
            const DATATYPE: Datatype = $dt;
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn decode(bytes: &[u8]) -> Self {
                Self::from_be_bytes(bytes.try_into().expect("wire size"))
            }
        }
    };
}

scalar_impl!(u8, Datatype::Byte);
scalar_impl!(i16, Datatype::Int16);
scalar_impl!(i32, Datatype::Int32);
scalar_impl!(u32, Datatype::UInt32);
scalar_impl!(i64, Datatype::Int64);
scalar_impl!(f32, Datatype::Float32);
scalar_impl!(f64, Datatype::Float64);

/// A 128-bit `long double` as the PPE represents it: we carry the value in
/// an `f64` plus explicit padding, but it occupies the full 16 wire bytes
/// (the paper's `%100Lf` array is 1600 bytes for this reason).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LongDouble(pub f64);

impl MpiScalar for LongDouble {
    const DATATYPE: Datatype = Datatype::LongDouble;
    fn encode(&self, out: &mut Vec<u8>) {
        // IBM long double is head+tail doubles; we canonicalize as the head
        // double followed by a zero tail.
        out.extend_from_slice(&self.0.to_be_bytes());
        out.extend_from_slice(&[0u8; 8]);
    }
    fn decode(bytes: &[u8]) -> Self {
        LongDouble(f64::from_be_bytes(
            bytes[..8].try_into().expect("wire size"),
        ))
    }
}

/// Encode a slice of scalars into canonical wire bytes.
pub fn encode_slice<T: MpiScalar>(vals: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * T::DATATYPE.wire_size());
    for v in vals {
        v.encode(&mut out);
    }
    out
}

/// Decode canonical wire bytes into scalars. Panics if `bytes` is not a
/// whole number of elements (callers validate counts first).
pub fn decode_slice<T: MpiScalar>(bytes: &[u8]) -> Vec<T> {
    let sz = T::DATATYPE.wire_size();
    assert!(
        bytes.len().is_multiple_of(sz),
        "byte length {} not a multiple of {} ({})",
        bytes.len(),
        sz,
        T::DATATYPE
    );
    bytes.chunks_exact(sz).map(T::decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(Datatype::Byte.wire_size(), 1);
        assert_eq!(Datatype::Int32.wire_size(), 4);
        assert_eq!(Datatype::LongDouble.wire_size(), 16);
        // The paper's array case: 100 long doubles = 1600 bytes.
        assert_eq!(100 * Datatype::LongDouble.wire_size(), 1600);
    }

    #[test]
    fn roundtrip_every_scalar() {
        assert_eq!(
            decode_slice::<i32>(&encode_slice(&[1i32, -5, 7])),
            vec![1, -5, 7]
        );
        assert_eq!(decode_slice::<u8>(&encode_slice(&[0u8, 255])), vec![0, 255]);
        assert_eq!(decode_slice::<i16>(&encode_slice(&[-300i16])), vec![-300]);
        assert_eq!(
            decode_slice::<i64>(&encode_slice(&[i64::MIN])),
            vec![i64::MIN]
        );
        assert_eq!(
            decode_slice::<u32>(&encode_slice(&[u32::MAX])),
            vec![u32::MAX]
        );
        assert_eq!(decode_slice::<f32>(&encode_slice(&[1.5f32])), vec![1.5]);
        assert_eq!(decode_slice::<f64>(&encode_slice(&[-2.25f64])), vec![-2.25]);
        let lds = [LongDouble(3.125), LongDouble(-0.5)];
        assert_eq!(
            decode_slice::<LongDouble>(&encode_slice(&lds)),
            lds.to_vec()
        );
    }

    #[test]
    fn wire_format_is_big_endian() {
        assert_eq!(encode_slice(&[0x01020304i32]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn long_double_occupies_16_bytes() {
        let b = encode_slice(&[LongDouble(1.0)]);
        assert_eq!(b.len(), 16);
        assert_eq!(&b[8..], &[0u8; 8]);
    }

    #[test]
    fn display_covers_all_datatypes() {
        let names: Vec<String> = Datatype::ALL.iter().map(|d| d.to_string()).collect();
        assert_eq!(names.len(), 9);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 9, "names must be distinct: {names:?}");
        assert!(names.contains(&"longdouble".to_string()));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_decode_panics() {
        let _ = decode_slice::<i32>(&[1, 2, 3]);
    }
}
