//! The MPI world: rank placement, communicator handles, and point-to-point
//! messaging with eager and rendezvous protocols.

use crate::costs::MpiCosts;
use crate::datatype::{decode_slice, encode_slice, Datatype, MpiScalar};
use crate::message::{Envelope, MailStore, Payload, Rank, RankDeadUnwind, SrcSel, Tag, TagSel};
use cp_des::{IncidentCategory, ProcCtx, SimDuration, SimError, SimReport, Simulation, Spawner};
use cp_simnet::{Cluster, ClusterSpec, FaultPlan, LinkVerdict, NodeId, NodeKind, RetryPolicy};
use cp_trace::Recorder;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A fault surfaced by the fault-aware communication calls
/// ([`Comm::try_send_bytes`], [`Comm::try_recv_deadline`]).
///
/// The infallible calls ([`Comm::send_bytes`], [`Comm::recv`]) never produce
/// these: without a fault plan they cannot occur, and with one the infallible
/// calls abort the simulation with a diagnostic instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiFault {
    /// The peer rank was killed by the fault plan before the operation
    /// could complete.
    PeerLost {
        /// The dead peer.
        rank: Rank,
    },
    /// The operation's virtual-time deadline elapsed first.
    Timeout {
        /// Description of what was being waited for.
        what: String,
    },
    /// Every transmission of a message was dropped by the fault plan, and
    /// the retry budget is exhausted.
    SendLost {
        /// The destination rank.
        dst: Rank,
        /// Transmissions attempted (initial send + retries).
        attempts: u32,
    },
}

impl fmt::Display for MpiFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiFault::PeerLost { rank } => write!(f, "peer rank {rank} is dead"),
            MpiFault::Timeout { what } => write!(f, "deadline elapsed waiting for {what}"),
            MpiFault::SendLost { dst, attempts } => write!(
                f,
                "message to rank {dst} lost after {attempts} transmission attempts"
            ),
        }
    }
}

impl std::error::Error for MpiFault {}

/// A received message.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Element type.
    pub dtype: Datatype,
    /// Element count.
    pub count: usize,
    /// Canonical wire bytes.
    pub data: Vec<u8>,
}

impl Msg {
    /// Decode the payload as a slice of `T`, checking the datatype.
    pub fn decode<T: MpiScalar>(&self) -> Vec<T> {
        assert_eq!(
            self.dtype,
            T::DATATYPE,
            "datatype mismatch: message carries {}, caller wants {}",
            self.dtype,
            T::DATATYPE
        );
        decode_slice(&self.data)
    }
}

pub(crate) struct WorldInner {
    pub cluster: Arc<Cluster>,
    pub placement: Vec<NodeId>,
    pub costs: MpiCosts,
    pub boxes: Vec<MailStore>,
    pub faults: Arc<FaultPlan>,
    pub retry: RetryPolicy,
    next_rdv: AtomicU64,
    /// Cluster-unique wire sequence numbers (see [`Envelope::wire_seq`]).
    /// Starts at 1; 0 is the "unsequenced" sentinel.
    next_wire: AtomicU64,
    /// Observability hook, set once by [`MpiWorld::set_recorder`]; unset
    /// means recording is off at the cost of one load per check.
    recorder: OnceLock<Recorder>,
}

impl WorldInner {
    /// Mint the wire sequence number for one logical send. Deterministic
    /// under the DES kernel (exactly one process runs at a time).
    pub(crate) fn mint_wire_seq(&self) -> u64 {
        self.next_wire.fetch_add(1, Ordering::Relaxed)
    }

    /// The attached recorder, only if it actually records.
    pub(crate) fn recorder(&self) -> Option<&Recorder> {
        self.recorder.get().filter(|r| r.is_enabled())
    }
}

/// The set of ranks of one MPI job, mapped onto cluster nodes.
pub struct MpiWorld {
    pub(crate) inner: Arc<WorldInner>,
}

impl Clone for MpiWorld {
    fn clone(&self) -> Self {
        MpiWorld {
            inner: self.inner.clone(),
        }
    }
}

impl MpiWorld {
    /// Create a world with `placement[rank]` giving each rank's node.
    pub fn new(cluster: Arc<Cluster>, placement: Vec<NodeId>, costs: MpiCosts) -> MpiWorld {
        Self::with_faults(
            cluster,
            placement,
            costs,
            Arc::new(FaultPlan::new()),
            RetryPolicy::default(),
        )
    }

    /// Create a world whose fabric misbehaves according to `faults`, with
    /// senders recovering from injected loss under `retry`.
    pub fn with_faults(
        cluster: Arc<Cluster>,
        placement: Vec<NodeId>,
        costs: MpiCosts,
        faults: Arc<FaultPlan>,
        retry: RetryPolicy,
    ) -> MpiWorld {
        for nid in &placement {
            assert!(nid.0 < cluster.len(), "placement names missing node {nid}");
        }
        let boxes = (0..placement.len())
            .map(|r| MailStore::new(&format!("rank{r}")))
            .collect();
        MpiWorld {
            inner: Arc::new(WorldInner {
                cluster,
                placement,
                costs,
                boxes,
                faults,
                retry,
                next_rdv: AtomicU64::new(1),
                next_wire: AtomicU64::new(1),
                recorder: OnceLock::new(),
            }),
        }
    }

    /// Attach an observability [`Recorder`] (first call wins; call before
    /// launching ranks). The MPI layer reports logical sends/receives and
    /// payload bytes, per-attempt wire bytes, collectives, and the link
    /// verdicts the fault plan injects (drops → retransmits, delays,
    /// duplications). Recording never consumes virtual time.
    pub fn set_recorder(&self, recorder: Recorder) {
        let _ = self.inner.recorder.set(recorder);
    }

    /// The fault plan this world runs under (empty by default).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.inner.faults
    }

    /// The retransmission policy senders use against injected loss.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.retry
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.placement.len()
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.inner.placement[rank]
    }

    /// The cluster this world runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.inner.cluster
    }

    /// Redirect `from`'s mailbox to `to` (Co-Pilot failover): queued
    /// envelopes move across preserving arrival order, the dedup state
    /// merges, future deliveries to `from` land at `to`, and any process
    /// blocked receiving as `from` unwinds (absorb the unwind with
    /// [`crate::absorb_rank_death`]). See [`MailStore::take_over`].
    pub fn take_over_rank(&self, ctx: &ProcCtx, from: Rank, to: Rank) {
        assert!(
            from < self.size(),
            "takeover source rank {from} out of range"
        );
        assert!(to < self.size(), "takeover target rank {to} out of range");
        assert_ne!(from, to, "a rank cannot take itself over");
        self.inner.boxes[from].take_over(ctx, &self.inner.boxes[to]);
    }

    /// Bind `rank` to the calling simulated process, yielding its
    /// communicator handle.
    pub fn attach(&self, ctx: &ProcCtx, rank: Rank) -> Comm {
        assert!(rank < self.size(), "rank {rank} out of range");
        Comm {
            inner: self.inner.clone(),
            rank,
            ctx: ctx.clone(),
        }
    }

    /// Spawn a simulated process for `rank` running `body`.
    ///
    /// If the fault plan schedules this rank's death, a companion reaper
    /// process is spawned that poisons the rank's mailbox at the scripted
    /// instant; the rank's process then retires cleanly (fail-stop) at its
    /// next communication call instead of failing the whole simulation.
    pub fn launch<S>(
        &self,
        sim: &mut S,
        rank: Rank,
        name: &str,
        body: impl FnOnce(Comm) + Send + 'static,
    ) where
        S: Spawner + ?Sized,
    {
        if let Some(at) = self.inner.faults.death_of(rank) {
            let world = self.clone();
            sim.spawn_boxed(
                &format!("reaper-rank{rank}"),
                Box::new(move |ctx| {
                    ctx.advance(SimDuration::from_nanos(at.as_nanos()));
                    world.inner.boxes[rank].poison(ctx);
                    ctx.report_incident(
                        IncidentCategory::RankDeath,
                        &format!("rank {rank} killed by fault plan at {at}"),
                    );
                }),
            );
        }
        let world = self.clone();
        sim.spawn_boxed(
            name,
            Box::new(move |ctx| {
                let comm = world.attach(ctx, rank);
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(comm)));
                if let Err(payload) = result {
                    if payload.downcast_ref::<RankDeadUnwind>().is_some() {
                        // Scripted fail-stop: the process retires quietly and
                        // its joiners are released as for a normal exit.
                        return;
                    }
                    panic::resume_unwind(payload);
                }
            }),
        );
    }
}

/// This rank's handle on the world (`MPI_COMM_WORLD` + the owning process).
pub struct Comm {
    inner: Arc<WorldInner>,
    rank: Rank,
    ctx: ProcCtx,
}

impl Comm {
    /// This rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.inner.placement.len()
    }

    /// The simulated-process context driving this rank.
    pub fn ctx(&self) -> &ProcCtx {
        &self.ctx
    }

    /// The node this rank runs on.
    pub fn node(&self) -> NodeId {
        self.inner.placement[self.rank]
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.inner.placement[rank]
    }

    /// The cluster hardware.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.inner.cluster
    }

    /// My node's processor kind.
    fn my_kind(&self) -> NodeKind {
        self.inner.cluster.kind(self.node())
    }

    fn is_wire(&self, peer: Rank) -> bool {
        self.node() != self.inner.placement[peer]
    }

    fn transport(&self, peer: Rank, bytes: usize) -> SimDuration {
        // transfer_delay reserves NIC occupancy when the cluster's
        // contention model is enabled; otherwise it is the plain formula.
        self.inner.cluster.transfer_delay(
            self.ctx.now(),
            self.node(),
            self.inner.placement[peer],
            bytes,
        )
    }

    fn charge_side(&self, bytes: usize, wire: bool) {
        let us = self.inner.costs.side_us(self.my_kind(), bytes, wire);
        self.ctx.advance(SimDuration::from_micros_f64(us));
    }

    /// Count one collective participation (every rank entering a
    /// collective counts once, so an N-rank bcast records N).
    pub(crate) fn record_collective(&self, op: &str) {
        if let Some(r) = self.inner.recorder() {
            r.record_collective(op);
        }
    }

    /// The fault plan this rank's world runs under.
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.inner.faults
    }

    /// The retransmission policy this rank's world uses.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.retry
    }

    /// True if the fault plan has already killed `rank` at this instant.
    pub fn peer_lost(&self, rank: Rank) -> bool {
        self.inner
            .faults
            .death_of(rank)
            .is_some_and(|at| self.ctx.now() >= at)
    }

    /// Fail-stop check: if this rank's own scripted death time has passed,
    /// unwind the process (caught by [`MpiWorld::launch`]).
    fn check_self_alive(&self) {
        if let Some(at) = self.inner.faults.death_of(self.rank) {
            if self.ctx.now() >= at {
                panic::resume_unwind(Box::new(RankDeadUnwind));
            }
        }
    }

    /// Put one envelope on the fabric toward `dst`, consulting the fault
    /// plan at egress. Injected drops are retransmitted under the world's
    /// [`RetryPolicy`] (modelling link-level loss detection: the backoff is
    /// virtual time the NIC spends before retrying, so recovery timing is
    /// exactly reproducible); injected delays add latency; duplications
    /// deliver twice. `bytes` sizes the transport cost of each attempt.
    fn put(&self, dst: Rank, env: Envelope, bytes: usize) -> Result<(), MpiFault> {
        let from = self.node();
        let to = self.inner.placement[dst];
        let retry = self.inner.retry;
        let mut attempt = 0u32;
        let recorder = self.inner.recorder();
        loop {
            match self.inner.faults.egress(self.ctx.now(), from, to) {
                LinkVerdict::Deliver => {
                    if let Some(r) = recorder {
                        r.record_wire(bytes as u64);
                    }
                    let latency = self.transport(dst, bytes);
                    self.inner.boxes[dst].deliver(&self.ctx, env, latency);
                    return Ok(());
                }
                LinkVerdict::Delay(extra) => {
                    if let Some(r) = recorder {
                        r.record_wire(bytes as u64);
                        r.record_link_delay();
                    }
                    let latency = self.transport(dst, bytes) + extra;
                    self.inner.boxes[dst].deliver(&self.ctx, env, latency);
                    return Ok(());
                }
                LinkVerdict::Duplicate => {
                    if let Some(r) = recorder {
                        r.record_wire(2 * bytes as u64);
                        r.record_link_duplicate();
                    }
                    let latency = self.transport(dst, bytes);
                    self.inner.boxes[dst].deliver(&self.ctx, env.clone(), latency);
                    self.inner.boxes[dst].deliver(&self.ctx, env, latency);
                    return Ok(());
                }
                LinkVerdict::Drop => {
                    if let Some(r) = recorder {
                        // The dropped attempt still occupied the wire.
                        r.record_wire(bytes as u64);
                        r.record_link_drop();
                    }
                    if attempt >= retry.max_retries {
                        return Err(MpiFault::SendLost {
                            dst,
                            attempts: attempt + 1,
                        });
                    }
                    if let Some(r) = recorder {
                        r.record_retransmit();
                    }
                    self.ctx.advance(retry.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Send pre-encoded wire bytes. Small messages go eagerly (buffered);
    /// messages above the eager limit handshake via rendezvous, which
    /// blocks until the receiver has posted a matching receive.
    ///
    /// Infallible form of [`Comm::try_send_bytes`]: an unrecoverable
    /// injected fault aborts the simulation with a diagnostic. Without a
    /// fault plan the two are identical.
    pub fn send_bytes(&self, dst: Rank, tag: Tag, dtype: Datatype, count: usize, data: Vec<u8>) {
        if let Err(fault) = self.try_send_bytes(dst, tag, dtype, count, data) {
            self.ctx
                .abort(&format!("MPI send to rank {dst} failed: {fault}"));
        }
    }

    /// Fault-aware send: like [`Comm::send_bytes`] but surfaces
    /// unrecoverable injected faults — a peer already killed by the plan, or
    /// a message dropped more times than the retry budget allows — instead
    /// of aborting.
    pub fn try_send_bytes(
        &self,
        dst: Rank,
        tag: Tag,
        dtype: Datatype,
        count: usize,
        data: Vec<u8>,
    ) -> Result<(), MpiFault> {
        assert!(dst < self.size(), "send to rank {dst} out of range");
        debug_assert_eq!(data.len(), count * dtype.wire_size());
        self.check_self_alive();
        if self.peer_lost(dst) {
            return Err(MpiFault::PeerLost { rank: dst });
        }
        let wire = self.is_wire(dst);
        let bytes = data.len();
        if let Some(r) = self.inner.recorder() {
            r.record_send(bytes as u64);
        }
        self.charge_side(bytes, wire);
        if bytes <= self.inner.costs.eager_limit {
            return self.put(
                dst,
                Envelope {
                    src: self.rank,
                    dst,
                    tag,
                    dtype,
                    count,
                    wire_seq: self.inner.mint_wire_seq(),
                    payload: Payload::Data(data),
                },
                bytes,
            );
        }
        // Rendezvous: RTS → (wait CTS) → data.
        let id = self.inner.next_rdv.fetch_add(1, Ordering::Relaxed);
        self.put(
            dst,
            Envelope {
                src: self.rank,
                dst,
                tag,
                dtype,
                count,
                wire_seq: self.inner.mint_wire_seq(),
                payload: Payload::Rts { id, bytes },
            },
            0,
        )?;
        let me = self.rank;
        let cts_what = format!("MPI rendezvous CTS from rank {dst}");
        let cts_pred =
            |e: &Envelope| e.src == dst && matches!(e.payload, Payload::Cts { id: i } if i == id);
        if let Some(death_at) = self.inner.faults.death_of(dst) {
            // The peer is scripted to die: bound the handshake wait so its
            // death surfaces as PeerLost rather than a simulation deadlock.
            let grace = death_at.since(self.ctx.now()) + self.inner.retry.backoff_cap;
            if self.inner.boxes[me]
                .recv_where_deadline(&self.ctx, &cts_what, cts_pred, grace)
                .is_none()
            {
                return Err(MpiFault::PeerLost { rank: dst });
            }
        } else {
            self.inner.boxes[me].recv_where(&self.ctx, &cts_what, cts_pred);
        }
        self.put(
            dst,
            Envelope {
                src: self.rank,
                dst,
                tag,
                dtype,
                count,
                wire_seq: self.inner.mint_wire_seq(),
                payload: Payload::RdvData { id, data },
            },
            bytes,
        )
    }

    /// Send a typed slice.
    pub fn send<T: MpiScalar>(&self, dst: Rank, tag: Tag, data: &[T]) {
        self.send_bytes(dst, tag, T::DATATYPE, data.len(), encode_slice(data));
    }

    /// `MPI_Sendrecv`: a combined send and receive that cannot deadlock
    /// against its mirror image (the send is initiated before the receive
    /// blocks, and small sends are buffered).
    pub fn sendrecv<T: MpiScalar>(
        &self,
        dst: Rank,
        send_tag: Tag,
        data: &[T],
        src: Rank,
        recv_tag: Tag,
    ) -> Vec<T> {
        self.send(dst, send_tag, data);
        let (v, _) = self.recv_typed::<T>(Some(src), Some(recv_tag));
        v
    }

    /// Blocking receive matching `src`/`tag` selectors (`None` = wildcard;
    /// a wildcard tag matches only user tags ≥ 0).
    pub fn recv(&self, src: SrcSel, tag: TagSel) -> Msg {
        let me = self.rank;
        let env = self.inner.boxes[me].recv_where(
            &self.ctx,
            &format!(
                "MPI_Recv(src={}, tag={})",
                src.map_or("ANY".into(), |s| s.to_string()),
                tag.map_or("ANY".into(), |t| t.to_string())
            ),
            |e| e.matches_recv(src, tag) && (tag.is_some() || e.tag >= 0),
        );
        self.finish_recv(env)
    }

    /// Complete a receive whose header envelope is already in hand
    /// (answering a rendezvous RTS if needed, and charging receive costs).
    fn finish_recv(&self, env: Envelope) -> Msg {
        let wire = self.is_wire(env.src);
        match env.payload {
            Payload::Data(data) => {
                if let Some(r) = self.inner.recorder() {
                    r.record_recv(data.len() as u64);
                }
                self.charge_side(data.len(), wire);
                Msg {
                    src: env.src,
                    tag: env.tag,
                    dtype: env.dtype,
                    count: env.count,
                    data,
                }
            }
            Payload::Rts { id, bytes: _ } => {
                // Grant the send and wait for the data. The grant passes
                // through the fault plan like any other message; if it is
                // unrecoverably lost the run cannot continue coherently.
                if let Err(fault) = self.put(
                    env.src,
                    Envelope {
                        src: self.rank,
                        dst: env.src,
                        tag: env.tag,
                        dtype: env.dtype,
                        count: 0,
                        wire_seq: self.inner.mint_wire_seq(),
                        payload: Payload::Cts { id },
                    },
                    0,
                ) {
                    self.ctx.abort(&format!(
                        "MPI rendezvous grant to rank {} failed: {fault}",
                        env.src
                    ));
                }
                let me = self.rank;
                let data_env = self.inner.boxes[me].recv_where(
                    &self.ctx,
                    &format!("MPI rendezvous data from rank {}", env.src),
                    |e| {
                        e.src == env.src
                            && matches!(e.payload, Payload::RdvData { id: i, .. } if i == id)
                    },
                );
                let Payload::RdvData { data, .. } = data_env.payload else {
                    unreachable!("matched RdvData")
                };
                if let Some(r) = self.inner.recorder() {
                    r.record_recv(data.len() as u64);
                }
                self.charge_side(data.len(), wire);
                Msg {
                    src: env.src,
                    tag: env.tag,
                    dtype: env.dtype,
                    count: env.count,
                    data,
                }
            }
            Payload::Cts { .. } | Payload::RdvData { .. } => {
                unreachable!("control payloads never match a user receive")
            }
        }
    }

    /// Fault-aware receive: like [`Comm::recv`] but gives up after
    /// `deadline` of virtual time. A missed deadline is [`MpiFault::Timeout`]
    /// — or [`MpiFault::PeerLost`] when a named source rank is already dead,
    /// so callers can tell "slow" from "gone".
    pub fn try_recv_deadline(
        &self,
        src: SrcSel,
        tag: TagSel,
        deadline: SimDuration,
    ) -> Result<Msg, MpiFault> {
        self.check_self_alive();
        let me = self.rank;
        let what = format!(
            "MPI_Recv(src={}, tag={}, deadline={deadline})",
            src.map_or("ANY".into(), |s| s.to_string()),
            tag.map_or("ANY".into(), |t| t.to_string())
        );
        match self.inner.boxes[me].recv_where_deadline(
            &self.ctx,
            &what,
            |e| e.matches_recv(src, tag) && (tag.is_some() || e.tag >= 0),
            deadline,
        ) {
            Some(env) => Ok(self.finish_recv(env)),
            None => {
                if let Some(s) = src {
                    if self.peer_lost(s) {
                        return Err(MpiFault::PeerLost { rank: s });
                    }
                }
                Err(MpiFault::Timeout { what })
            }
        }
    }

    /// Typed receive: decode as `T` and return with the source rank.
    pub fn recv_typed<T: MpiScalar>(&self, src: SrcSel, tag: TagSel) -> (Vec<T>, Rank) {
        let m = self.recv(src, tag);
        let r = m.src;
        (m.decode(), r)
    }

    /// Blocking probe: returns `(src, tag, dtype, count)` of the next
    /// matching message without consuming it.
    pub fn probe(&self, src: SrcSel, tag: TagSel) -> (Rank, Tag, Datatype, usize) {
        let me = self.rank;
        let env = self.inner.boxes[me].probe_where(&self.ctx, "MPI_Probe", |e| {
            e.matches_recv(src, tag) && (tag.is_some() || e.tag >= 0)
        });
        (env.src, env.tag, env.dtype, env.count)
    }

    /// Blocking probe with an arbitrary predicate over candidate messages
    /// (only eager-data / rendezvous-header envelopes are offered). Powers
    /// Pilot's `PI_Select`, which waits on *any* channel of a bundle.
    pub fn probe_match<F>(&self, what: &str, pred: F) -> (Rank, Tag, Datatype, usize)
    where
        F: Fn(&Envelope) -> bool,
    {
        let me = self.rank;
        let env = self.inner.boxes[me].probe_where(&self.ctx, what, |e| {
            e.matches_recv(None, Some(e.tag)) && pred(e)
        });
        (env.src, env.tag, env.dtype, env.count)
    }

    /// Non-blocking variant of [`Comm::probe_match`].
    pub fn iprobe_match<F>(&self, pred: F) -> Option<(Rank, Tag, Datatype, usize)>
    where
        F: Fn(&Envelope) -> bool,
    {
        let me = self.rank;
        self.inner.boxes[me]
            .iprobe(&self.ctx, |e| e.matches_recv(None, Some(e.tag)) && pred(e))
            .map(|e| (e.src, e.tag, e.dtype, e.count))
    }

    /// Non-blocking probe.
    pub fn iprobe(&self, src: SrcSel, tag: TagSel) -> Option<(Rank, Tag, Datatype, usize)> {
        let me = self.rank;
        self.inner.boxes[me]
            .iprobe(&self.ctx, |e| {
                e.matches_recv(src, tag) && (tag.is_some() || e.tag >= 0)
            })
            .map(|e| (e.src, e.tag, e.dtype, e.count))
    }
}

/// Run an SPMD program: build the cluster, place one rank per entry of
/// `placement`, run `program` on every rank, and return the simulation
/// report.
pub fn mpirun<F>(
    spec: &ClusterSpec,
    placement: Vec<NodeId>,
    costs: MpiCosts,
    program: F,
) -> Result<SimReport, SimError>
where
    F: Fn(Comm) + Send + Sync + 'static,
{
    let cluster = spec.build();
    let world = MpiWorld::new(cluster, placement, costs);
    let mut sim = Simulation::new();
    let program = Arc::new(program);
    for rank in 0..world.size() {
        let p = program.clone();
        world.launch(&mut sim, rank, &format!("rank{rank}"), move |comm| p(comm));
    }
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::LongDouble;

    fn two_node_world() -> (Arc<Cluster>, MpiWorld) {
        let cluster = ClusterSpec::two_cells_one_xeon().build();
        let world = MpiWorld::new(
            cluster.clone(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0)],
            MpiCosts::default(),
        );
        (cluster, world)
    }

    #[test]
    fn typed_send_recv_roundtrip() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        let w = world.clone();
        world.launch(&mut sim, 0, "r0", |comm| {
            comm.send(1, 42, &[1i32, 2, 3]);
        });
        w.launch(&mut sim, 1, "r1", |comm| {
            let (v, src) = comm.recv_typed::<i32>(Some(0), Some(42));
            assert_eq!(v, vec![1, 2, 3]);
            assert_eq!(src, 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn internode_pingpong_matches_type1_baseline() {
        // PPE rank on node0 <-> PPE rank on node1 over the wire: the paper's
        // raw-MPI type-1 baseline is 98 us for 1 B and 160 us for 1600 B.
        let (_c, world) = two_node_world();
        for (elem_count, low, high) in [(1usize, 95.0, 101.0), (100, 155.0, 166.0)] {
            let mut sim = Simulation::new();
            let w = world.clone();
            let reps = 10u32;
            world.launch(&mut sim, 0, "r0", move |comm| {
                let payload = vec![LongDouble(1.0); elem_count];
                let one = vec![0u8; 1];
                let t0 = comm.ctx().now();
                for _ in 0..reps {
                    if elem_count == 1 {
                        comm.send(1, 0, &one);
                    } else {
                        comm.send(1, 0, &payload);
                    }
                    let _ = comm.recv(Some(1), Some(0));
                }
                let total = (comm.ctx().now() - t0).as_micros_f64();
                let one_way = total / (2.0 * reps as f64);
                assert!(
                    one_way > low && one_way < high,
                    "one-way {one_way} us outside [{low},{high}]"
                );
            });
            w.launch(&mut sim, 1, "r1", move |comm| {
                for _ in 0..reps {
                    let m = comm.recv(Some(0), Some(0));
                    comm.send_bytes(0, 0, m.dtype, m.count, m.data);
                }
            });
            sim.run().unwrap();
        }
    }

    #[test]
    fn local_ranks_use_shmem_path() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        let w = world.clone();
        world.launch(&mut sim, 0, "r0", |comm| {
            comm.send(3, 1, &[9u8]);
        });
        w.launch(&mut sim, 3, "r3", |comm| {
            let t0 = comm.ctx().now();
            let _ = comm.recv(Some(0), Some(1));
            let us = (comm.ctx().now() - t0).as_micros_f64();
            // 6 (sender sw, shmem path) + 5 (shmem) + 6 (receiver sw) ≈ 17.
            assert!(us > 15.0 && us < 19.0, "local latency {us}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn eager_limit_is_the_protocol_boundary() {
        // At exactly the limit the send is buffered (sender finishes with
        // no receiver); one byte over, it must rendezvous and deadlock.
        let limit = MpiCosts::default().eager_limit;
        for (bytes, expect_deadlock) in [(limit, false), (limit + 1, true)] {
            let (_c, world) = two_node_world();
            let mut sim = Simulation::new();
            world.launch(&mut sim, 0, "sender", move |comm| {
                comm.send(1, 0, &vec![0u8; bytes]);
            });
            // Rank 1 never posts a receive.
            let result = sim.run();
            match (expect_deadlock, result) {
                (false, Ok(_)) => {}
                (true, Err(SimError::Deadlock { blocked, .. })) => {
                    assert!(blocked[0].2.contains("rendezvous CTS"), "{blocked:?}");
                }
                (e, r) => panic!("bytes={bytes}: expected deadlock={e}, got {r:?}"),
            }
        }
    }

    #[test]
    fn rendezvous_for_large_messages() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        let w = world.clone();
        let n = 64 * 1024; // above the 16 KiB eager limit
        world.launch(&mut sim, 0, "r0", move |comm| {
            let data = vec![7u8; n];
            comm.send(1, 5, &data);
        });
        w.launch(&mut sim, 1, "r1", move |comm| {
            // Delay posting the receive; the sender must wait (rendezvous).
            comm.ctx().advance(SimDuration::from_millis(5));
            let (v, _) = comm.recv_typed::<u8>(Some(0), Some(5));
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&b| b == 7));
        });
        sim.run().unwrap();
    }

    #[test]
    fn sendrecv_ring_shift_does_not_deadlock() {
        // Every rank simultaneously sendrecvs around a ring — the pattern
        // that deadlocks with naive blocking send/recv ordering.
        let spec = ClusterSpec::two_cells_one_xeon();
        let cluster = spec.build();
        let world = MpiWorld::new(
            cluster,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            MpiCosts::default(),
        );
        let mut sim = Simulation::new();
        for rank in 0..3 {
            let w = world.clone();
            world.launch(&mut sim, rank, &format!("r{rank}"), move |comm| {
                let n = comm.size();
                let right = (comm.rank() + 1) % n;
                let left = (comm.rank() + n - 1) % n;
                let got = comm.sendrecv(right, 4, &[comm.rank() as u32], left, 4);
                assert_eq!(got, vec![left as u32]);
                let _ = w;
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn wildcard_recv_and_probe() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        let w = world.clone();
        world.launch(&mut sim, 0, "r0", |comm| {
            comm.send(1, 3, &[1i32]);
        });
        w.launch(&mut sim, 1, "r1", |comm| {
            assert!(comm.iprobe(None, None).is_none());
            let (src, tag, dt, count) = comm.probe(None, None);
            assert_eq!((src, tag, dt, count), (0, 3, Datatype::Int32, 1));
            let (v, _) = comm.recv_typed::<i32>(Some(src), Some(tag));
            assert_eq!(v, vec![1]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn unmatched_recv_deadlocks_with_diagnostic() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", |comm| {
            let _ = comm.recv(Some(1), Some(9));
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert!(blocked[0].2.contains("MPI_Recv"));
                assert!(blocked[0].2.contains("tag=9"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_datatype_mismatch() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        let w = world.clone();
        world.launch(&mut sim, 0, "r0", |comm| {
            comm.send(1, 0, &[1i32]);
        });
        w.launch(&mut sim, 1, "r1", |comm| {
            let m = comm.recv(Some(0), Some(0));
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.decode::<f64>()));
            assert!(r.is_err(), "decoding int32 as f64 must panic");
            // Correct decode still works.
            assert_eq!(m.decode::<i32>(), vec![1]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn probe_match_and_iprobe_match() {
        let (_c, world) = two_node_world();
        let mut sim = Simulation::new();
        let w = world.clone();
        world.launch(&mut sim, 0, "r0", |comm| {
            comm.send(1, 11, &[1u8]);
            comm.send(1, 22, &[2u8]);
        });
        w.launch(&mut sim, 1, "r1", |comm| {
            assert!(comm.iprobe_match(|e| e.tag == 99).is_none());
            let (_, tag, _, _) = comm.probe_match("want 22", |e| e.tag == 22);
            assert_eq!(tag, 22);
            // Selective consume of 22 first, then 11, despite send order.
            let (v, _) = comm.recv_typed::<u8>(None, Some(22));
            assert_eq!(v, vec![2]);
            let (v, _) = comm.recv_typed::<u8>(None, Some(11));
            assert_eq!(v, vec![1]);
        });
        sim.run().unwrap();
    }

    fn faulty_world(faults: FaultPlan, retry: RetryPolicy) -> MpiWorld {
        let cluster = ClusterSpec::two_cells_one_xeon().build();
        MpiWorld::with_faults(
            cluster,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0)],
            MpiCosts::default(),
            Arc::new(faults),
            retry,
        )
    }

    #[test]
    fn dropped_sends_recover_by_retransmission() {
        use cp_des::SimTime;
        // Drop the first two messages node0 -> node1; the third attempt
        // goes through. Virtual time must show exactly backoff(0)+backoff(1)
        // of extra sender-side delay.
        let retry = RetryPolicy::default();
        let plan =
            FaultPlan::new().drop_link(NodeId(0), NodeId(1), SimTime(0), SimTime(100_000_000), 2);
        let world = faulty_world(plan, retry);
        let w = world.clone();
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", move |comm| {
            comm.try_send_bytes(1, 7, Datatype::Int32, 1, encode_slice(&[5i32]))
                .unwrap();
        });
        w.launch(&mut sim, 1, "r1", move |comm| {
            let t0 = comm.ctx().now();
            let m = comm.recv(Some(0), Some(7));
            assert_eq!(m.decode::<i32>(), vec![5]);
            let elapsed = (comm.ctx().now() - t0).as_nanos();
            let extra = retry.total_backoff(2).as_nanos();
            // Baseline wire one-way is ~98us (see pingpong test); the two
            // backoffs land on top of it.
            assert!(
                elapsed >= extra,
                "recovery delay {elapsed}ns < injected backoff {extra}ns"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_is_send_lost() {
        use cp_des::SimTime;
        let retry = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        // More drops than the budget can absorb.
        let plan =
            FaultPlan::new().drop_link(NodeId(0), NodeId(1), SimTime(0), SimTime(100_000_000), 100);
        let world = faulty_world(plan, retry);
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", move |comm| {
            let err = comm
                .try_send_bytes(1, 7, Datatype::Byte, 1, vec![1])
                .unwrap_err();
            assert_eq!(
                err,
                MpiFault::SendLost {
                    dst: 1,
                    attempts: 3
                }
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn duplicated_sends_deliver_once() {
        use cp_des::SimTime;
        let plan = FaultPlan::new().duplicate_link(
            NodeId(0),
            NodeId(1),
            SimTime(0),
            SimTime(100_000_000),
            1,
        );
        let world = faulty_world(plan, RetryPolicy::default());
        let w = world.clone();
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", |comm| {
            comm.send(1, 9, &[42u8]);
            // A later, distinct send must still get through on its own.
            comm.send(1, 9, &[43u8]);
        });
        w.launch(&mut sim, 1, "r1", |comm| {
            // Exactly-once under duplication: the duplicated wire copy is
            // deduped by the receiver's sequence set, so each logical send
            // surfaces once, in order, with nothing left behind.
            let m = comm.recv(Some(0), Some(9));
            assert_eq!(m.decode::<u8>(), vec![42]);
            let m = comm.recv(Some(0), Some(9));
            assert_eq!(m.decode::<u8>(), vec![43]);
            comm.ctx().advance(SimDuration::from_millis(1));
            assert!(comm.iprobe(Some(0), Some(9)).is_none());
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_deadline_times_out_when_nothing_comes() {
        let world = faulty_world(FaultPlan::new(), RetryPolicy::default());
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", |comm| {
            let t0 = comm.ctx().now();
            let err = comm
                .try_recv_deadline(Some(1), Some(3), SimDuration::from_micros(200))
                .unwrap_err();
            assert!(matches!(err, MpiFault::Timeout { .. }));
            assert_eq!((comm.ctx().now() - t0).as_nanos(), 200_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn rank_death_poisons_mailbox_and_surfaces_peer_lost() {
        use cp_des::SimTime;
        let plan = FaultPlan::new().kill_rank(1, SimTime(50_000));
        let world = faulty_world(plan, RetryPolicy::default());
        let w = world.clone();
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", |comm| {
            // Wait until well past the death, then try to talk to the corpse.
            comm.ctx().advance(SimDuration::from_micros(100));
            let err = comm
                .try_send_bytes(1, 0, Datatype::Byte, 1, vec![1])
                .unwrap_err();
            assert_eq!(err, MpiFault::PeerLost { rank: 1 });
            let err = comm
                .try_recv_deadline(Some(1), Some(0), SimDuration::from_micros(50))
                .unwrap_err();
            assert_eq!(err, MpiFault::PeerLost { rank: 1 });
        });
        // Rank 1 blocks in a receive and is reaped mid-wait.
        w.launch(&mut sim, 1, "r1", |comm| {
            let _ = comm.recv(Some(0), Some(99));
            unreachable!("rank 1 must die blocked in recv");
        });
        let report = sim.run().unwrap();
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].category, IncidentCategory::RankDeath);
        assert!(report.incidents[0].detail.contains("rank 1"));
    }

    #[test]
    fn dead_rank_fails_stop_at_next_comm_call() {
        use cp_des::SimTime;
        let plan = FaultPlan::new().kill_rank(0, SimTime(10_000));
        let world = faulty_world(plan, RetryPolicy::default());
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f = flag.clone();
        let mut sim = Simulation::new();
        world.launch(&mut sim, 0, "r0", move |comm| {
            comm.ctx().advance(SimDuration::from_micros(50));
            // Past our own death: this call must unwind, not send.
            comm.send(1, 0, &[1u8]);
            f.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        sim.run().unwrap();
        assert!(
            !flag.load(std::sync::atomic::Ordering::SeqCst),
            "code after the death point must not run"
        );
    }

    #[test]
    fn mpirun_runs_spmd_program() {
        let spec = ClusterSpec::two_cells_one_xeon();
        let placement = vec![NodeId(0), NodeId(1), NodeId(2)];
        let report = mpirun(&spec, placement, MpiCosts::default(), |comm| {
            if comm.rank() == 0 {
                for r in 1..comm.size() {
                    let (v, _) = comm.recv_typed::<u32>(Some(r), Some(0));
                    assert_eq!(v, vec![r as u32]);
                }
            } else {
                comm.send(0, 0, &[comm.rank() as u32]);
            }
        })
        .unwrap();
        assert_eq!(report.processes, 3);
    }
}
