//! Collective operations: barrier, broadcast, gather, scatter, reduce,
//! allreduce.
//!
//! Broadcast, barrier and reduce use binomial trees (the shape MPI
//! implementations of the paper's era used for small messages), so their
//! cost scales as `O(log P)` wire latencies; gather and scatter are linear
//! at the root, which is what Open MPI 1.2.8 did for the message sizes
//! Pilot traffics in. All collective traffic travels on reserved negative
//! tags so it can never be confused with user point-to-point messages.

use crate::datatype::{encode_slice, Datatype, LongDouble, MpiScalar};
use crate::message::{Rank, Tag};
use crate::world::{Comm, Msg};

/// Reserved tag for barrier fan-in.
pub const TAG_BARRIER_UP: Tag = -101;
/// Reserved tag for barrier release.
pub const TAG_BARRIER_DOWN: Tag = -102;
/// Reserved tag for broadcast.
pub const TAG_BCAST: Tag = -103;
/// Reserved tag for gather.
pub const TAG_GATHER: Tag = -104;
/// Reserved tag for scatter.
pub const TAG_SCATTER: Tag = -105;
/// Reserved tag for reduce fan-in.
pub const TAG_REDUCE: Tag = -106;
/// Reserved tag for allgather.
pub const TAG_ALLGATHER: Tag = -107;
/// Reserved tag for alltoall.
pub const TAG_ALLTOALL: Tag = -108;
/// Reserved tag for scan.
pub const TAG_SCAN: Tag = -109;

/// Predefined reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

/// Scalars reducible with the predefined operators.
pub trait ReduceScalar: MpiScalar {
    /// Combine two values under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! reduce_int {
    ($($t:ty),*) => {$(
        impl ReduceScalar for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )*};
}

macro_rules! reduce_float {
    ($($t:ty),*) => {$(
        impl ReduceScalar for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )*};
}

reduce_int!(u8, i16, i32, u32, i64);
reduce_float!(f32, f64);

impl ReduceScalar for LongDouble {
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        LongDouble(f64::combine(op, a.0, b.0))
    }
}

impl Comm {
    /// Synchronize all ranks: binomial fan-in to rank 0 followed by a
    /// binomial release broadcast.
    pub fn barrier(&self) {
        self.record_collective("barrier");
        let size = self.size();
        if size <= 1 {
            return;
        }
        let rank = self.rank();
        // Fan-in: each rank waits for its subtree, then reports upward.
        let mut mask: usize = 1;
        while mask < size {
            if rank & mask != 0 {
                self.send(rank - mask, TAG_BARRIER_UP, &[0u8; 0]);
                break;
            }
            if rank | mask < size {
                let _ = self.recv(Some(rank | mask), Some(TAG_BARRIER_UP));
            }
            mask <<= 1;
        }
        // Release: binomial broadcast of a zero-byte token from rank 0.
        self.bcast_bytes(0, TAG_BARRIER_DOWN, Datatype::Byte, 0, Vec::new());
    }

    /// Internal tree broadcast of raw bytes under the given tag. Root
    /// passes the data; every rank returns it.
    fn bcast_bytes(
        &self,
        root: Rank,
        tag: Tag,
        mut dtype: Datatype,
        mut count: usize,
        data: Vec<u8>,
    ) -> Vec<u8> {
        let size = self.size();
        let rank = self.rank();
        let relative = (rank + size - root) % size;
        let mut buf = data;
        // Receive from parent (the rank that differs in my lowest set bit).
        let mut mask: usize = 1;
        while mask < size {
            if relative & mask != 0 {
                let parent = ((relative - mask) + root) % size;
                let m = self.recv(Some(parent), Some(tag));
                dtype = m.dtype;
                count = m.count;
                buf = m.data;
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let child = ((relative + mask) + root) % size;
                self.send_bytes(child, tag, dtype, count, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Broadcast `data` from `root`. The root passes `Some(data)`; all
    /// other ranks pass `None` and receive the broadcast value.
    pub fn bcast<T: MpiScalar>(&self, root: Rank, data: Option<&[T]>) -> Vec<T> {
        self.record_collective("bcast");
        let (count, bytes) = if self.rank() == root {
            let d = data.expect("root must supply broadcast data");
            (d.len(), encode_slice(d))
        } else {
            (0, Vec::new())
        };
        let out = self.bcast_bytes(root, TAG_BCAST, T::DATATYPE, count, bytes);
        crate::datatype::decode_slice(&out)
    }

    /// Gather every rank's contribution at `root` (linear algorithm).
    /// Returns `Some(messages ordered by rank)` at the root, `None`
    /// elsewhere.
    pub fn gather<T: MpiScalar>(&self, root: Rank, data: &[T]) -> Option<Vec<Vec<T>>> {
        self.record_collective("gather");
        if self.rank() == root {
            let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    out.push(data.to_vec());
                } else {
                    let m: Msg = self.recv(Some(r), Some(TAG_GATHER));
                    out.push(m.decode());
                }
            }
            Some(out)
        } else {
            self.send(root, TAG_GATHER, data);
            None
        }
    }

    /// Scatter one part per rank from `root` (linear algorithm). The root
    /// passes `Some(parts)` with exactly one slice per rank.
    pub fn scatter<T: MpiScalar>(&self, root: Rank, parts: Option<&[Vec<T>]>) -> Vec<T> {
        self.record_collective("scatter");
        if self.rank() == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), self.size(), "one part per rank");
            for (r, part) in parts.iter().enumerate() {
                if r != root {
                    self.send(r, TAG_SCATTER, part);
                }
            }
            parts[root].clone()
        } else {
            let (v, _) = self.recv_typed::<T>(Some(root), Some(TAG_SCATTER));
            v
        }
    }

    /// Elementwise reduction to `root` over a binomial tree. Every rank
    /// contributes `data` (same length everywhere); the root returns
    /// `Some(result)`.
    pub fn reduce<T: ReduceScalar>(&self, root: Rank, op: ReduceOp, data: &[T]) -> Option<Vec<T>> {
        self.record_collective("reduce");
        let size = self.size();
        let rank = self.rank();
        let relative = (rank + size - root) % size;
        let mut acc = data.to_vec();
        let mut mask: usize = 1;
        while mask < size {
            if relative & mask != 0 {
                let parent = ((relative - mask) + root) % size;
                self.send(parent, TAG_REDUCE, &acc);
                return None;
            }
            if relative | mask < size {
                let child = ((relative | mask) + root) % size;
                let (v, _) = self.recv_typed::<T>(Some(child), Some(TAG_REDUCE));
                assert_eq!(
                    v.len(),
                    acc.len(),
                    "reduce contributions must agree in length"
                );
                for (a, b) in acc.iter_mut().zip(v) {
                    *a = T::combine(op, *a, b);
                }
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// `MPI_Allgather`: everyone contributes `data` and receives every
    /// rank's contribution, in rank order (ring algorithm: P-1 steps, each
    /// rank forwarding what it has not yet seen to its right neighbour).
    pub fn allgather<T: MpiScalar>(&self, data: &[T]) -> Vec<Vec<T>> {
        self.record_collective("allgather");
        let size = self.size();
        let rank = self.rank();
        let mut out: Vec<Option<Vec<T>>> = vec![None; size];
        out[rank] = Some(data.to_vec());
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        // At step s, send the block that originated at (rank - s) and
        // receive the block that originated at (rank - s - 1).
        for s in 0..size.saturating_sub(1) {
            let send_origin = (rank + size - s) % size;
            let block = out[send_origin].clone().expect("block present");
            self.send(right, TAG_ALLGATHER, &block);
            let (v, _) = self.recv_typed::<T>(Some(left), Some(TAG_ALLGATHER));
            let recv_origin = (rank + size - s - 1) % size;
            out[recv_origin] = Some(v);
        }
        out.into_iter()
            .map(|b| b.expect("all blocks seen"))
            .collect()
    }

    /// `MPI_Alltoall`: rank `i` sends `parts[j]` to rank `j` and receives
    /// rank `j`'s `parts[i]`, returned in rank order. Pairwise-exchange
    /// schedule (XOR pairing for power-of-two worlds, shifted ring
    /// otherwise).
    pub fn alltoall<T: MpiScalar>(&self, parts: &[Vec<T>]) -> Vec<Vec<T>> {
        self.record_collective("alltoall");
        let size = self.size();
        let rank = self.rank();
        assert_eq!(parts.len(), size, "one part per rank");
        let mut out: Vec<Option<Vec<T>>> = vec![None; size];
        out[rank] = Some(parts[rank].clone());
        for step in 1..size {
            let peer = (rank + step) % size;
            let from = (rank + size - step) % size;
            // Lower rank of each exchanging pair sends first to avoid a
            // rendezvous face-off on large parts.
            self.send(peer, TAG_ALLTOALL, &parts[peer]);
            let (v, _) = self.recv_typed::<T>(Some(from), Some(TAG_ALLTOALL));
            out[from] = Some(v);
        }
        out.into_iter()
            .map(|b| b.expect("all parts seen"))
            .collect()
    }

    /// `MPI_Scan`: inclusive prefix reduction — rank `r` returns the
    /// combination of ranks `0..=r`'s contributions (linear chain).
    pub fn scan<T: ReduceScalar>(&self, op: ReduceOp, data: &[T]) -> Vec<T> {
        self.record_collective("scan");
        let rank = self.rank();
        let mut acc = data.to_vec();
        if rank > 0 {
            let (prev, _) = self.recv_typed::<T>(Some(rank - 1), Some(TAG_SCAN));
            assert_eq!(
                prev.len(),
                acc.len(),
                "scan contributions must agree in length"
            );
            for (a, b) in acc.iter_mut().zip(prev) {
                *a = T::combine(op, b, *a);
            }
        }
        if rank + 1 < self.size() {
            self.send(rank + 1, TAG_SCAN, &acc);
        }
        acc
    }

    /// Reduce to rank 0 then broadcast the result to everyone.
    pub fn allreduce<T: ReduceScalar>(&self, op: ReduceOp, data: &[T]) -> Vec<T> {
        // Composite: the inner reduce and bcast count themselves too.
        self.record_collective("allreduce");
        let reduced = self.reduce(0, op, data);
        if self.rank() == 0 {
            self.bcast(0, Some(&reduced.expect("root has the reduction")))
        } else {
            self.bcast::<T>(0, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::MpiCosts;
    use crate::world::mpirun;
    use cp_simnet::{ClusterSpec, NodeId, NodeKind};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn spec(n: usize) -> (ClusterSpec, Vec<NodeId>) {
        let spec = ClusterSpec {
            nodes: vec![NodeKind::Commodity { cores: 4 }; n],
            ..ClusterSpec::two_cells_one_xeon()
        };
        let placement = (0..n).map(NodeId).collect();
        (spec, placement)
    }

    #[test]
    fn bcast_reaches_all_ranks_from_any_root() {
        for root in [0usize, 3, 6] {
            let (s, p) = spec(7);
            mpirun(&s, p, MpiCosts::default(), move |comm| {
                let data = [11i32, 22, 33];
                let got = if comm.rank() == root {
                    comm.bcast(root, Some(&data))
                } else {
                    comm.bcast::<i32>(root, None)
                };
                assert_eq!(got, data);
            })
            .unwrap();
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let (s, p) = spec(5);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let mine = [comm.rank() as u32 * 10];
            match comm.gather(2, &mine) {
                Some(all) => {
                    assert_eq!(comm.rank(), 2);
                    let flat: Vec<u32> = all.into_iter().flatten().collect();
                    assert_eq!(flat, vec![0, 10, 20, 30, 40]);
                }
                None => assert_ne!(comm.rank(), 2),
            }
        })
        .unwrap();
    }

    #[test]
    fn scatter_distributes_parts() {
        let (s, p) = spec(4);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let parts: Vec<Vec<i64>> = (0..4).map(|r| vec![r as i64, r as i64 + 100]).collect();
            let mine = if comm.rank() == 0 {
                comm.scatter(0, Some(&parts))
            } else {
                comm.scatter::<i64>(0, None)
            };
            assert_eq!(mine, vec![comm.rank() as i64, comm.rank() as i64 + 100]);
        })
        .unwrap();
    }

    #[test]
    fn reduce_sums_elementwise() {
        let (s, p) = spec(6);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let mine = [comm.rank() as i32, 1];
            match comm.reduce(0, ReduceOp::Sum, &mine) {
                Some(total) => assert_eq!(total, vec![1 + 2 + 3 + 4 + 5, 6]),
                None => assert_ne!(comm.rank(), 0),
            }
        })
        .unwrap();
    }

    #[test]
    fn reduce_min_max_prod() {
        let (s, p) = spec(4);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let r = comm.rank() as f64 + 1.0;
            if let Some(v) = comm.reduce(0, ReduceOp::Min, &[r]) {
                assert_eq!(v, vec![1.0]);
            }
            if let Some(v) = comm.reduce(0, ReduceOp::Max, &[r]) {
                assert_eq!(v, vec![4.0]);
            }
            if let Some(v) = comm.reduce(0, ReduceOp::Prod, &[r]) {
                assert_eq!(v, vec![24.0]);
            }
        })
        .unwrap();
    }

    #[test]
    fn allreduce_gives_everyone_the_total() {
        let (s, p) = spec(5);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let total = comm.allreduce(ReduceOp::Sum, &[1u32]);
            assert_eq!(total, vec![5]);
        })
        .unwrap();
    }

    #[test]
    fn allgather_collects_everything_everywhere() {
        for n in [2usize, 3, 5, 8] {
            let (s, p) = spec(n);
            mpirun(&s, p, MpiCosts::default(), move |comm| {
                let mine = vec![comm.rank() as u32, 7];
                let all = comm.allgather(&mine);
                assert_eq!(all.len(), n);
                for (r, block) in all.iter().enumerate() {
                    assert_eq!(block, &vec![r as u32, 7]);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn alltoall_transposes() {
        for n in [2usize, 4, 5] {
            let (s, p) = spec(n);
            mpirun(&s, p, MpiCosts::default(), move |comm| {
                let me = comm.rank();
                let parts: Vec<Vec<i32>> = (0..n).map(|j| vec![(me * 100 + j) as i32]).collect();
                let got = comm.alltoall(&parts);
                for (j, block) in got.iter().enumerate() {
                    assert_eq!(block, &vec![(j * 100 + me) as i32], "rank {me} from {j}");
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn scan_is_inclusive_prefix() {
        let (s, p) = spec(5);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            let r = comm.rank() as i64;
            let pre = comm.scan(ReduceOp::Sum, &[r + 1]);
            // 1 + 2 + ... + (r+1)
            assert_eq!(pre, vec![(r + 1) * (r + 2) / 2]);
        })
        .unwrap();
    }

    #[test]
    fn barrier_aligns_virtual_times() {
        let (s, p) = spec(4);
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = times.clone();
        mpirun(&s, p, MpiCosts::default(), move |comm| {
            // Stagger arrivals; everyone must leave at (or after) the
            // latest arrival.
            comm.ctx()
                .advance(cp_des::SimDuration::from_millis(comm.rank() as u64));
            comm.barrier();
            t2.lock().push(comm.ctx().now().as_micros_f64());
        })
        .unwrap();
        let v = times.lock();
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min >= 3000.0, "nobody leaves before the last arrival");
    }

    #[test]
    fn collective_tags_do_not_leak_to_wildcard_recv() {
        let (s, p) = spec(2);
        mpirun(&s, p, MpiCosts::default(), |comm| {
            if comm.rank() == 0 {
                // A user message sits behind collective traffic.
                comm.send(1, 7, &[5u8]);
                comm.barrier();
            } else {
                comm.barrier();
                let m = comm.recv(None, None);
                assert_eq!(m.tag, 7, "wildcard recv must skip internal tags");
            }
        })
        .unwrap();
    }

    #[test]
    fn bcast_scales_log_not_linear() {
        // With a binomial tree, doubling ranks adds one wire hop, not P.
        fn bcast_time(n: usize) -> f64 {
            let (s, p) = spec(n);
            let t = Arc::new(Mutex::new(0.0));
            let t2 = t.clone();
            mpirun(&s, p, MpiCosts::default(), move |comm| {
                let got = if comm.rank() == 0 {
                    comm.bcast(0, Some(&[1u8]))
                } else {
                    comm.bcast::<u8>(0, None)
                };
                assert_eq!(got, vec![1]);
                let now = comm.ctx().now().as_micros_f64();
                let mut m = t2.lock();
                if now > *m {
                    *m = now;
                }
            })
            .unwrap();
            let v = *t.lock();
            v
        }
        let t4 = bcast_time(4);
        let t16 = bcast_time(16);
        assert!(
            t16 < t4 * 2.5,
            "binomial bcast should scale ~log P: t4={t4} t16={t16}"
        );
    }
}
