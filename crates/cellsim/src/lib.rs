#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-cellsim — Cell Broadband Engine node simulator
//!
//! A behavioural + latency model of the Cell BE hardware that the CellPilot
//! paper targets: the 256 KB SPE local stores with their allocation and
//! alignment constraints, the MFC DMA engine with tag groups, PPE↔SPE
//! mailboxes and signal registers, SPE context loading, and the
//! problem-state mapping of local stores into the PPE's effective-address
//! space (the mechanism CellPilot's Co-Pilot exploits for direct transfers).
//!
//! Every operation charges calibrated virtual time via `cp-des`; the cost
//! constants ([`CellCosts`]) are anchored to the hand-coded baseline rows of
//! the paper's Table II (see that module's docs).
//!
//! ```
//! use cp_cellsim::{CellCosts, CellNode, DmaDir};
//! use cp_des::Simulation;
//!
//! let node = CellNode::new(0, 8, 1 << 20, CellCosts::default());
//! let mut sim = Simulation::new();
//! sim.spawn("ppe", move |ctx| {
//!     let buf = node.mem.alloc(128, 16).unwrap();
//!     node.mem.write(buf.0 as usize, &[42; 128]).unwrap();
//!     let node2 = node.clone();
//!     let pid = node.start_spe(ctx, 0, "reader", 4096, move |sctx| {
//!         let ls = node2.spes[0].ls.alloc(128, 16).unwrap();
//!         node2.dma(sctx, 0, DmaDir::Get, 0, ls, buf, 128).unwrap();
//!         node2.dma_wait(sctx, 0, 1 << 0);
//!         assert_eq!(node2.spes[0].ls.read(ls, 128).unwrap(), vec![42; 128]);
//!     }).unwrap();
//!     ctx.join(pid);
//! });
//! sim.run().unwrap();
//! ```

mod barrier;
mod costs;
mod localstore;
mod mailbox;
mod memory;
mod mfc;
mod node;
mod overlay;
mod signal;

pub use barrier::SpeSignalBarrier;
pub use costs::CellCosts;
pub use localstore::{LocalStore, LsAddr, LsError};
pub use mailbox::Mailboxes;
pub use memory::{
    ls_ea, resolve, Backing, Ea, MainMemory, MemError, LS_MAP_BASE, LS_MAP_STRIDE, LS_SIZE,
};
pub use mfc::{
    validate as validate_dma, DmaDir, DmaError, DmaListElem, TagState, MFC_LIST_MAX, MFC_MAX_DMA,
    MFC_TAGS,
};
pub use node::{CellNode, Spe, SpeRunError};
pub use overlay::{OverlayError, OverlayRegion, OverlaySegment};
pub use signal::{SignalMode, SignalReg};
