//! The Memory Flow Controller: each SPE's asynchronous DMA engine.
//!
//! DMA commands are issued cheaply (a few channel writes) and complete
//! asynchronously; software groups commands under one of 32 **tag groups**
//! and waits on a tag mask (`mfc_write_tag_mask` + `mfc_read_tag_status_all`).
//! The MFC imposes the transfer-size and alignment rules the paper warns
//! programmers about: sizes of 1, 2, 4, 8 bytes or multiples of 16 up to
//! 16 KB, with matching natural alignment on both the local-store and
//! effective addresses (optimal performance wants quadword alignment).

use crate::localstore::LsError;
use crate::memory::{Ea, MemError};
use cp_des::{ProcCtx, SimTime};
use parking_lot::Mutex;
use std::fmt;

/// Maximum bytes in one DMA command.
pub const MFC_MAX_DMA: usize = 16 * 1024;

/// Number of tag groups per MFC.
pub const MFC_TAGS: u32 = 32;

/// Maximum elements in one DMA-list command (the MFC architecture allows
/// 2048).
pub const MFC_LIST_MAX: usize = 2048;

/// One element of a DMA-list command: an effective address and a size
/// (each element obeys the single-transfer rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaListElem {
    /// Effective address of this element.
    pub ea: Ea,
    /// Bytes to move for this element.
    pub size: usize,
}

/// Direction of a DMA command, named from the SPE's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    /// `mfc_get`: effective address → local store.
    Get,
    /// `mfc_put`: local store → effective address.
    Put,
}

/// Errors raised when issuing a DMA command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaError {
    /// Transfer size is not 1, 2, 4, 8, or a multiple of 16 ≤ 16 KB.
    BadSize(usize),
    /// Addresses are not naturally aligned for the transfer size, or the
    /// low 4 bits of source and destination differ for a ≥16 B transfer.
    Misaligned {
        /// Local-store side of the transfer.
        ls_addr: usize,
        /// Effective-address side.
        ea: Ea,
        /// Transfer length.
        len: usize,
    },
    /// Tag group out of range.
    BadTag(u32),
    /// DMA list empty or longer than [`MFC_LIST_MAX`].
    BadListLength(usize),
    /// The effective-address side faulted.
    Mem(MemError),
    /// The local-store side faulted.
    Ls(LsError),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::BadSize(n) => write!(
                f,
                "DMA size {n} invalid: must be 1, 2, 4, 8 or a multiple of 16 up to {MFC_MAX_DMA}"
            ),
            DmaError::Misaligned { ls_addr, ea, len } => write!(
                f,
                "DMA misaligned: ls={ls_addr:#x} ea={ea:?} len={len} (natural alignment required)"
            ),
            DmaError::BadTag(t) => write!(f, "DMA tag {t} out of range (0..{MFC_TAGS})"),
            DmaError::BadListLength(n) => {
                write!(f, "DMA list of {n} elements invalid (1..={MFC_LIST_MAX})")
            }
            DmaError::Mem(e) => write!(f, "DMA effective-address fault: {e}"),
            DmaError::Ls(e) => write!(f, "DMA local-store fault: {e}"),
        }
    }
}

impl std::error::Error for DmaError {}

impl From<MemError> for DmaError {
    fn from(e: MemError) -> Self {
        DmaError::Mem(e)
    }
}

impl From<LsError> for DmaError {
    fn from(e: LsError) -> Self {
        DmaError::Ls(e)
    }
}

/// Validate MFC transfer-size and alignment rules.
pub fn validate(ls_addr: usize, ea: Ea, len: usize) -> Result<(), DmaError> {
    let size_ok =
        matches!(len, 1 | 2 | 4 | 8) || (len > 0 && len.is_multiple_of(16) && len <= MFC_MAX_DMA);
    if !size_ok {
        return Err(DmaError::BadSize(len));
    }
    let align = if len >= 16 { 16 } else { len as u64 };
    let aligned = (ls_addr as u64).is_multiple_of(align) && ea.0.is_multiple_of(align);
    // For sub-quadword transfers the low 4 bits of both addresses must match.
    let congruent = len >= 16 || (ls_addr as u64 & 0xF) == (ea.0 & 0xF);
    if !aligned || !congruent {
        return Err(DmaError::Misaligned { ls_addr, ea, len });
    }
    Ok(())
}

/// Per-SPE tag-group completion state.
///
/// Issuing a command records its completion instant; waiting on a tag mask
/// advances the waiter's virtual clock to the latest completion among the
/// masked tags (zero-cost if everything already completed).
pub struct TagState {
    completion: Mutex<[SimTime; MFC_TAGS as usize]>,
}

impl Default for TagState {
    fn default() -> Self {
        Self::new()
    }
}

impl TagState {
    /// Fresh state: all tags complete at t = 0.
    pub fn new() -> TagState {
        TagState {
            completion: Mutex::new([SimTime::ZERO; MFC_TAGS as usize]),
        }
    }

    /// Record that a command under `tag` completes at `at`.
    pub fn record(&self, tag: u32, at: SimTime) -> Result<(), DmaError> {
        if tag >= MFC_TAGS {
            return Err(DmaError::BadTag(tag));
        }
        let mut c = self.completion.lock();
        let slot = &mut c[tag as usize];
        if at > *slot {
            *slot = at;
        }
        Ok(())
    }

    /// `mfc_read_tag_status_all` for a tag mask: block (advance virtual
    /// time) until every masked tag's commands have completed.
    pub fn wait_all(&self, ctx: &ProcCtx, mask: u32) {
        let latest = {
            let c = self.completion.lock();
            (0..MFC_TAGS)
                .filter(|t| mask & (1 << t) != 0)
                .map(|t| c[t as usize])
                .max()
                .unwrap_or(SimTime::ZERO)
        };
        let now = ctx.now();
        if latest > now {
            ctx.advance(latest - now);
        }
    }

    /// `mfc_read_tag_status_immediate`: which masked tags are complete now?
    pub fn poll(&self, ctx: &ProcCtx, mask: u32) -> u32 {
        let now = ctx.now();
        let c = self.completion.lock();
        (0..MFC_TAGS)
            .filter(|&t| mask & (1 << t) != 0 && c[t as usize] <= now)
            .fold(0, |acc, t| acc | (1 << t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::{SimDuration, Simulation};
    use std::sync::Arc;

    #[test]
    fn size_rules() {
        let ea = Ea(0x1000);
        for len in [1usize, 2, 4, 8, 16, 32, 1600, MFC_MAX_DMA] {
            assert!(validate(0x100, ea, len).is_ok(), "len={len}");
        }
        for len in [0usize, 3, 5, 12, 17, MFC_MAX_DMA + 16] {
            assert!(
                matches!(validate(0x100, ea, len), Err(DmaError::BadSize(_))),
                "len={len}"
            );
        }
    }

    #[test]
    fn alignment_rules() {
        // Quadword transfers need 16B alignment on both sides.
        assert!(validate(0x10, Ea(0x20), 32).is_ok());
        assert!(validate(0x11, Ea(0x20), 32).is_err());
        assert!(validate(0x10, Ea(0x21), 32).is_err());
        // Small transfers need natural alignment and congruent low bits.
        assert!(validate(0x14, Ea(0x24), 4).is_ok());
        assert!(validate(0x14, Ea(0x28), 4).is_err(), "low 4 bits differ");
        assert!(validate(0x13, Ea(0x23), 4).is_err(), "not 4-aligned");
        assert!(validate(0x13, Ea(0x23), 1).is_ok(), "bytes go anywhere");
    }

    #[test]
    fn tag_wait_advances_to_completion() {
        let tags = Arc::new(TagState::new());
        let mut sim = Simulation::new();
        sim.spawn("spu", move |ctx| {
            tags.record(3, ctx.now() + SimDuration::from_micros(10))
                .unwrap();
            tags.record(4, ctx.now() + SimDuration::from_micros(50))
                .unwrap();
            assert_eq!(tags.poll(ctx, 1 << 3 | 1 << 4), 0);
            tags.wait_all(ctx, 1 << 3);
            assert_eq!(ctx.now().as_micros_f64(), 10.0);
            tags.wait_all(ctx, 1 << 3 | 1 << 4);
            assert_eq!(ctx.now().as_micros_f64(), 50.0);
            // Waiting again is free.
            tags.wait_all(ctx, 1 << 4);
            assert_eq!(ctx.now().as_micros_f64(), 50.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn bad_tag_rejected() {
        let tags = TagState::new();
        assert!(matches!(
            tags.record(32, SimTime::ZERO),
            Err(DmaError::BadTag(32))
        ));
    }
}
