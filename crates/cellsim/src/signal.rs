//! SPE signal-notification registers.
//!
//! Each SPE has two 32-bit signal registers. In **OR mode** (the mode the
//! Cell SDK's `SPE_CFG_SIGNOTIFY_OR` configures and the one BlockLib-style
//! synchronization uses), writes OR into the register and an SPU read
//! returns-and-clears the accumulated value, blocking while it is zero.

use crate::costs::CellCosts;
use cp_des::{Pid, ProcCtx, SimDuration};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Accumulation behaviour of a signal register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalMode {
    /// Writes OR into the register (many-to-one signalling).
    Or,
    /// Writes overwrite the register.
    Overwrite,
}

struct SigInner {
    value: u32,
    pending: bool,
    waiters: VecDeque<Pid>,
    label: String,
}

/// One signal-notification register.
pub struct SignalReg {
    inner: Arc<Mutex<SigInner>>,
    mode: SignalMode,
}

impl Clone for SignalReg {
    fn clone(&self) -> Self {
        SignalReg {
            inner: self.inner.clone(),
            mode: self.mode,
        }
    }
}

impl SignalReg {
    /// A fresh register in the given mode.
    pub fn new(label: &str, mode: SignalMode) -> SignalReg {
        SignalReg {
            inner: Arc::new(Mutex::new(SigInner {
                value: 0,
                pending: false,
                waiters: VecDeque::new(),
                label: label.to_string(),
            })),
            mode,
        }
    }

    /// Write `bits` from the PPE side (MMIO cost + delivery latency).
    pub fn ppe_write(&self, ctx: &ProcCtx, costs: &CellCosts, bits: u32) {
        ctx.advance(SimDuration::from_micros_f64(costs.ppe_mmio_op_us));
        self.deliver(
            ctx,
            bits,
            SimDuration::from_micros_f64(costs.mailbox_latency_us),
        );
    }

    /// Write `bits` from a sibling SPE (sndsig DMA: setup cost + latency).
    pub fn spu_write(&self, ctx: &ProcCtx, costs: &CellCosts, bits: u32) {
        ctx.advance(SimDuration::from_micros_f64(costs.dma_setup_us));
        self.deliver(
            ctx,
            bits,
            SimDuration::from_micros_f64(costs.mailbox_latency_us),
        );
    }

    fn deliver(&self, ctx: &ProcCtx, bits: u32, latency: SimDuration) {
        let mut st = self.inner.lock();
        match self.mode {
            SignalMode::Or => st.value |= bits,
            SignalMode::Overwrite => st.value = bits,
        }
        st.pending = true;
        if let Some(w) = st.waiters.pop_front() {
            ctx.unblock(w, latency);
        }
    }

    /// SPU: blocking read-and-clear. Returns the accumulated bits.
    pub fn spu_read(&self, ctx: &ProcCtx, costs: &CellCosts) -> u32 {
        ctx.advance(SimDuration::from_micros_f64(costs.spu_channel_op_us));
        loop {
            let label;
            {
                let mut st = self.inner.lock();
                if st.pending {
                    st.pending = false;
                    return std::mem::take(&mut st.value);
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: signal read"));
        }
    }

    /// SPU: non-blocking peek at the current value (status channel).
    pub fn spu_peek(&self) -> u32 {
        self.inner.lock().value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::Simulation;

    #[test]
    fn or_mode_accumulates_bits() {
        let sig = SignalReg::new("spe0.sig1", SignalMode::Or);
        let mut sim = Simulation::new();
        let (s1, s2) = (sig.clone(), sig);
        sim.spawn("ppe", move |ctx| {
            let c = CellCosts::default();
            s1.ppe_write(ctx, &c, 0b01);
            s1.ppe_write(ctx, &c, 0b10);
        });
        sim.spawn("spu", move |ctx| {
            let c = CellCosts::default();
            ctx.advance(SimDuration::from_micros(100));
            assert_eq!(s2.spu_read(ctx, &c), 0b11);
            assert_eq!(s2.spu_peek(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn overwrite_mode_keeps_last() {
        let sig = SignalReg::new("spe0.sig2", SignalMode::Overwrite);
        let mut sim = Simulation::new();
        let (s1, s2) = (sig.clone(), sig);
        sim.spawn("ppe", move |ctx| {
            let c = CellCosts::default();
            s1.ppe_write(ctx, &c, 5);
            s1.ppe_write(ctx, &c, 9);
        });
        sim.spawn("spu", move |ctx| {
            let c = CellCosts::default();
            ctx.advance(SimDuration::from_micros(100));
            assert_eq!(s2.spu_read(ctx, &c), 9);
        });
        sim.run().unwrap();
    }

    #[test]
    fn sibling_spe_signals_via_sndsig() {
        // SPE-to-SPE signalling (sndsig DMA): each sender ORs its own bit.
        let sig = SignalReg::new("spe3.sig1", SignalMode::Or);
        let mut sim = Simulation::new();
        for bit in 0..3u32 {
            let s = sig.clone();
            sim.spawn(&format!("sender{bit}"), move |ctx| {
                let c = CellCosts::default();
                ctx.advance(SimDuration::from_micros(bit as u64 * 3));
                s.spu_write(ctx, &c, 1 << bit);
            });
        }
        let s2 = sig.clone();
        sim.spawn("collector", move |ctx| {
            let c = CellCosts::default();
            let mut seen = 0;
            while seen != 0b111 {
                seen |= s2.spu_read(ctx, &c);
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn blocked_reader_wakes_on_write() {
        let sig = SignalReg::new("spe0.sig1", SignalMode::Or);
        let mut sim = Simulation::new();
        let (s1, s2) = (sig.clone(), sig);
        sim.spawn("spu", move |ctx| {
            let c = CellCosts::default();
            assert_eq!(s2.spu_read(ctx, &c), 1);
            assert!(ctx.now().as_micros_f64() > 10.0);
        });
        sim.spawn("ppe", move |ctx| {
            let c = CellCosts::default();
            ctx.advance(SimDuration::from_micros(10));
            s1.ppe_write(ctx, &c, 1);
        });
        sim.run().unwrap();
    }
}
