//! The SPE local store: 256 KB of software-managed memory.
//!
//! The paper stresses two constraints this module enforces: the 256 KB
//! capacity shared by code and data (exceeding it is a hard error, so
//! library footprint matters — see the paper's cellpilot.o vs libdacs.a
//! comparison), and the alignment discipline DMA transfers demand.

use crate::memory::LS_SIZE;
use parking_lot::Mutex;
use std::fmt;

/// A byte offset within a local store.
pub type LsAddr = usize;

/// Errors from local-store management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsError {
    /// Not enough contiguous free space.
    OutOfLocalStore {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently free (possibly fragmented).
        free: usize,
    },
    /// Access outside the 256 KB store.
    OutOfBounds {
        /// Start of the offending access.
        addr: LsAddr,
        /// Its length.
        len: usize,
    },
    /// Freeing an address that was never allocated.
    BadFree(LsAddr),
    /// A second program image / runtime reservation was attempted.
    AlreadyReserved,
}

impl fmt::Display for LsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsError::OutOfLocalStore { requested, free } => write!(
                f,
                "SPE local store exhausted: requested {requested} B, {free} B free of {LS_SIZE}"
            ),
            LsError::OutOfBounds { addr, len } => {
                write!(f, "local-store access [{addr:#x}..+{len}] out of bounds")
            }
            LsError::BadFree(a) => write!(f, "free of unallocated local-store address {a:#x}"),
            LsError::AlreadyReserved => write!(f, "local store already has a resident image"),
        }
    }
}

impl std::error::Error for LsError {}

struct LsInner {
    data: Vec<u8>,
    /// Sorted, disjoint free regions `(start, len)`.
    free: Vec<(usize, usize)>,
    /// Allocated regions `(start, len)` for free() validation.
    allocated: Vec<(usize, usize)>,
    /// Bytes reserved at the top for program image + library runtime.
    reserved: usize,
    high_water: usize,
}

/// One SPE's local store with a first-fit allocator and a reservation ledger
/// for the resident program image / library runtime.
pub struct LocalStore {
    inner: Mutex<LsInner>,
}

impl Default for LocalStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalStore {
    /// A fresh, empty local store.
    pub fn new() -> LocalStore {
        LocalStore {
            inner: Mutex::new(LsInner {
                data: vec![0; LS_SIZE],
                free: vec![(0, LS_SIZE)],
                allocated: Vec::new(),
                reserved: 0,
                high_water: 0,
            }),
        }
    }

    /// Reserve `bytes` at the top of the store for a program image and any
    /// resident library runtime. Fails if the store already hosts an image
    /// or cannot fit the reservation.
    pub fn reserve_image(&self, bytes: usize) -> Result<(), LsError> {
        let mut st = self.inner.lock();
        if st.reserved != 0 {
            return Err(LsError::AlreadyReserved);
        }
        if bytes > LS_SIZE {
            return Err(LsError::OutOfLocalStore {
                requested: bytes,
                free: LS_SIZE,
            });
        }
        // Carve from the top: shrink or split the final free region.
        let cut = LS_SIZE - bytes;
        let mut ok = false;
        for region in st.free.iter_mut() {
            let (start, len) = *region;
            if start + len == LS_SIZE {
                if start > cut {
                    break; // top region does not reach down to the cut line
                }
                *region = (start, cut - start);
                ok = true;
                break;
            }
        }
        if !ok {
            let free = st.free.iter().map(|&(_, l)| l).sum();
            return Err(LsError::OutOfLocalStore {
                requested: bytes,
                free,
            });
        }
        st.free.retain(|&(_, l)| l > 0);
        st.reserved = bytes;
        st.high_water = st.high_water.max(bytes);
        Ok(())
    }

    /// Release the image reservation (context destroyed / program unloaded).
    pub fn release_image(&self) {
        let mut st = self.inner.lock();
        if st.reserved == 0 {
            return;
        }
        let start = LS_SIZE - st.reserved;
        st.reserved = 0;
        insert_free(&mut st.free, start, LS_SIZE - start);
    }

    /// Allocate `len` bytes aligned to `align` (power of two), first-fit.
    pub fn alloc(&self, len: usize, align: usize) -> Result<LsAddr, LsError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let len = len.max(1);
        let mut st = self.inner.lock();
        for i in 0..st.free.len() {
            let (start, flen) = st.free[i];
            let base = (start + align - 1) & !(align - 1);
            let pad = base - start;
            if pad + len <= flen {
                // Split: [start,pad) stays free, [base,len) allocated,
                // remainder stays free.
                st.free.remove(i);
                if pad > 0 {
                    insert_free(&mut st.free, start, pad);
                }
                let rem = flen - pad - len;
                if rem > 0 {
                    insert_free(&mut st.free, base + len, rem);
                }
                st.allocated.push((base, len));
                let used = LS_SIZE - st.free.iter().map(|&(_, l)| l).sum::<usize>();
                st.high_water = st.high_water.max(used);
                return Ok(base);
            }
        }
        let free = st.free.iter().map(|&(_, l)| l).sum();
        Err(LsError::OutOfLocalStore {
            requested: len,
            free,
        })
    }

    /// Free an allocation returned by [`LocalStore::alloc`].
    pub fn free(&self, addr: LsAddr) -> Result<(), LsError> {
        let mut st = self.inner.lock();
        let idx = st
            .allocated
            .iter()
            .position(|&(a, _)| a == addr)
            .ok_or(LsError::BadFree(addr))?;
        let (start, len) = st.allocated.swap_remove(idx);
        insert_free(&mut st.free, start, len);
        Ok(())
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&self, addr: LsAddr, len: usize) -> Result<Vec<u8>, LsError> {
        let st = self.inner.lock();
        if addr + len > LS_SIZE {
            return Err(LsError::OutOfBounds { addr, len });
        }
        Ok(st.data[addr..addr + len].to_vec())
    }

    /// Write `bytes` at `addr`.
    pub fn write(&self, addr: LsAddr, bytes: &[u8]) -> Result<(), LsError> {
        let mut st = self.inner.lock();
        if addr + bytes.len() > LS_SIZE {
            return Err(LsError::OutOfBounds {
                addr,
                len: bytes.len(),
            });
        }
        st.data[addr..addr + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> usize {
        self.inner.lock().free.iter().map(|&(_, l)| l).sum()
    }

    /// Bytes currently in use (allocations + image reservation).
    pub fn used_bytes(&self) -> usize {
        LS_SIZE - self.free_bytes()
    }

    /// Peak bytes ever in use.
    pub fn high_water(&self) -> usize {
        self.inner.lock().high_water
    }

    /// Bytes reserved for the resident image/runtime.
    pub fn reserved_bytes(&self) -> usize {
        self.inner.lock().reserved
    }
}

/// Insert a region into the sorted free list, coalescing neighbours.
fn insert_free(free: &mut Vec<(usize, usize)>, start: usize, len: usize) {
    let pos = free.partition_point(|&(s, _)| s < start);
    free.insert(pos, (start, len));
    // Coalesce with successor then predecessor.
    if pos + 1 < free.len() && free[pos].0 + free[pos].1 == free[pos + 1].0 {
        free[pos].1 += free[pos + 1].1;
        free.remove(pos + 1);
    }
    if pos > 0 && free[pos - 1].0 + free[pos - 1].1 == free[pos].0 {
        free[pos - 1].1 += free[pos].1;
        free.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_coalesce_roundtrip() {
        let ls = LocalStore::new();
        let a = ls.alloc(1000, 16).unwrap();
        let b = ls.alloc(2000, 16).unwrap();
        let c = ls.alloc(3000, 16).unwrap();
        assert_eq!(ls.used_bytes(), (1000 + 2000 + 3000));
        ls.free(b).unwrap();
        ls.free(a).unwrap();
        ls.free(c).unwrap();
        assert_eq!(ls.free_bytes(), LS_SIZE);
        assert_eq!(ls.high_water(), 6000);
    }

    #[test]
    fn alignment_is_honoured() {
        let ls = LocalStore::new();
        let _ = ls.alloc(3, 1).unwrap();
        let q = ls.alloc(64, 128).unwrap();
        assert_eq!(q % 128, 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let ls = LocalStore::new();
        let _ = ls.alloc(200 * 1024, 16).unwrap();
        match ls.alloc(100 * 1024, 16) {
            Err(LsError::OutOfLocalStore { requested, free }) => {
                assert_eq!(requested, 100 * 1024);
                assert!(free < 100 * 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn image_reservation_carves_from_top() {
        let ls = LocalStore::new();
        ls.reserve_image(10_336).unwrap(); // the paper's cellpilot.o size
        assert_eq!(ls.reserved_bytes(), 10_336);
        assert_eq!(ls.free_bytes(), LS_SIZE - 10_336);
        assert_eq!(ls.reserve_image(4), Err(LsError::AlreadyReserved));
        ls.release_image();
        assert_eq!(ls.free_bytes(), LS_SIZE);
    }

    #[test]
    fn image_too_large_rejected() {
        let ls = LocalStore::new();
        assert!(ls.reserve_image(LS_SIZE + 1).is_err());
        // Fill the top, then the image cannot fit.
        let _ = ls.alloc(LS_SIZE, 1).unwrap();
        assert!(ls.reserve_image(1).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let ls = LocalStore::new();
        let a = ls.alloc(16, 16).unwrap();
        ls.free(a).unwrap();
        assert_eq!(ls.free(a), Err(LsError::BadFree(a)));
    }

    #[test]
    fn read_write_roundtrip_and_bounds() {
        let ls = LocalStore::new();
        let a = ls.alloc(16, 16).unwrap();
        ls.write(a, &[9; 16]).unwrap();
        assert_eq!(ls.read(a, 16).unwrap(), vec![9; 16]);
        assert!(ls.write(LS_SIZE - 4, &[0; 8]).is_err());
        assert!(ls.read(LS_SIZE - 4, 8).is_err());
    }
}
