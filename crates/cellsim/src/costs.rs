//! Calibrated cost model for intra-Cell operations.
//!
//! The constants below are calibrated against the *hand-coded baseline* rows
//! of the paper's Table II (the rows that reflect raw hardware capability,
//! measured on 3.2 GHz PowerXCell 8i blades), not against the CellPilot rows
//! — CellPilot's own latencies must *emerge* from the protocol paths.
//!
//! Calibration anchors:
//!
//! * Type-2 copy baseline, 1 byte = 15 µs: one mailbox round trip
//!   (SPE request out, PPE completion in) plus a PPE-side `memcpy` of zero
//!   length. With SPU channel ops ≈ 0.1 µs, PPE MMIO mailbox accesses ≈ 2.5 µs
//!   and a mailbox delivery latency ≈ 4.9 µs, the round trip sums to ~15 µs.
//! * Type-2 copy baseline slope: (30 − 15) µs over 1600 B ⇒ ~9.4 ns/B for a
//!   PPE copy where **one** side is an uncached local-store mapping.
//! * Type-4 copy baseline slope: (60 − 30) µs over 1600 B ⇒ double the
//!   per-byte cost when **both** sides are local-store mappings.
//! * DMA baselines are flat (15/15, 30/30): MFC transfers ride the EIB at
//!   ~25.6 GB/s, so 1600 B costs only ~0.06 µs — invisible at this scale.

/// Cost model for one Cell BE processor. All values in microseconds unless
/// stated otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCosts {
    /// SPU-side channel instruction (read/write own mailbox, read signal).
    pub spu_channel_op_us: f64,
    /// PPE-side MMIO access to an SPE's problem-state area (mailbox poke,
    /// signal write, context register read).
    pub ppe_mmio_op_us: f64,
    /// Delivery latency of a mailbox word or signal across the EIB.
    pub mailbox_latency_us: f64,
    /// Fixed cost of issuing one MFC DMA command and observing completion.
    pub dma_setup_us: f64,
    /// EIB payload bandwidth for DMA transfers, bytes per microsecond.
    pub eib_bytes_per_us: f64,
    /// Per-byte cost of a PPE `memcpy` where one side is a memory-mapped
    /// local store (uncached load *or* store).
    pub ls_copy_per_byte_us: f64,
    /// Per-byte cost of a PPE `memcpy` between two mapped local stores
    /// (uncached load *and* store).
    pub ls_ls_copy_per_byte_us: f64,
    /// Per-byte cost of a PPE `memcpy` entirely within cached main memory.
    pub main_copy_per_byte_us: f64,
    /// Translating an SPE local-store address to a main-memory effective
    /// address (what the Co-Pilot does per request).
    pub ea_translate_us: f64,
    /// Fixed cost of creating an SPE context and loading a program image.
    pub spe_load_base_us: f64,
    /// Additional load cost per byte of program image (DMA'd to local store).
    pub spe_load_per_byte_us: f64,
    /// Per-element cost of walking a DMA list.
    pub dma_list_elem_us: f64,
    /// Model EIB bandwidth contention: concurrent DMA transfers on one
    /// node serialize once the ring's payload bandwidth is saturated. Off
    /// by default (at the paper's message sizes the 25.6 GB/s ring never
    /// saturates); turn it on for all-SPEs-streaming studies.
    pub eib_contention: bool,
}

impl Default for CellCosts {
    fn default() -> Self {
        CellCosts {
            spu_channel_op_us: 0.1,
            ppe_mmio_op_us: 2.5,
            mailbox_latency_us: 4.9,
            dma_setup_us: 2.0,
            eib_bytes_per_us: 25_600.0,
            ls_copy_per_byte_us: 0.009_375,
            ls_ls_copy_per_byte_us: 0.018_75,
            main_copy_per_byte_us: 0.000_8,
            ea_translate_us: 1.0,
            spe_load_base_us: 150.0,
            spe_load_per_byte_us: 0.000_05,
            dma_list_elem_us: 0.05,
            eib_contention: false,
        }
    }
}

impl CellCosts {
    /// Cost of a DMA transfer of `bytes` (excluding synchronization).
    pub fn dma_transfer_us(&self, bytes: usize) -> f64 {
        self.dma_setup_us + bytes as f64 / self.eib_bytes_per_us
    }

    /// Cost of a PPE memcpy of `bytes` touching `ls_sides` local-store
    /// mappings (0, 1 or 2).
    pub fn memcpy_us(&self, bytes: usize, ls_sides: u8) -> f64 {
        let per_byte = match ls_sides {
            0 => self.main_copy_per_byte_us,
            1 => self.ls_copy_per_byte_us,
            _ => self.ls_ls_copy_per_byte_us,
        };
        bytes as f64 * per_byte
    }

    /// Cost of loading a program image of `bytes` onto an SPE.
    pub fn spe_load_us(&self, bytes: usize) -> f64 {
        self.spe_load_base_us + bytes as f64 * self.spe_load_per_byte_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_is_flat_at_paper_scale() {
        let c = CellCosts::default();
        let one = c.dma_transfer_us(1);
        let big = c.dma_transfer_us(1600);
        assert!(big - one < 0.1, "1600B DMA adds {} us", big - one);
    }

    #[test]
    fn ls_ls_copy_doubles_single_ls_copy() {
        let c = CellCosts::default();
        let single = c.memcpy_us(1600, 1);
        let double = c.memcpy_us(1600, 2);
        assert!((double - 2.0 * single).abs() < 1e-9);
        // Calibration anchor: 1600 B over one LS mapping = 15 us.
        assert!((single - 15.0).abs() < 0.1);
    }

    #[test]
    fn mailbox_round_trip_matches_type2_anchor() {
        // SPE writes request (channel op) -> latency -> PPE reads (MMIO),
        // PPE writes completion (MMIO) -> latency -> SPE reads (channel op).
        let c = CellCosts::default();
        let rt = 2.0 * c.spu_channel_op_us + 2.0 * c.ppe_mmio_op_us + 2.0 * c.mailbox_latency_us;
        assert!((rt - 15.0).abs() < 0.5, "round trip = {rt} us");
    }
}
