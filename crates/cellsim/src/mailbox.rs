//! SPE mailboxes: the Cell's 32-bit word channels between PPE and SPE.
//!
//! Each SPE has a 4-entry **inbound** mailbox (PPE → SPE), a 1-entry
//! **outbound** mailbox and a 1-entry **outbound interrupt** mailbox
//! (SPE → PPE). SPU-side accesses are cheap channel instructions; PPE-side
//! accesses are MMIO operations into the SPE's problem-state area, which is
//! what makes mailbox synchronization cost microseconds, not nanoseconds.
//!
//! CellPilot's Co-Pilot protocol is built entirely from these words plus
//! effective-address `memcpy`/MPI transfers, so their costs dominate the
//! SPE-connected channel types in Table II.

use crate::costs::CellCosts;
use cp_des::sync::MsgQueue;
use cp_des::{ProcCtx, SimDuration};
use cp_trace::{HbOp, Recorder};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One mailbox word queue plus the send/receive sequence counters the
/// happens-before instrumentation matches edges with.
struct MboxQueue {
    q: MsgQueue<u32>,
    label: String,
    sent: AtomicU64,
    received: AtomicU64,
}

impl MboxQueue {
    fn new(label: String, depth: usize) -> MboxQueue {
        MboxQueue {
            q: MsgQueue::new(&label, Some(depth)),
            label,
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        }
    }

    /// Record the send edge *before* the (possibly blocking) push: the
    /// word cannot be popped before the push inserts it, so the matching
    /// receive always lands later in the recorder's execution order.
    fn note_send(&self, rec: &Option<Recorder>, ctx: &ProcCtx) {
        if let Some(r) = rec {
            let seq = self.sent.fetch_add(1, Ordering::Relaxed);
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::MsgSend {
                    queue: self.label.clone(),
                    seq,
                },
            );
        }
    }

    /// Record the receive edge after a completed pop. Pops are FIFO and
    /// each queue has a single consumer, so the running counter matches
    /// the sender's sequence.
    fn note_recv(&self, rec: &Option<Recorder>, ctx: &ProcCtx) {
        if let Some(r) = rec {
            let seq = self.received.fetch_add(1, Ordering::Relaxed);
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::MsgRecv {
                    queue: self.label.clone(),
                    seq,
                },
            );
        }
    }
}

/// The mailbox set of one SPE.
pub struct Mailboxes {
    inbound: MboxQueue,
    outbound: MboxQueue,
    outbound_intr: MboxQueue,
    /// Inline payloads riding inbound words (see
    /// [`Mailboxes::ppe_write_inbox_inline`]): the PPE's store-gather
    /// buffer lets a ≤16-byte payload travel in the same MMIO burst as a
    /// mailbox word, so eager completions deliver small messages without a
    /// separate DMA. FIFO per SPE — only inline completions push here and
    /// the SPU pops in completion order.
    inline: Mutex<std::collections::VecDeque<Vec<u8>>>,
    recorder: Mutex<Recorder>,
}

impl Mailboxes {
    /// Create the mailbox set for the SPE labelled `label` in diagnostics.
    pub fn new(label: &str) -> Mailboxes {
        Mailboxes {
            inbound: MboxQueue::new(format!("{label}.mbox_in"), 4),
            outbound: MboxQueue::new(format!("{label}.mbox_out"), 1),
            outbound_intr: MboxQueue::new(format!("{label}.mbox_intr"), 1),
            inline: Mutex::new(std::collections::VecDeque::new()),
            recorder: Mutex::new(Recorder::disabled()),
        }
    }

    /// Attach a happens-before recorder (see [`cp_trace::hb`]); mailbox
    /// words then carry ordering edges for the race detector. Disabled by
    /// default: every operation pays one branch and nothing else.
    pub fn set_recorder(&self, rec: Recorder) {
        *self.recorder.lock() = rec;
    }

    /// A recorder clone when recording is on, `None` otherwise (so the
    /// disabled path never formats labels or bumps counters).
    fn rec(&self) -> Option<Recorder> {
        let r = self.recorder.lock();
        r.is_enabled().then(|| r.clone())
    }

    // --- SPU side (channel instructions) ---

    /// SPU: write a word to the outbound mailbox; blocks while it is full.
    pub fn spu_write_outbox(&self, ctx: &ProcCtx, costs: &CellCosts, word: u32) {
        ctx.advance(SimDuration::from_micros_f64(costs.spu_channel_op_us));
        self.outbound.note_send(&self.rec(), ctx);
        self.outbound.q.push(
            ctx,
            word,
            SimDuration::from_micros_f64(costs.mailbox_latency_us),
        );
    }

    /// SPU: write a word to the outbound interrupt mailbox.
    pub fn spu_write_outbox_intr(&self, ctx: &ProcCtx, costs: &CellCosts, word: u32) {
        ctx.advance(SimDuration::from_micros_f64(costs.spu_channel_op_us));
        self.outbound_intr.note_send(&self.rec(), ctx);
        self.outbound_intr.q.push(
            ctx,
            word,
            SimDuration::from_micros_f64(costs.mailbox_latency_us),
        );
    }

    /// SPU: blocking read of the inbound mailbox.
    pub fn spu_read_inbox(&self, ctx: &ProcCtx, costs: &CellCosts) -> u32 {
        let word = self.inbound.q.pop(ctx);
        self.inbound.note_recv(&self.rec(), ctx);
        ctx.advance(SimDuration::from_micros_f64(costs.spu_channel_op_us));
        word
    }

    /// SPU: number of words waiting in the inbound mailbox.
    pub fn spu_inbox_count(&self) -> usize {
        self.inbound.q.len()
    }

    /// SPU: true if the outbound mailbox has space for another word.
    pub fn spu_outbox_has_space(&self) -> bool {
        self.outbound.q.is_empty()
    }

    // --- PPE side (MMIO into problem-state area) ---

    /// PPE: blocking read of the SPE's outbound mailbox. The MMIO access
    /// cost is charged once the word is present (a poll loop would pay at
    /// least one access after arrival).
    pub fn ppe_read_outbox(&self, ctx: &ProcCtx, costs: &CellCosts) -> u32 {
        let word = self.outbound.q.pop(ctx);
        self.outbound.note_recv(&self.rec(), ctx);
        ctx.advance(SimDuration::from_micros_f64(costs.ppe_mmio_op_us));
        word
    }

    /// PPE: non-blocking read of the SPE's outbound mailbox
    /// (`spe_out_mbox_status` + read).
    pub fn ppe_try_read_outbox(&self, ctx: &ProcCtx, costs: &CellCosts) -> Option<u32> {
        ctx.advance(SimDuration::from_micros_f64(costs.ppe_mmio_op_us));
        let word = self.outbound.q.try_pop(ctx);
        if word.is_some() {
            self.outbound.note_recv(&self.rec(), ctx);
        }
        word
    }

    /// PPE: blocking read of the SPE's outbound interrupt mailbox.
    pub fn ppe_read_outbox_intr(&self, ctx: &ProcCtx, costs: &CellCosts) -> u32 {
        let word = self.outbound_intr.q.pop(ctx);
        self.outbound_intr.note_recv(&self.rec(), ctx);
        ctx.advance(SimDuration::from_micros_f64(costs.ppe_mmio_op_us));
        word
    }

    /// PPE: write a word into the SPE's 4-deep inbound mailbox; blocks while
    /// it is full (`SPE_MBOX_ALL_BLOCKING` behaviour).
    pub fn ppe_write_inbox(&self, ctx: &ProcCtx, costs: &CellCosts, word: u32) {
        ctx.advance(SimDuration::from_micros_f64(costs.ppe_mmio_op_us));
        self.inbound.note_send(&self.rec(), ctx);
        self.inbound.q.push(
            ctx,
            word,
            SimDuration::from_micros_f64(costs.mailbox_latency_us),
        );
    }

    /// PPE: non-blocking status of the outbound mailbox (word available?).
    pub fn ppe_outbox_status(&self, ctx: &ProcCtx) -> bool {
        self.outbound.q.has_available(ctx)
    }

    /// PPE: write a word into the SPE's inbound mailbox with a small
    /// payload riding the same store-gather MMIO burst. Charges one MMIO
    /// operation (same as [`Mailboxes::ppe_write_inbox`]) plus a per-byte
    /// copy into the problem-state mapping — no second mailbox word, no
    /// DMA setup. The payload is queued FIFO for
    /// [`Mailboxes::spu_take_inline`].
    pub fn ppe_write_inbox_inline(
        &self,
        ctx: &ProcCtx,
        costs: &CellCosts,
        word: u32,
        payload: Vec<u8>,
    ) {
        ctx.advance(SimDuration::from_micros_f64(
            costs.ppe_mmio_op_us + costs.ls_copy_per_byte_us * payload.len() as f64,
        ));
        // Stage the payload before the word: by the time the SPU pops the
        // word, its payload is guaranteed present.
        self.inline.lock().push_back(payload);
        self.inbound.note_send(&self.rec(), ctx);
        self.inbound.q.push(
            ctx,
            word,
            SimDuration::from_micros_f64(costs.mailbox_latency_us),
        );
    }

    /// SPU: take the oldest inline payload. Call exactly once per inbound
    /// word whose completion flags said the payload rode the word (the
    /// happens-before edge of the word itself orders the payload).
    pub fn spu_take_inline(&self) -> Option<Vec<u8>> {
        self.inline.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::Simulation;
    use std::sync::Arc;

    fn costs() -> CellCosts {
        CellCosts::default()
    }

    #[test]
    fn spu_to_ppe_word_costs_one_way_latency() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("spu", move |ctx| {
            m1.spu_write_outbox(ctx, &costs(), 0xCAFE);
        });
        sim.spawn("ppe", move |ctx| {
            let w = m2.ppe_read_outbox(ctx, &costs());
            assert_eq!(w, 0xCAFE);
            // spu op 0.1 + latency 4.9 + ppe mmio 2.5 = 7.5us
            assert!((ctx.now().as_micros_f64() - 7.5).abs() < 0.01);
        });
        sim.run().unwrap();
    }

    #[test]
    fn inbound_mailbox_depth_is_four() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("ppe", move |ctx| {
            for i in 0..5 {
                m1.ppe_write_inbox(ctx, &costs(), i);
            }
            // The 5th write must have blocked until the SPU drained one word
            // at t = 100us.
            assert!(ctx.now().as_micros_f64() >= 100.0);
        });
        sim.spawn("spu", move |ctx| {
            ctx.advance(SimDuration::from_micros(100));
            for i in 0..5 {
                assert_eq!(m2.spu_read_inbox(ctx, &costs()), i);
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn outbound_is_single_entry() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("spu", move |ctx| {
            m1.spu_write_outbox(ctx, &costs(), 1);
            assert!(!m1.spu_outbox_has_space());
            m1.spu_write_outbox(ctx, &costs(), 2); // blocks until PPE reads
            assert!(ctx.now().as_micros_f64() >= 50.0);
        });
        sim.spawn("ppe", move |ctx| {
            ctx.advance(SimDuration::from_micros(50));
            assert_eq!(m2.ppe_read_outbox(ctx, &costs()), 1);
            assert_eq!(m2.ppe_read_outbox(ctx, &costs()), 2);
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_read_empty_returns_none() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        sim.spawn("ppe", move |ctx| {
            assert_eq!(mb.ppe_try_read_outbox(ctx, &costs()), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn status_and_count_channels() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("spu", move |ctx| {
            assert_eq!(m1.spu_inbox_count(), 0);
            ctx.advance(SimDuration::from_micros(50));
            assert_eq!(m1.spu_inbox_count(), 3);
            for i in 0..3 {
                assert_eq!(m1.spu_read_inbox(ctx, &costs()), i);
            }
            m1.spu_write_outbox(ctx, &costs(), 9);
        });
        sim.spawn("ppe", move |ctx| {
            assert!(!m2.ppe_outbox_status(ctx));
            for i in 0..3 {
                m2.ppe_write_inbox(ctx, &costs(), i);
            }
            ctx.advance(SimDuration::from_micros(100));
            assert!(m2.ppe_outbox_status(ctx));
            assert_eq!(m2.ppe_read_outbox(ctx, &costs()), 9);
        });
        sim.run().unwrap();
    }

    #[test]
    fn hb_edges_match_send_to_recv_by_sequence() {
        use cp_trace::{HbOp, Recorder};
        let mb = Arc::new(Mailboxes::new("node0.spe0"));
        let rec = Recorder::enabled();
        mb.set_recorder(rec.clone());
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("spu", move |ctx| {
            m1.spu_write_outbox(ctx, &costs(), 1);
            m1.spu_write_outbox(ctx, &costs(), 2);
        });
        sim.spawn("ppe", move |ctx| {
            m2.ppe_read_outbox(ctx, &costs());
            m2.ppe_read_outbox(ctx, &costs());
            m2.ppe_write_inbox(ctx, &costs(), 3);
        });
        sim.run().unwrap();
        let hb = rec.hb_events();
        let sends: Vec<_> = hb
            .iter()
            .filter_map(|e| match &e.op {
                HbOp::MsgSend { queue, seq } => Some((queue.clone(), *seq)),
                _ => None,
            })
            .collect();
        let recvs: Vec<_> = hb
            .iter()
            .filter_map(|e| match &e.op {
                HbOp::MsgRecv { queue, seq } => Some((queue.clone(), *seq)),
                _ => None,
            })
            .collect();
        assert_eq!(
            sends,
            vec![
                ("node0.spe0.mbox_out".to_string(), 0),
                ("node0.spe0.mbox_out".to_string(), 1),
                ("node0.spe0.mbox_in".to_string(), 0),
            ]
        );
        // Every receive matches an already-recorded send of the same
        // queue and sequence.
        for r in &recvs {
            let send_pos = hb.iter().position(
                |e| matches!(&e.op, HbOp::MsgSend { queue, seq } if (queue.clone(), *seq) == *r),
            );
            let recv_pos = hb.iter().position(
                |e| matches!(&e.op, HbOp::MsgRecv { queue, seq } if (queue.clone(), *seq) == *r),
            );
            assert!(send_pos.unwrap() < recv_pos.unwrap(), "{hb:?}");
        }
        // The unread inbox word still records its send.
        assert_eq!(recvs.len(), 2);
    }

    #[test]
    fn inline_payload_rides_one_mmio_burst() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("ppe", move |ctx| {
            m1.ppe_write_inbox_inline(ctx, &costs(), 12, vec![7u8; 12]);
            // One MMIO op + 12 bytes at the LS copy rate — no second
            // mailbox word, no DMA setup.
            let want = 2.5 + 12.0 * 0.009375;
            assert!((ctx.now().as_micros_f64() - want).abs() < 0.002);
        });
        sim.spawn("spu", move |ctx| {
            ctx.advance(SimDuration::from_micros(50));
            let w = m2.spu_read_inbox(ctx, &costs());
            assert_eq!(w, 12);
            assert_eq!(m2.spu_take_inline(), Some(vec![7u8; 12]));
            assert_eq!(m2.spu_take_inline(), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn interrupt_mailbox_independent_of_outbound() {
        let mb = Arc::new(Mailboxes::new("spe0"));
        let mut sim = Simulation::new();
        let (m1, m2) = (mb.clone(), mb);
        sim.spawn("spu", move |ctx| {
            m1.spu_write_outbox(ctx, &costs(), 7);
            m1.spu_write_outbox_intr(ctx, &costs(), 8);
        });
        sim.spawn("ppe", move |ctx| {
            assert_eq!(m2.ppe_read_outbox_intr(ctx, &costs()), 8);
            assert_eq!(m2.ppe_read_outbox(ctx, &costs()), 7);
        });
        sim.run().unwrap();
    }
}
