//! A Cell node: main memory, PPE-visible effective-address space, and a set
//! of SPEs with their local stores, mailboxes, signals and MFCs.
//!
//! A "node" here is what the paper calls a Cell node — one or two PowerXCell
//! processors sharing main memory, presented as a single pool of SPEs (a
//! dual-processor QS22-style blade is simply a node with 16 SPEs).

use crate::costs::CellCosts;
use crate::localstore::LocalStore;
use crate::localstore::LsError;
use crate::mailbox::Mailboxes;
use crate::memory::{ls_ea, resolve, Backing, Ea, MainMemory, MemError};
use crate::mfc::{validate, DmaDir, DmaError, TagState};
use crate::signal::{SignalMode, SignalReg};
use cp_des::{Pid, ProcCtx, SimDuration};
use cp_trace::{HbOp, Recorder};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// One Synergistic Processing Element.
pub struct Spe {
    /// Index within the owning node.
    pub index: usize,
    /// The 256 KB local store.
    pub ls: LocalStore,
    /// The PPE↔SPE mailbox set.
    pub mbox: Mailboxes,
    /// Signal-notification register 1 (OR mode).
    pub sig1: SignalReg,
    /// Signal-notification register 2 (OR mode).
    pub sig2: SignalReg,
    /// MFC tag-group completion state.
    pub tags: TagState,
    /// Name of the program currently loaded, if any.
    busy: Mutex<Option<String>>,
}

/// Errors from SPE context management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpeRunError {
    /// The SPE is already running a program.
    Busy {
        /// The occupied SPE.
        spe: usize,
        /// Name of the program it runs.
        running: String,
    },
    /// No such SPE index on this node.
    NoSuchSpe(usize),
    /// The program image does not fit the local store.
    ImageTooLarge {
        /// The target SPE.
        spe: usize,
        /// Image size that failed to fit.
        bytes: usize,
    },
}

impl fmt::Display for SpeRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeRunError::Busy { spe, running } => {
                write!(f, "SPE {spe} is busy running '{running}'")
            }
            SpeRunError::NoSuchSpe(i) => write!(f, "no SPE with index {i} on this node"),
            SpeRunError::ImageTooLarge { spe, bytes } => {
                write!(
                    f,
                    "program image of {bytes} B does not fit SPE {spe} local store"
                )
            }
        }
    }
}

impl std::error::Error for SpeRunError {}

/// A Cell node.
pub struct CellNode {
    /// Node identifier (cluster-wide).
    pub id: usize,
    /// Node main memory.
    pub mem: Arc<MainMemory>,
    /// The node's SPEs.
    pub spes: Vec<Arc<Spe>>,
    /// The node's cost model.
    pub costs: Arc<CellCosts>,
    /// EIB payload occupancy for the contention model.
    eib_busy_until: Mutex<cp_des::SimTime>,
    /// Happens-before recorder for the `cp-check` race detector; disabled
    /// (one branch per op) unless [`CellNode::set_recorder`] attaches one.
    recorder: Mutex<Recorder>,
}

impl CellNode {
    /// Build a node with `spe_count` SPEs and `main_bytes` of main memory.
    pub fn new(id: usize, spe_count: usize, main_bytes: usize, costs: CellCosts) -> Arc<CellNode> {
        let spes = (0..spe_count)
            .map(|i| {
                let label = format!("node{id}.spe{i}");
                Arc::new(Spe {
                    index: i,
                    ls: LocalStore::new(),
                    mbox: Mailboxes::new(&label),
                    sig1: SignalReg::new(&format!("{label}.sig1"), SignalMode::Or),
                    sig2: SignalReg::new(&format!("{label}.sig2"), SignalMode::Or),
                    tags: TagState::new(),
                    busy: Mutex::new(None),
                })
            })
            .collect();
        Arc::new(CellNode {
            id,
            mem: Arc::new(MainMemory::new(main_bytes)),
            spes,
            costs: Arc::new(costs),
            eib_busy_until: Mutex::new(cp_des::SimTime::ZERO),
            recorder: Mutex::new(Recorder::disabled()),
        })
    }

    /// Number of SPEs on this node.
    pub fn spe_count(&self) -> usize {
        self.spes.len()
    }

    /// Attach a happens-before recorder (see [`cp_trace::hb`]): MFC DMA
    /// issues and waits, mailbox words and recorded local-store accesses
    /// then feed the `cp-check` race detector. Propagates to every SPE's
    /// mailbox set. Recording never consumes virtual time.
    pub fn set_recorder(&self, rec: Recorder) {
        for spe in &self.spes {
            spe.mbox.set_recorder(rec.clone());
        }
        *self.recorder.lock() = rec;
    }

    /// A recorder clone when recording is on, `None` otherwise.
    fn rec(&self) -> Option<Recorder> {
        let r = self.recorder.lock();
        r.is_enabled().then(|| r.clone())
    }

    /// The effective address at which SPE `index`'s local-store byte
    /// `offset` is mapped (problem-state mapping).
    pub fn ls_effective_address(&self, spe_index: usize, offset: usize) -> Ea {
        ls_ea(spe_index, offset)
    }

    // --- Effective-address space ---

    fn backing_read(&self, b: Backing, len: usize) -> Result<Vec<u8>, MemError> {
        match b {
            Backing::Main(off) => self.mem.read(off, len),
            Backing::LocalStore { spe, offset } => {
                self.spes[spe]
                    .ls
                    .read(offset, len)
                    .map_err(|_| MemError::OutOfBounds {
                        ea: ls_ea(spe, offset),
                        len,
                    })
            }
        }
    }

    fn backing_write(&self, b: Backing, bytes: &[u8]) -> Result<(), MemError> {
        match b {
            Backing::Main(off) => self.mem.write(off, bytes),
            Backing::LocalStore { spe, offset } => {
                self.spes[spe]
                    .ls
                    .write(offset, bytes)
                    .map_err(|_| MemError::OutOfBounds {
                        ea: ls_ea(spe, offset),
                        len: bytes.len(),
                    })
            }
        }
    }

    /// Read `len` bytes at effective address `ea` (no cost charged; callers
    /// charge via [`CellNode::ppe_memcpy`] or DMA cost models).
    pub fn ea_read(&self, ea: Ea, len: usize) -> Result<Vec<u8>, MemError> {
        let b = resolve(ea, self.mem.capacity(), self.spes.len())?;
        self.backing_read(b, len)
    }

    /// Write `bytes` at effective address `ea`.
    pub fn ea_write(&self, ea: Ea, bytes: &[u8]) -> Result<(), MemError> {
        let b = resolve(ea, self.mem.capacity(), self.spes.len())?;
        self.backing_write(b, bytes)
    }

    /// How many of the two addresses fall in mapped local stores (0..=2) —
    /// determines the per-byte cost of a PPE copy between them.
    pub fn ls_sides(&self, a: Ea, b: Ea) -> u8 {
        let is_ls = |ea: Ea| {
            matches!(
                resolve(ea, self.mem.capacity(), self.spes.len()),
                Ok(Backing::LocalStore { .. })
            )
        };
        is_ls(a) as u8 + is_ls(b) as u8
    }

    /// A PPE `memcpy` between two effective addresses, charging the
    /// calibrated cost for uncached local-store mappings.
    pub fn ppe_memcpy(&self, ctx: &ProcCtx, dst: Ea, src: Ea, len: usize) -> Result<(), MemError> {
        let data = self.ea_read(src, len)?;
        self.ea_write(dst, &data)?;
        if let Some(r) = self.rec() {
            let actor = ctx.name();
            let ts = ctx.now().as_nanos();
            let cap = (self.mem.capacity(), self.spes.len());
            if let Ok(Backing::LocalStore { spe, offset }) = resolve(src, cap.0, cap.1) {
                r.record_hb(
                    &actor,
                    ts,
                    HbOp::LsRead {
                        node: self.id,
                        spe,
                        start: offset as u32,
                        len: len as u32,
                    },
                );
            }
            if let Ok(Backing::LocalStore { spe, offset }) = resolve(dst, cap.0, cap.1) {
                r.record_hb(
                    &actor,
                    ts,
                    HbOp::LsWrite {
                        node: self.id,
                        spe,
                        start: offset as u32,
                        len: len as u32,
                    },
                );
            }
        }
        let cost = self.costs.memcpy_us(len, self.ls_sides(src, dst));
        ctx.advance(SimDuration::from_micros_f64(cost));
        Ok(())
    }

    /// An SPU program load from its own local store, recorded as a
    /// [`HbOp::LsRead`] for the race detector (no cost: local-store
    /// accesses are ordinary loads). Programs that move data with raw MFC
    /// DMA should touch their buffers through these accessors so the
    /// analysis sees the program side of the ordering.
    pub fn ls_read_traced(
        &self,
        ctx: &ProcCtx,
        spe_index: usize,
        addr: usize,
        len: usize,
    ) -> Result<Vec<u8>, LsError> {
        let data = self.spes[spe_index].ls.read(addr, len)?;
        if let Some(r) = self.rec() {
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::LsRead {
                    node: self.id,
                    spe: spe_index,
                    start: addr as u32,
                    len: len as u32,
                },
            );
        }
        Ok(data)
    }

    /// An SPU program store into its own local store, recorded as a
    /// [`HbOp::LsWrite`] for the race detector.
    pub fn ls_write_traced(
        &self,
        ctx: &ProcCtx,
        spe_index: usize,
        addr: usize,
        bytes: &[u8],
    ) -> Result<(), LsError> {
        self.spes[spe_index].ls.write(addr, bytes)?;
        if let Some(r) = self.rec() {
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::LsWrite {
                    node: self.id,
                    spe: spe_index,
                    start: addr as u32,
                    len: bytes.len() as u32,
                },
            );
        }
        Ok(())
    }

    // --- MFC DMA (issued from an SPE program) ---

    /// Issue an MFC DMA command on SPE `spe_index` under tag group `tag`.
    /// The data moves immediately; completion is observable via
    /// [`CellNode::dma_wait`] at the modelled completion time.
    #[allow(clippy::too_many_arguments)] // mirrors the mfc_get/put signature
    pub fn dma(
        &self,
        ctx: &ProcCtx,
        spe_index: usize,
        dir: DmaDir,
        tag: u32,
        ls_addr: usize,
        ea: Ea,
        len: usize,
    ) -> Result<(), DmaError> {
        let spe = self.spes.get(spe_index).ok_or(DmaError::BadTag(tag))?;
        validate(ls_addr, ea, len)?;
        // Issue cost: a handful of channel writes.
        ctx.advance(SimDuration::from_micros_f64(self.costs.spu_channel_op_us));
        if let Some(r) = self.rec() {
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::DmaIssue {
                    node: self.id,
                    spe: spe_index,
                    put: matches!(dir, DmaDir::Put),
                    tag,
                    ls_start: ls_addr as u32,
                    len: len as u32,
                },
            );
        }
        match dir {
            DmaDir::Get => {
                let data = self.ea_read(ea, len)?;
                spe.ls.write(ls_addr, &data)?;
            }
            DmaDir::Put => {
                let data = spe.ls.read(ls_addr, len)?;
                self.ea_write(ea, &data)?;
            }
        }
        let done = self.eib_completion(ctx, len, self.costs.dma_transfer_us(len));
        spe.tags.record(tag, done)
    }

    /// Completion instant of a DMA moving `bytes`, serializing the payload
    /// portion on the EIB when contention modelling is enabled.
    fn eib_completion(&self, ctx: &ProcCtx, bytes: usize, total_us: f64) -> cp_des::SimTime {
        if !self.costs.eib_contention {
            return ctx.now() + SimDuration::from_micros_f64(total_us);
        }
        let payload = SimDuration::from_micros_f64(bytes as f64 / self.costs.eib_bytes_per_us);
        let setup = SimDuration::from_micros_f64(total_us).saturating_sub(payload);
        let mut busy = self.eib_busy_until.lock();
        let start = ctx.now().max(*busy);
        let done = start + payload;
        *busy = done;
        done + setup
    }

    /// `mfc_write_tag_mask` + `mfc_read_tag_status_all`: wait for every
    /// command in the masked tag groups of SPE `spe_index`.
    pub fn dma_wait(&self, ctx: &ProcCtx, spe_index: usize, mask: u32) {
        self.spes[spe_index].tags.wait_all(ctx, mask);
        if let Some(r) = self.rec() {
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::DmaWait {
                    node: self.id,
                    spe: spe_index,
                    mask,
                },
            );
        }
    }

    /// Issue an MFC DMA-list command (`mfc_getl`/`mfc_putl`): gather from /
    /// scatter to the scattered effective-address elements of `list`,
    /// against one contiguous local-store region starting at `ls_addr`.
    /// Each element obeys the single-transfer rules; the list as a whole
    /// completes under one tag with a single setup cost plus a small
    /// per-element charge (the MFC walks the list autonomously).
    pub fn dma_list(
        &self,
        ctx: &ProcCtx,
        spe_index: usize,
        dir: DmaDir,
        tag: u32,
        ls_addr: usize,
        list: &[crate::mfc::DmaListElem],
    ) -> Result<(), DmaError> {
        let spe = self.spes.get(spe_index).ok_or(DmaError::BadTag(tag))?;
        if list.is_empty() || list.len() > crate::mfc::MFC_LIST_MAX {
            return Err(DmaError::BadListLength(list.len()));
        }
        let mut cursor = ls_addr;
        for e in list {
            validate(cursor, e.ea, e.size)?;
            cursor += e.size;
        }
        ctx.advance(SimDuration::from_micros_f64(self.costs.spu_channel_op_us));
        if let Some(r) = self.rec() {
            // One record for the whole list: it lands in one contiguous
            // local-store span under one tag.
            let total: usize = list.iter().map(|e| e.size).sum();
            r.record_hb(
                &ctx.name(),
                ctx.now().as_nanos(),
                HbOp::DmaIssue {
                    node: self.id,
                    spe: spe_index,
                    put: matches!(dir, DmaDir::Put),
                    tag,
                    ls_start: ls_addr as u32,
                    len: total as u32,
                },
            );
        }
        let mut cursor = ls_addr;
        let mut total = 0usize;
        for e in list {
            match dir {
                DmaDir::Get => {
                    let data = self.ea_read(e.ea, e.size)?;
                    spe.ls.write(cursor, &data)?;
                }
                DmaDir::Put => {
                    let data = spe.ls.read(cursor, e.size)?;
                    self.ea_write(e.ea, &data)?;
                }
            }
            cursor += e.size;
            total += e.size;
        }
        let us =
            self.costs.dma_transfer_us(total) + list.len() as f64 * self.costs.dma_list_elem_us;
        let done = self.eib_completion(ctx, total, us);
        spe.tags.record(tag, done)
    }

    // --- SPE program control ---

    /// Load a program of `image_bytes` onto SPE `spe_index` and run `body`
    /// as a new simulated process (the libspe2 pattern: a PPE pthread loads
    /// the context and the SPE runs asynchronously). Returns the process id
    /// to `join` on. The local store keeps `image_bytes` reserved until the
    /// program finishes.
    pub fn start_spe<F>(
        self: &Arc<Self>,
        ctx: &ProcCtx,
        spe_index: usize,
        name: &str,
        image_bytes: usize,
        body: F,
    ) -> Result<Pid, SpeRunError>
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        let spe = self
            .spes
            .get(spe_index)
            .ok_or(SpeRunError::NoSuchSpe(spe_index))?
            .clone();
        {
            let mut busy = spe.busy.lock();
            if let Some(running) = busy.as_ref() {
                return Err(SpeRunError::Busy {
                    spe: spe_index,
                    running: running.clone(),
                });
            }
            *busy = Some(name.to_string());
        }
        if spe.ls.reserve_image(image_bytes).is_err() {
            *spe.busy.lock() = None;
            return Err(SpeRunError::ImageTooLarge {
                spe: spe_index,
                bytes: image_bytes,
            });
        }
        let load_us = self.costs.spe_load_us(image_bytes);
        let label = format!("node{}.spe{}:{}", self.id, spe_index, name);
        let pid = ctx.spawn(&label, move |sctx| {
            sctx.advance(SimDuration::from_micros_f64(load_us));
            body(sctx);
            spe.ls.release_image();
            *spe.busy.lock() = None;
        });
        Ok(pid)
    }

    /// Whether SPE `spe_index` currently runs a program.
    pub fn spe_busy(&self, spe_index: usize) -> bool {
        self.spes[spe_index].busy.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::Simulation;

    fn node() -> Arc<CellNode> {
        CellNode::new(0, 8, 1 << 20, CellCosts::default())
    }

    #[test]
    fn ea_roundtrip_through_ls_mapping() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("ppe", move |_ctx| {
            let ea = n2.ls_effective_address(2, 0x80);
            n2.ea_write(ea, &[7, 8, 9]).unwrap();
            assert_eq!(n2.spes[2].ls.read(0x80, 3).unwrap(), vec![7, 8, 9]);
            assert_eq!(n2.ea_read(ea, 3).unwrap(), vec![7, 8, 9]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn memcpy_cost_depends_on_ls_sides() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("ppe", move |ctx| {
            let m1 = n2.mem.alloc(1600, 16).unwrap();
            let m2 = n2.mem.alloc(1600, 16).unwrap();
            let l1 = n2.ls_effective_address(0, 0);
            let l2 = n2.ls_effective_address(1, 0);
            let t0 = ctx.now();
            n2.ppe_memcpy(ctx, m2, m1, 1600).unwrap();
            let main_cost = (ctx.now() - t0).as_micros_f64();
            let t1 = ctx.now();
            n2.ppe_memcpy(ctx, l1, m1, 1600).unwrap();
            let one_ls = (ctx.now() - t1).as_micros_f64();
            let t2 = ctx.now();
            n2.ppe_memcpy(ctx, l2, l1, 1600).unwrap();
            let two_ls = (ctx.now() - t2).as_micros_f64();
            assert!(main_cost < one_ls && one_ls < two_ls);
            // Calibration anchors from Table II copy baselines.
            assert!((one_ls - 15.0).abs() < 0.5, "one_ls={one_ls}");
            assert!((two_ls - 30.0).abs() < 1.0, "two_ls={two_ls}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn dma_moves_data_and_completes_later() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            let buf = n2.mem.alloc(64, 16).unwrap();
            n2.mem.write(buf.0 as usize, &[5; 64]).unwrap();
            let ls = n2.spes[0].ls.alloc(64, 16).unwrap();
            n2.dma(ctx, 0, DmaDir::Get, 5, ls, buf, 64).unwrap();
            n2.dma_wait(ctx, 0, 1 << 5);
            assert_eq!(n2.spes[0].ls.read(ls, 64).unwrap(), vec![5; 64]);
            // dma_setup dominates: ~2us
            assert!(ctx.now().as_micros_f64() >= 2.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dma_list_gathers_scattered_regions() {
        use crate::mfc::DmaListElem;
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            // Three scattered main-memory chunks.
            let mut elems = Vec::new();
            for k in 0..3u8 {
                let ea = n2.mem.alloc(32, 16).unwrap();
                n2.mem.write(ea.0 as usize, &[k + 1; 32]).unwrap();
                elems.push(DmaListElem { ea, size: 32 });
            }
            let ls = n2.spes[0].ls.alloc(96, 16).unwrap();
            n2.dma_list(ctx, 0, DmaDir::Get, 7, ls, &elems).unwrap();
            n2.dma_wait(ctx, 0, 1 << 7);
            let got = n2.spes[0].ls.read(ls, 96).unwrap();
            assert_eq!(&got[..32], &[1u8; 32]);
            assert_eq!(&got[32..64], &[2u8; 32]);
            assert_eq!(&got[64..], &[3u8; 32]);
            // Scatter it back doubled.
            n2.spes[0].ls.write(ls, &[9u8; 96]).unwrap();
            n2.dma_list(ctx, 0, DmaDir::Put, 8, ls, &elems).unwrap();
            n2.dma_wait(ctx, 0, 1 << 8);
            assert_eq!(
                n2.mem.read(elems[2].ea.0 as usize, 32).unwrap(),
                vec![9u8; 32]
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn dma_list_rejects_bad_lists() {
        use crate::mfc::DmaListElem;
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            assert!(matches!(
                n2.dma_list(ctx, 0, DmaDir::Get, 0, 0, &[]),
                Err(DmaError::BadListLength(0))
            ));
            let ea = n2.mem.alloc(64, 16).unwrap();
            // Second element lands at a misaligned LS cursor.
            let bad = [DmaListElem { ea, size: 8 }, DmaListElem { ea, size: 32 }];
            assert!(matches!(
                n2.dma_list(ctx, 0, DmaDir::Get, 0, 0, &bad),
                Err(DmaError::Misaligned { .. })
            ));
        });
        sim.run().unwrap();
    }

    #[test]
    fn eib_contention_serializes_big_concurrent_dmas() {
        let costs = CellCosts {
            eib_contention: true,
            ..CellCosts::default()
        };
        let n = CellNode::new(0, 8, 1 << 20, costs);
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            let bytes = 16 * 1024; // 0.64us of ring payload each
            let buf = n2.mem.alloc(bytes, 16).unwrap();
            // Issue 8 back-to-back transfers under different tags, then
            // wait for the last: its completion must reflect serialized
            // payload (8 * bytes / bw), not one transfer's worth.
            for k in 0..8u32 {
                let ls = n2.spes[0].ls.alloc(bytes, 16).unwrap();
                n2.dma(ctx, 0, DmaDir::Get, k, ls, buf, bytes).unwrap();
            }
            n2.dma_wait(ctx, 0, 0xFF);
            let payload_us = 8.0 * bytes as f64 / n2.costs.eib_bytes_per_us;
            let now = ctx.now().as_micros_f64();
            assert!(
                now >= payload_us,
                "serialized payload {payload_us:.2}us, finished at {now:.2}us"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn no_contention_dmas_overlap() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            let bytes = 16 * 1024;
            let buf = n2.mem.alloc(bytes, 16).unwrap();
            for k in 0..8u32 {
                let ls = n2.spes[0].ls.alloc(bytes, 16).unwrap();
                n2.dma(ctx, 0, DmaDir::Get, k, ls, buf, bytes).unwrap();
            }
            n2.dma_wait(ctx, 0, 0xFF);
            // All 8 overlap: the wait costs roughly one transfer.
            assert!(ctx.now().as_micros_f64() < 2.0 * n2.costs.dma_transfer_us(bytes) + 1.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dma_rejects_misalignment() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            let buf = n2.mem.alloc(64, 16).unwrap();
            let err = n2.dma(ctx, 0, DmaDir::Get, 0, 3, buf, 32);
            assert!(matches!(err, Err(DmaError::Misaligned { .. })));
        });
        sim.run().unwrap();
    }

    #[test]
    fn spe_exclusive_occupancy() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("ppe", move |ctx| {
            let pid = n2
                .start_spe(ctx, 0, "worker", 10_000, |sctx| {
                    sctx.advance(SimDuration::from_micros(500));
                })
                .unwrap();
            ctx.yield_now();
            assert!(n2.spe_busy(0));
            match n2.start_spe(ctx, 0, "other", 10_000, |_| {}) {
                Err(SpeRunError::Busy { spe: 0, .. }) => {}
                other => panic!("expected Busy, got {other:?}"),
            }
            ctx.join(pid);
            assert!(!n2.spe_busy(0));
            // Reusable after completion.
            let pid2 = n2.start_spe(ctx, 0, "again", 10_000, |_| {}).unwrap();
            ctx.join(pid2);
        });
        sim.run().unwrap();
    }

    #[test]
    fn spe_load_charges_time_and_reserves_ls() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("ppe", move |ctx| {
            let n3 = n2.clone();
            let pid = n2
                .start_spe(ctx, 1, "p", 10_336, move |sctx| {
                    assert_eq!(n3.spes[1].ls.reserved_bytes(), 10_336);
                    assert!(sctx.now().as_micros_f64() >= 150.0, "load cost charged");
                })
                .unwrap();
            ctx.join(pid);
            assert_eq!(n2.spes[1].ls.reserved_bytes(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn hb_recorder_sees_dma_issue_and_wait() {
        use cp_trace::{HbOp, Recorder};
        let n = node();
        let rec = Recorder::enabled();
        n.set_recorder(rec.clone());
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("spu", move |ctx| {
            let buf = n2.mem.alloc(64, 16).unwrap();
            let ls = n2.spes[0].ls.alloc(64, 16).unwrap();
            n2.dma(ctx, 0, DmaDir::Get, 3, ls, buf, 64).unwrap();
            n2.dma_wait(ctx, 0, 1 << 3);
            n2.ls_write_traced(ctx, 0, ls, &[1; 8]).unwrap();
            assert_eq!(n2.ls_read_traced(ctx, 0, ls, 8).unwrap(), vec![1; 8]);
        });
        sim.run().unwrap();
        let hb = rec.hb_events();
        assert_eq!(hb.len(), 4, "{hb:?}");
        assert!(
            matches!(
                hb[0].op,
                HbOp::DmaIssue {
                    put: false,
                    tag: 3,
                    len: 64,
                    ..
                }
            ),
            "{:?}",
            hb[0]
        );
        assert!(matches!(hb[1].op, HbOp::DmaWait { mask, .. } if mask == 1 << 3));
        assert!(matches!(hb[2].op, HbOp::LsWrite { len: 8, .. }));
        assert!(matches!(hb[3].op, HbOp::LsRead { len: 8, .. }));
        assert_eq!(hb[0].actor, "spu");
    }

    #[test]
    fn hb_recording_never_consumes_virtual_time() {
        use cp_trace::Recorder;
        let run = |rec: Option<Recorder>| {
            let n = node();
            if let Some(r) = rec {
                n.set_recorder(r);
            }
            let mut sim = Simulation::new();
            let n2 = n.clone();
            sim.spawn("spu", move |ctx| {
                let buf = n2.mem.alloc(128, 16).unwrap();
                let ls = n2.spes[0].ls.alloc(128, 16).unwrap();
                n2.dma(ctx, 0, DmaDir::Get, 0, ls, buf, 128).unwrap();
                n2.dma_wait(ctx, 0, 1);
                n2.dma(ctx, 0, DmaDir::Put, 1, ls, buf, 128).unwrap();
                n2.dma_wait(ctx, 0, 2);
            });
            sim.run().unwrap().end_time
        };
        assert_eq!(run(None), run(Some(Recorder::enabled())));
    }

    #[test]
    fn image_too_large_is_rejected_and_spe_freed() {
        let n = node();
        let mut sim = Simulation::new();
        let n2 = n.clone();
        sim.spawn("ppe", move |ctx| {
            match n2.start_spe(ctx, 0, "huge", 300 * 1024, |_| {}) {
                Err(SpeRunError::ImageTooLarge { .. }) => {}
                other => panic!("expected ImageTooLarge, got {other:?}"),
            }
            assert!(!n2.spe_busy(0));
        });
        sim.run().unwrap();
    }
}
