//! Signal-register barrier: the BlockLib-style synchronization pattern the
//! paper's related work describes ("Synchronization is achieved using
//! signals") — an all-SPE barrier built from the OR-mode signal registers,
//! with the PPE as the collector.
//!
//! Protocol per round: each arriving SPE ORs its own bit into a collector
//! SPE's signal register 1 (a cheap `sndsig` DMA); the PPE drains that
//! register until the full arrival mask is seen, then releases every
//! member through its signal register 2. Signals beat mailboxes here
//! because OR-mode accumulates many arrivals into one word.

use crate::costs::CellCosts;
use crate::node::CellNode;
use cp_des::ProcCtx;
use std::sync::Arc;

/// A reusable barrier over a fixed set of SPEs, collected by a PPE-side
/// process.
///
/// ```
/// use cp_cellsim::{CellCosts, CellNode, SpeSignalBarrier};
/// use cp_des::{SimDuration, Simulation};
/// use std::sync::Arc;
///
/// let cell = CellNode::new(0, 2, 1 << 20, CellCosts::default());
/// let barrier = Arc::new(SpeSignalBarrier::new(cell.clone(), vec![0, 1]));
/// let mut sim = Simulation::new();
/// let b = barrier.clone();
/// sim.spawn("ppe", move |ctx| {
///     let mut pids = Vec::new();
///     for me in 0..2 {
///         let b = b.clone();
///         let cell2 = cell.clone();
///         pids.push(cell.start_spe(ctx, me, "m", 1024, move |sctx| {
///             sctx.advance(SimDuration::from_micros(10 * (me as u64 + 1)));
///             b.spe_wait(sctx, me);
///             let _ = cell2; // both leave only after the later arrival
///             assert!(sctx.now().as_micros_f64() > 20.0);
///         }).unwrap());
///     }
///     b.ppe_collect_and_release(ctx);
///     for p in pids { ctx.join(p); }
/// });
/// sim.run().unwrap();
/// ```
pub struct SpeSignalBarrier {
    cell: Arc<CellNode>,
    members: Vec<usize>,
}

impl SpeSignalBarrier {
    /// Build a barrier over the given hardware SPE indices.
    pub fn new(cell: Arc<CellNode>, members: Vec<usize>) -> SpeSignalBarrier {
        assert!(!members.is_empty(), "barrier needs at least one SPE");
        assert!(members.len() <= 32, "signal register holds 32 arrival bits");
        SpeSignalBarrier { cell, members }
    }

    /// The arrival mask when every member has checked in.
    fn full_mask(&self) -> u32 {
        if self.members.len() == 32 {
            u32::MAX
        } else {
            (1u32 << self.members.len()) - 1
        }
    }

    /// SPE side: arrive and wait for the release. `me` is the caller's
    /// position in the member list.
    pub fn spe_wait(&self, ctx: &ProcCtx, me: usize) {
        let costs: &CellCosts = &self.cell.costs;
        // Arrive: OR my bit into the collector SPE's signal register 1
        // (members[0] hosts the arrival register).
        let collector = self.members[0];
        self.cell.spes[collector]
            .sig1
            .spu_write(ctx, costs, 1 << me);
        // Wait for my release bit in my own signal register 2.
        let hw = self.members[me];
        let bits = self.cell.spes[hw].sig2.spu_read(ctx, costs);
        debug_assert_eq!(bits, 1, "release writes a single bit");
    }

    /// PPE side: collect all arrivals off the collector's register, then
    /// release every member. Call once per barrier round.
    pub fn ppe_collect_and_release(&self, ctx: &ProcCtx) {
        let costs: &CellCosts = &self.cell.costs;
        let collector = self.members[0];
        let mut seen = 0u32;
        while seen != self.full_mask() {
            // The OR-mode register accumulates between reads, so a poll
            // returns whatever arrived since the last read.
            seen |= self.cell.spes[collector].sig1.spu_read(ctx, costs);
        }
        for &hw in &self.members {
            self.cell.spes[hw].sig2.ppe_write(ctx, costs, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_des::{SimDuration, Simulation};
    use parking_lot::Mutex;

    #[test]
    fn all_spes_leave_after_the_last_arrival() {
        let cell = CellNode::new(0, 4, 1 << 20, CellCosts::default());
        let barrier = Arc::new(SpeSignalBarrier::new(cell.clone(), vec![0, 1, 2, 3]));
        let leave_times = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let cell2 = cell.clone();
        let b2 = barrier.clone();
        sim.spawn("ppe", move |ctx| {
            let mut pids = Vec::new();
            for me in 0..4usize {
                let b = b2.clone();
                let lt = leave_times.clone();
                let pid = cell2
                    .start_spe(ctx, me, "member", 2048, move |sctx| {
                        // Staggered arrivals: 10, 20, 30, 40 us of work.
                        sctx.advance(SimDuration::from_micros(10 * (me as u64 + 1)));
                        b.spe_wait(sctx, me);
                        lt.lock().push(sctx.now().as_micros_f64());
                    })
                    .unwrap();
                pids.push(pid);
            }
            b2.ppe_collect_and_release(ctx);
            for p in pids {
                ctx.join(p);
            }
            let v = leave_times.lock();
            assert_eq!(v.len(), 4);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            // Nobody leaves before the last arrival (load + 40us of work).
            assert!(min > 40.0, "leave times {v:?}");
            // And everyone leaves within one signal-latency window.
            let max = v.iter().cloned().fold(0.0, f64::max);
            assert!(max - min < 2.0 * cell2.costs.mailbox_latency_us, "{v:?}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn barrier_is_reusable_across_rounds() {
        let cell = CellNode::new(0, 2, 1 << 20, CellCosts::default());
        let barrier = Arc::new(SpeSignalBarrier::new(cell.clone(), vec![0, 1]));
        let mut sim = Simulation::new();
        let cell2 = cell.clone();
        let b2 = barrier.clone();
        sim.spawn("ppe", move |ctx| {
            let rounds = 5;
            let mut pids = Vec::new();
            for me in 0..2usize {
                let b = b2.clone();
                let pid = cell2
                    .start_spe(ctx, me, "member", 2048, move |sctx| {
                        for r in 0..rounds {
                            sctx.advance(SimDuration::from_micros((me as u64 + 1) * (r + 1)));
                            b.spe_wait(sctx, me);
                        }
                    })
                    .unwrap();
                pids.push(pid);
            }
            for _ in 0..rounds {
                b2.ppe_collect_and_release(ctx);
            }
            for p in pids {
                ctx.join(p);
            }
        });
        sim.run().unwrap();
    }
}
