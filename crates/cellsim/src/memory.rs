//! Per-node effective-address space: main memory plus memory-mapped SPE
//! local stores.
//!
//! On a real Cell, each SPE's 256 KB local store can be mapped into the
//! PPE's effective-address space (the *problem state* mapping); CellPilot
//! exploits this so the Co-Pilot can `memcpy`/MPI directly in and out of
//! local stores. We reproduce that address-space shape: effective addresses
//! below [`LS_MAP_BASE`] are node main memory, and each SPE's local store
//! occupies a window at `LS_MAP_BASE + index * LS_MAP_STRIDE`.

use parking_lot::Mutex;
use std::fmt;

/// Size of one SPE local store: 256 KB.
pub const LS_SIZE: usize = 256 * 1024;

/// Base effective address of the local-store mapping windows.
pub const LS_MAP_BASE: u64 = 0xF000_0000;

/// Stride between consecutive SPEs' mapping windows.
pub const LS_MAP_STRIDE: u64 = 0x0010_0000;

/// An effective address within one node's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ea(pub u64);

impl fmt::Debug for Ea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ea({:#x})", self.0)
    }
}

impl Ea {
    /// Offset this address by `delta` bytes.
    pub fn offset(self, delta: u64) -> Ea {
        Ea(self.0 + delta)
    }

    /// True if the address is aligned to `align` (a power of two).
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }
}

/// What backs a resolved effective address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Node main memory at the given byte offset.
    Main(usize),
    /// SPE `index`'s local store at the given byte offset.
    LocalStore {
        /// The SPE whose local store backs the address.
        spe: usize,
        /// Byte offset within that local store.
        offset: usize,
    },
}

/// Errors raised by address-space operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Address resolves to no mapped region.
    Unmapped(Ea),
    /// Access runs past the end of its backing region.
    OutOfBounds {
        /// Start of the offending access.
        ea: Ea,
        /// Its length.
        len: usize,
    },
    /// Allocation request cannot be satisfied.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped(ea) => write!(f, "unmapped effective address {ea:?}"),
            MemError::OutOfBounds { ea, len } => {
                write!(f, "access of {len} bytes at {ea:?} exceeds region")
            }
            MemError::OutOfMemory { requested } => {
                write!(f, "main memory exhausted allocating {requested} bytes")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Resolve an effective address to its backing, given the node's SPE count.
pub fn resolve(ea: Ea, main_capacity: usize, spe_count: usize) -> Result<Backing, MemError> {
    if ea.0 < LS_MAP_BASE {
        let off = ea.0 as usize;
        if off < main_capacity {
            Ok(Backing::Main(off))
        } else {
            Err(MemError::Unmapped(ea))
        }
    } else {
        let rel = ea.0 - LS_MAP_BASE;
        let spe = (rel / LS_MAP_STRIDE) as usize;
        let offset = (rel % LS_MAP_STRIDE) as usize;
        if spe < spe_count && offset < LS_SIZE {
            Ok(Backing::LocalStore { spe, offset })
        } else {
            Err(MemError::Unmapped(ea))
        }
    }
}

/// The effective address of byte `offset` within SPE `index`'s mapped
/// local store.
pub fn ls_ea(spe_index: usize, offset: usize) -> Ea {
    debug_assert!(offset < LS_SIZE);
    Ea(LS_MAP_BASE + spe_index as u64 * LS_MAP_STRIDE + offset as u64)
}

struct MainInner {
    data: Vec<u8>,
    bump: usize,
}

/// A node's main memory: byte-addressable storage with a bump allocator for
/// carving out buffers (simulated `malloc`).
pub struct MainMemory {
    inner: Mutex<MainInner>,
    capacity: usize,
}

impl MainMemory {
    /// Main memory with the given capacity in bytes.
    pub fn new(capacity: usize) -> MainMemory {
        MainMemory {
            inner: Mutex::new(MainInner {
                data: Vec::new(),
                bump: 16, // keep EA 0 unmapped-looking ("null")
            }),
            capacity,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate `len` bytes aligned to `align` (power of two); returns the
    /// base effective address.
    pub fn alloc(&self, len: usize, align: usize) -> Result<Ea, MemError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut inner = self.inner.lock();
        let base = (inner.bump + align - 1) & !(align - 1);
        let end = base
            .checked_add(len)
            .ok_or(MemError::OutOfMemory { requested: len })?;
        if end > self.capacity {
            return Err(MemError::OutOfMemory { requested: len });
        }
        inner.bump = end;
        if inner.data.len() < end {
            inner.data.resize(end, 0);
        }
        Ok(Ea(base as u64))
    }

    /// Read `len` bytes at main-memory offset `off`.
    pub fn read(&self, off: usize, len: usize) -> Result<Vec<u8>, MemError> {
        let mut inner = self.inner.lock();
        let end = off + len;
        if end > self.capacity {
            return Err(MemError::OutOfBounds {
                ea: Ea(off as u64),
                len,
            });
        }
        if inner.data.len() < end {
            inner.data.resize(end, 0);
        }
        Ok(inner.data[off..end].to_vec())
    }

    /// Write `bytes` at main-memory offset `off`.
    pub fn write(&self, off: usize, bytes: &[u8]) -> Result<(), MemError> {
        let mut inner = self.inner.lock();
        let end = off + bytes.len();
        if end > self.capacity {
            return Err(MemError::OutOfBounds {
                ea: Ea(off as u64),
                len: bytes.len(),
            });
        }
        if inner.data.len() < end {
            inner.data.resize(end, 0);
        }
        inner.data[off..end].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_main_and_ls() {
        assert_eq!(resolve(Ea(0x100), 1 << 20, 8), Ok(Backing::Main(0x100)));
        assert_eq!(
            resolve(ls_ea(3, 0x40), 1 << 20, 8),
            Ok(Backing::LocalStore {
                spe: 3,
                offset: 0x40
            })
        );
    }

    #[test]
    fn resolve_rejects_unmapped() {
        // Past main capacity but below the LS window.
        assert!(resolve(Ea(0x200000), 1 << 20, 8).is_err());
        // SPE index past the node's SPE count.
        assert!(resolve(ls_ea(9, 0), 1 << 20, 8).is_err());
        // Offset past the 256KB local store within the 1MB stride.
        assert!(resolve(Ea(LS_MAP_BASE + LS_SIZE as u64), 1 << 20, 8).is_err());
    }

    #[test]
    fn alloc_respects_alignment_and_capacity() {
        let mem = MainMemory::new(4096);
        let a = mem.alloc(10, 16).unwrap();
        assert!(a.is_aligned(16));
        let b = mem.alloc(100, 128).unwrap();
        assert!(b.is_aligned(128));
        assert!(b.0 >= a.0 + 10);
        assert!(mem.alloc(1 << 20, 16).is_err());
    }

    #[test]
    fn read_write_roundtrip() {
        let mem = MainMemory::new(1 << 16);
        let ea = mem.alloc(64, 16).unwrap();
        mem.write(ea.0 as usize, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read(ea.0 as usize, 4).unwrap(), vec![1, 2, 3, 4]);
        // Unwritten memory reads as zero.
        assert_eq!(mem.read(ea.0 as usize + 4, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn oob_write_rejected() {
        let mem = MainMemory::new(128);
        assert!(mem.write(120, &[0; 16]).is_err());
    }
}
