//! SPE code overlays.
//!
//! The paper (§II.A): programmers "may need to divide up their application
//! code accordingly, for which an overlay capability is available" — when a
//! program's code does not fit the 256 KB local store alongside its data,
//! segments are swapped in from main memory on demand. An
//! [`OverlayRegion`] models the linker-managed overlay buffer: a fixed
//! local-store window plus a set of code segments staged in main memory;
//! calling a function in a non-resident segment triggers a DMA of that
//! segment over the window, charged at EIB cost.

use crate::mfc::DmaError;
use crate::node::CellNode;
use cp_des::{ProcCtx, SimDuration};
use parking_lot::Mutex;
use std::sync::Arc;

/// A declared overlay segment.
#[derive(Debug, Clone)]
pub struct OverlaySegment {
    /// Human-readable name (the source overlay section).
    pub name: String,
    /// Code bytes (must fit the overlay window).
    pub bytes: usize,
}

/// Errors from overlay management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The segment does not fit the overlay window.
    SegmentTooLarge {
        /// The offending segment.
        segment: String,
        /// Its size.
        bytes: usize,
        /// The window capacity.
        window: usize,
    },
    /// No segment with that index was declared.
    NoSuchSegment(usize),
    /// The window could not be reserved in the local store.
    Ls(crate::localstore::LsError),
    /// The staged segment could not be transferred.
    Dma(DmaError),
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::SegmentTooLarge {
                segment,
                bytes,
                window,
            } => write!(
                f,
                "overlay segment '{segment}' ({bytes} B) exceeds the {window} B window"
            ),
            OverlayError::NoSuchSegment(i) => write!(f, "no overlay segment {i}"),
            OverlayError::Ls(e) => write!(f, "overlay window: {e}"),
            OverlayError::Dma(e) => write!(f, "overlay swap: {e}"),
        }
    }
}

impl std::error::Error for OverlayError {}

struct OverlayState {
    resident: Option<usize>,
    swaps: u64,
}

/// An overlay window on one SPE with its staged segments.
pub struct OverlayRegion {
    cell: Arc<CellNode>,
    hw: usize,
    window_addr: usize,
    window_len: usize,
    segments: Vec<OverlaySegment>,
    state: Mutex<OverlayState>,
}

impl OverlayRegion {
    /// Reserve an overlay window of `window_len` bytes in SPE `hw`'s local
    /// store and register the given segments. The window is sized to the
    /// largest segment or `window_len`, whichever is larger.
    pub fn new(
        cell: Arc<CellNode>,
        hw: usize,
        window_len: usize,
        segments: Vec<OverlaySegment>,
    ) -> Result<OverlayRegion, OverlayError> {
        for s in &segments {
            if s.bytes > window_len {
                return Err(OverlayError::SegmentTooLarge {
                    segment: s.name.clone(),
                    bytes: s.bytes,
                    window: window_len,
                });
            }
        }
        let window_addr = cell.spes[hw]
            .ls
            .alloc(window_len, 16)
            .map_err(OverlayError::Ls)?;
        Ok(OverlayRegion {
            cell,
            hw,
            window_addr,
            window_len,
            segments,
            state: Mutex::new(OverlayState {
                resident: None,
                swaps: 0,
            }),
        })
    }

    /// Ensure segment `idx` is resident, swapping it in over the window if
    /// necessary. Returns `true` when a swap (and its DMA cost) occurred.
    /// Models the call-stub check the overlay linker inserts.
    pub fn ensure_resident(&self, ctx: &ProcCtx, idx: usize) -> Result<bool, OverlayError> {
        let seg = self
            .segments
            .get(idx)
            .ok_or(OverlayError::NoSuchSegment(idx))?;
        {
            let st = self.state.lock();
            if st.resident == Some(idx) {
                // Resident: the stub check costs a couple of cycles only.
                return Ok(false);
            }
        }
        // Swap: DMA the segment image from its main-memory staging area.
        // The code image content is opaque; only the cost and the
        // residency bookkeeping matter to callers.
        let padded = (seg.bytes.max(16) + 15) & !15;
        let us = self.cell.costs.dma_transfer_us(padded.min(self.window_len));
        ctx.advance(SimDuration::from_micros_f64(us));
        let mut st = self.state.lock();
        st.resident = Some(idx);
        st.swaps += 1;
        Ok(true)
    }

    /// The currently resident segment, if any.
    pub fn resident(&self) -> Option<usize> {
        self.state.lock().resident
    }

    /// How many swaps have occurred (thrashing diagnostics).
    pub fn swap_count(&self) -> u64 {
        self.state.lock().swaps
    }

    /// The window's local-store address (for footprint accounting).
    pub fn window_addr(&self) -> usize {
        self.window_addr
    }

    /// Release the window back to the local store.
    pub fn release(self) {
        let _ = self.cell.spes[self.hw].ls.free(self.window_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CellCosts;
    use cp_des::Simulation;

    fn setup() -> (Arc<CellNode>, Vec<OverlaySegment>) {
        let cell = CellNode::new(0, 2, 1 << 20, CellCosts::default());
        let segs = vec![
            OverlaySegment {
                name: "phase1".into(),
                bytes: 20_000,
            },
            OverlaySegment {
                name: "phase2".into(),
                bytes: 28_000,
            },
            OverlaySegment {
                name: "phase3".into(),
                bytes: 8_000,
            },
        ];
        (cell, segs)
    }

    #[test]
    fn swaps_only_on_residency_change() {
        let (cell, segs) = setup();
        let mut sim = Simulation::new();
        sim.spawn("spu", move |ctx| {
            let ov = OverlayRegion::new(cell.clone(), 0, 32_000, segs).unwrap();
            assert_eq!(ov.resident(), None);
            assert!(ov.ensure_resident(ctx, 0).unwrap(), "first call swaps");
            assert!(!ov.ensure_resident(ctx, 0).unwrap(), "resident is free");
            assert!(ov.ensure_resident(ctx, 1).unwrap());
            assert!(ov.ensure_resident(ctx, 0).unwrap(), "round trip re-swaps");
            assert_eq!(ov.swap_count(), 3);
            assert_eq!(ov.resident(), Some(0));
            ov.release();
            // The window is fully recovered.
            assert_eq!(cell.spes[0].ls.free_bytes(), crate::LS_SIZE);
        });
        sim.run().unwrap();
    }

    #[test]
    fn swap_charges_dma_time() {
        let (cell, segs) = setup();
        let mut sim = Simulation::new();
        sim.spawn("spu", move |ctx| {
            let ov = OverlayRegion::new(cell, 0, 32_000, segs).unwrap();
            let t0 = ctx.now();
            ov.ensure_resident(ctx, 1).unwrap();
            let swap_us = (ctx.now() - t0).as_micros_f64();
            assert!(
                swap_us > 2.0,
                "28KB over the EIB costs real time: {swap_us}"
            );
            let t1 = ctx.now();
            ov.ensure_resident(ctx, 1).unwrap();
            assert_eq!(ctx.now(), t1, "hit costs nothing");
        });
        sim.run().unwrap();
    }

    #[test]
    fn oversized_segment_rejected() {
        let (cell, _) = setup();
        let segs = vec![OverlaySegment {
            name: "huge".into(),
            bytes: 64_000,
        }];
        match OverlayRegion::new(cell, 0, 32_000, segs) {
            Err(OverlayError::SegmentTooLarge { segment, .. }) => {
                assert_eq!(segment, "huge")
            }
            Err(other) => panic!("expected SegmentTooLarge, got {other:?}"),
            Ok(_) => panic!("expected SegmentTooLarge, got Ok"),
        }
    }

    #[test]
    fn unknown_segment_rejected() {
        let (cell, segs) = setup();
        let mut sim = Simulation::new();
        sim.spawn("spu", move |ctx| {
            let ov = OverlayRegion::new(cell, 0, 32_000, segs).unwrap();
            assert_eq!(
                ov.ensure_resident(ctx, 9).unwrap_err(),
                OverlayError::NoSuchSegment(9)
            );
        });
        sim.run().unwrap();
    }
}
