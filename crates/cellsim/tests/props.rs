//! Property tests for the Cell node model: local-store allocator
//! invariants and MFC DMA validation rules.

use cp_cellsim::{validate_dma, Ea, LocalStore, LsError, LS_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Live allocations never overlap and never exceed the 256 KB store.
    #[test]
    fn allocations_never_overlap(
        reqs in proptest::collection::vec((1usize..4096, 0u8..3), 1..64)
    ) {
        let ls = LocalStore::new();
        let mut live: Vec<(usize, usize)> = Vec::new();
        for (len, align_sel) in reqs {
            let align = 1usize << (align_sel * 2); // 1, 4, 16
            match ls.alloc(len, align) {
                Ok(addr) => {
                    prop_assert_eq!(addr % align, 0, "alignment violated");
                    prop_assert!(addr + len <= LS_SIZE, "allocation past end");
                    for &(a, l) in &live {
                        let disjoint = addr + len <= a || a + l <= addr;
                        prop_assert!(disjoint, "overlap: [{},+{}) vs [{},+{})", addr, len, a, l);
                    }
                    live.push((addr, len));
                }
                Err(LsError::OutOfLocalStore { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }

    /// Alloc/free in arbitrary interleavings always returns to a fully
    /// free store, and accounting stays consistent throughout.
    #[test]
    fn free_restores_everything(
        ops in proptest::collection::vec((1usize..8192, any::<bool>()), 1..80)
    ) {
        let ls = LocalStore::new();
        let mut live: Vec<usize> = Vec::new();
        for (len, do_free) in ops {
            if do_free && !live.is_empty() {
                let addr = live.swap_remove(len % live.len());
                prop_assert!(ls.free(addr).is_ok());
            } else if let Ok(addr) = ls.alloc(len, 16) {
                live.push(addr);
            }
            prop_assert_eq!(ls.used_bytes() + ls.free_bytes(), LS_SIZE);
        }
        for addr in live.drain(..) {
            ls.free(addr).unwrap();
        }
        prop_assert_eq!(ls.free_bytes(), LS_SIZE);
        // Coalescing must leave a single maximal region: the next alloc of
        // the whole store succeeds.
        prop_assert!(ls.alloc(LS_SIZE, 1).is_ok());
    }

    /// Data survives alloc/write/read across unrelated churn.
    #[test]
    fn data_integrity_under_churn(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..256), 1..16)
    ) {
        let ls = LocalStore::new();
        let mut stored = Vec::new();
        for p in &payloads {
            let addr = ls.alloc(p.len(), 16).unwrap();
            ls.write(addr, p).unwrap();
            stored.push((addr, p.clone()));
        }
        for (addr, expect) in stored {
            prop_assert_eq!(ls.read(addr, expect.len()).unwrap(), expect);
            ls.free(addr).unwrap();
        }
    }

    /// DMA validation accepts exactly the architected sizes/alignments.
    #[test]
    fn dma_validation_rules(ls_addr in 0usize..LS_SIZE, ea in 0u64..1_000_000, len in 0usize..40_000) {
        let ok = validate_dma(ls_addr, Ea(ea), len).is_ok();
        let size_ok = matches!(len, 1 | 2 | 4 | 8)
            || (len > 0 && len % 16 == 0 && len <= 16 * 1024);
        let align = if len >= 16 { 16 } else { len.max(1) as u64 };
        let aligned = (ls_addr as u64).is_multiple_of(align) && ea % align == 0;
        let congruent = len >= 16 || (ls_addr as u64 & 0xF) == (ea & 0xF);
        prop_assert_eq!(ok, size_ok && aligned && congruent,
            "ls={:#x} ea={:#x} len={}", ls_addr, ea, len);
    }
}
