//! Virtual-time heartbeat/watchdog primitive for Co-Pilot failover.
//!
//! A primary service process calls [`Heartbeat::beat`] every
//! [`HEARTBEAT_PERIOD`] of virtual time; a watchdog process polls
//! [`Heartbeat::expired`] and, once [`WATCHDOG_TIMEOUT`] passes with no
//! beat, declares the primary dead and triggers failover. Both sides run as
//! ordinary DES processes, so the detection timeline is deterministic and
//! replays exactly: a primary killed at virtual time `t` is *always*
//! detected at `t + WATCHDOG_TIMEOUT` (to within one poll period).
//!
//! The primitive itself is transport-agnostic — it is a shared last-beat
//! cell, not a message protocol — because on a real hybrid cluster the
//! heartbeat would ride the node's local bus (the standby watches its own
//! node's primary), not the wire.

use cp_des::{SimDuration, SimTime};
use cp_trace::Recorder;
use parking_lot::Mutex;
use std::sync::Arc;

/// How often a healthy primary beats.
pub const HEARTBEAT_PERIOD: SimDuration = SimDuration(200_000); // 200 µs

/// Silence threshold after which the watchdog declares the primary dead.
/// Five missed beats: long enough that a scripted [`CopilotStall`] shorter
/// than 1 ms never triggers a spurious failover, short enough that recovery
/// stays in the µs–ms regime the paper's experiments run at.
///
/// [`CopilotStall`]: crate::faults::CopilotStall
pub const WATCHDOG_TIMEOUT: SimDuration = SimDuration(1_000_000); // 1 ms

struct HbInner {
    last: SimTime,
    stopped: bool,
    recorder: Recorder,
}

/// A shared last-beat cell between one primary and its watchdog.
pub struct Heartbeat {
    inner: Arc<Mutex<HbInner>>,
}

impl Clone for Heartbeat {
    fn clone(&self) -> Self {
        Heartbeat {
            inner: self.inner.clone(),
        }
    }
}

impl Default for Heartbeat {
    fn default() -> Self {
        Self::new()
    }
}

impl Heartbeat {
    /// A fresh cell, considered beaten at t = 0 (a primary gets a full
    /// [`WATCHDOG_TIMEOUT`] of grace before its first beat is due).
    pub fn new() -> Heartbeat {
        Heartbeat {
            inner: Arc::new(Mutex::new(HbInner {
                last: SimTime::ZERO,
                stopped: false,
                recorder: Recorder::disabled(),
            })),
        }
    }

    /// Attach an observability [`Recorder`]; every subsequent beat is
    /// counted in the run's heartbeat metric. Shared by all clones of this
    /// cell.
    pub fn set_recorder(&self, recorder: Recorder) {
        self.inner.lock().recorder = recorder;
    }

    /// Record a beat at `now`.
    pub fn beat(&self, now: SimTime) {
        let mut hb = self.inner.lock();
        hb.recorder.record_heartbeat();
        if now > hb.last {
            hb.last = now;
        }
    }

    /// The instant of the most recent beat.
    pub fn last_beat(&self) -> SimTime {
        self.inner.lock().last
    }

    /// True once the silence since the last beat exceeds `timeout` at `now`.
    pub fn expired(&self, now: SimTime, timeout: SimDuration) -> bool {
        now.since(self.inner.lock().last) > timeout
    }

    /// Retire the pair cleanly (normal shutdown): the watchdog must treat a
    /// stopped cell as "no failover needed" and exit, and further beats are
    /// pointless. Idempotent.
    pub fn stop(&self) {
        self.inner.lock().stopped = true;
    }

    /// True once [`Heartbeat::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.inner.lock().stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_only_after_timeout_of_silence() {
        let hb = Heartbeat::new();
        let timeout = SimDuration::from_micros(100);
        hb.beat(SimTime(5_000));
        assert!(!hb.expired(SimTime(5_000), timeout));
        assert!(!hb.expired(SimTime(105_000), timeout), "exactly at timeout");
        assert!(hb.expired(SimTime(105_001), timeout));
        // A fresh beat resets the clock.
        hb.beat(SimTime(200_000));
        assert!(!hb.expired(SimTime(250_000), timeout));
        assert_eq!(hb.last_beat(), SimTime(200_000));
    }

    #[test]
    fn beats_never_move_backwards() {
        let hb = Heartbeat::new();
        hb.beat(SimTime(10_000));
        hb.beat(SimTime(4_000));
        assert_eq!(hb.last_beat(), SimTime(10_000));
    }

    #[test]
    fn stop_is_sticky_and_shared() {
        let hb = Heartbeat::new();
        let peer = hb.clone();
        assert!(!peer.is_stopped());
        hb.stop();
        assert!(peer.is_stopped());
        hb.stop();
        assert!(hb.is_stopped());
    }

    #[test]
    fn stall_shorter_than_watchdog_timeout_cannot_trip_it() {
        // The contract DESIGN.md documents: a Co-Pilot stall below 1 ms must
        // never look like a death to the watchdog.
        let hb = Heartbeat::new();
        hb.beat(SimTime(0));
        let stall_end = SimTime(WATCHDOG_TIMEOUT.as_nanos() - 1);
        assert!(!hb.expired(stall_end, WATCHDOG_TIMEOUT));
    }

    #[test]
    fn beats_are_counted_when_a_recorder_is_attached() {
        let hb = Heartbeat::new();
        hb.beat(SimTime(1)); // before attachment: not counted
        let rec = Recorder::enabled();
        hb.set_recorder(rec.clone());
        hb.clone().beat(SimTime(2));
        hb.beat(SimTime(3));
        assert_eq!(rec.snapshot().net.heartbeats, 2);
    }
}
