#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-simnet — cluster topology and interconnect model
//!
//! Assembles simulated Cell and commodity (Xeon-class) nodes into the hybrid
//! cluster of the paper's evaluation (8 dual-PowerXCell blades + 4 Xeon
//! nodes on gigabit Ethernet) and models the transport cost of moving bytes
//! between and within nodes. The MPI layer (`cp-mpisim`) asks this crate
//! "what does an `n`-byte message from node A to node B cost on the wire?"
//! and adds its own per-rank software costs on top.

mod cluster;
pub mod faults;
pub mod heartbeat;
mod netcosts;
mod window;

pub use cluster::{Cluster, ClusterSpec, NodeHw, NodeId, NodeKind};
pub use faults::{CopilotKill, FaultPlan, LinkVerdict, RetryPolicy};
pub use heartbeat::{Heartbeat, HEARTBEAT_PERIOD, WATCHDOG_TIMEOUT};
pub use netcosts::NetCosts;
pub use window::{LandedPut, PutStatus, WindowCounters, WindowDesc, WindowError, WindowFabric};
