//! Deterministic fault-injection plans for the simulated cluster.
//!
//! A [`FaultPlan`] is a declarative script of failures — link drops, delays
//! and duplications, MPI rank deaths, SPE crashes, Co-Pilot stalls — each
//! pinned to virtual time. Because the DES kernel serializes execution in
//! strict `(time, sequence)` order, replaying the same plan against the same
//! application yields the *same* fault at the *same* point of the same run,
//! every time: fault experiments are reproducible bit-for-bit, which is what
//! makes recovery logic testable at all.
//!
//! The plan itself is passive. Each layer consults it at its own injection
//! points:
//!
//! * `cp-mpisim` asks [`FaultPlan::egress`] before putting a message on the
//!   wire, and reads [`FaultPlan::rank_deaths`] to schedule rank reapers;
//! * `cellpilot`'s Co-Pilot service checks [`FaultPlan::stall_of`] and its
//!   SPE runtime checks [`FaultPlan::spe_crash_of`].
//!
//! Senders recover from injected loss with a [`RetryPolicy`] — bounded
//! retransmission with exponential backoff, all in virtual time.

use crate::cluster::NodeId;
use cp_des::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::fmt;

/// What a matching link fault does to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// The message never arrives; the sender's loss detection kicks in.
    Drop,
    /// The message arrives late by the given extra latency.
    Delay(SimDuration),
    /// The message is delivered twice (models a retransmit racing the
    /// original; CellPilot channels are at-least-once under this fault).
    Duplicate,
}

/// One scripted fault on a directed node-to-node link.
#[derive(Debug, Clone)]
struct LinkFault {
    from: NodeId,
    to: NodeId,
    /// Half-open virtual-time window `[start, end)` in which the fault arms.
    window: (SimTime, SimTime),
    action: LinkAction,
    /// How many matching messages the fault may hit; `None` = every one
    /// inside the window.
    budget: Option<u32>,
}

/// The verdict [`FaultPlan::egress`] returns for one message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// No fault armed: deliver normally.
    Deliver,
    /// The message is lost in transit.
    Drop,
    /// Deliver, but add this much latency on top of the transport cost.
    Delay(SimDuration),
    /// Deliver two copies.
    Duplicate,
}

/// A scripted MPI rank death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDeath {
    /// The rank that dies.
    pub rank: usize,
    /// When it dies (virtual time).
    pub at: SimTime,
}

/// A scripted crash of an SPE-resident process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeCrash {
    /// The CellPilot process id of the SPE process.
    pub process: usize,
    /// The crash fires at the first SPE channel operation at or after this
    /// virtual time.
    pub at: SimTime,
}

/// A scripted stall of a node's Co-Pilot relay service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopilotStall {
    /// The Cell node whose Co-Pilot stalls.
    pub node: NodeId,
    /// The stall begins at the first service iteration at or after this time.
    pub at: SimTime,
    /// How long the service is unresponsive.
    pub duration: SimDuration,
}

/// A scripted kill of a node's primary Co-Pilot process.
///
/// Unlike a [`CopilotStall`] the primary never comes back: its heartbeats
/// stop, the node's watchdog fires after
/// [`WATCHDOG_TIMEOUT`](crate::heartbeat::WATCHDOG_TIMEOUT) of silence,
/// and a standby Co-Pilot adopts the node's proxy tables and in-flight
/// queues (see the `cellpilot` crate's failover path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopilotKill {
    /// The Cell node whose primary Co-Pilot dies.
    pub node: NodeId,
    /// The death fires at the first service iteration at or after this time.
    pub at: SimTime,
}

/// Bounded retransmission with exponential backoff, in virtual time.
///
/// When a sender detects an injected loss it waits [`RetryPolicy::backoff`]
/// for the current attempt, then retransmits, up to
/// [`RetryPolicy::max_retries`] times. The arithmetic is pure and fully
/// deterministic, so recovery timelines replay exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions attempted after the initial send before giving up.
    pub max_retries: u32,
    /// Backoff before the first retransmission.
    pub base_backoff: SimDuration,
    /// Ceiling the doubling backoff saturates at.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    /// Four retries starting at 50 µs, doubling to a 2 ms ceiling — small
    /// enough not to distort the paper's µs-scale latency experiments, large
    /// enough to ride out every finite fault window in the test plans.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: SimDuration::from_micros(50),
            backoff_cap: SimDuration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retransmission number `attempt` (0-based): doubles
    /// each attempt from [`base_backoff`](RetryPolicy::base_backoff),
    /// saturating at [`backoff_cap`](RetryPolicy::backoff_cap).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let ns = self.base_backoff.as_nanos().saturating_mul(factor);
        SimDuration::from_nanos(ns.min(self.backoff_cap.as_nanos()))
    }

    /// Total virtual time spent backing off across `attempts` retries.
    pub fn total_backoff(&self, attempts: u32) -> SimDuration {
        (0..attempts).fold(SimDuration::ZERO, |acc, a| acc + self.backoff(a))
    }
}

/// A deterministic, declarative script of faults to inject into one run.
///
/// Build one with the chainable methods, hand it to the runtime options
/// (`MpiCosts`-style plumbing in each layer), and the simulated cluster
/// misbehaves on schedule:
///
/// ```
/// use cp_simnet::{FaultPlan, NodeId};
/// use cp_des::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .drop_link(
///         NodeId(0),
///         NodeId(1),
///         SimTime(0),
///         SimTime(1_000_000),
///         2, // first two sends in the window are lost
///     )
///     .kill_rank(3, SimTime(500_000));
/// assert!(!plan.is_empty());
/// ```
pub struct FaultPlan {
    links: Vec<LinkFault>,
    /// Messages already consumed per link fault (parallel to `links`).
    spent: Mutex<Vec<u32>>,
    deaths: Vec<RankDeath>,
    crashes: Vec<SpeCrash>,
    /// Crash entries already fired (parallel to `crashes`): a supervised
    /// restart must not re-trip the same scripted crash, so
    /// [`FaultPlan::take_spe_crash`] consumes entries one at a time.
    crash_fired: Mutex<Vec<bool>>,
    stalls: Vec<CopilotStall>,
    kills: Vec<CopilotKill>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("links", &self.links)
            .field("deaths", &self.deaths)
            .field("crashes", &self.crashes)
            .field("stalls", &self.stalls)
            .field("kills", &self.kills)
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan: every query answers "no fault".
    pub fn new() -> FaultPlan {
        FaultPlan {
            links: Vec::new(),
            spent: Mutex::new(Vec::new()),
            deaths: Vec::new(),
            crashes: Vec::new(),
            crash_fired: Mutex::new(Vec::new()),
            stalls: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// True if the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.deaths.is_empty()
            && self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.kills.is_empty()
    }

    fn push_link(mut self, fault: LinkFault) -> Self {
        self.links.push(fault);
        self.spent.lock().push(0);
        self
    }

    /// Drop the first `count` messages sent from node `from` to node `to`
    /// inside the half-open window `[start, end)`.
    pub fn drop_link(
        self,
        from: NodeId,
        to: NodeId,
        start: SimTime,
        end: SimTime,
        count: u32,
    ) -> Self {
        self.push_link(LinkFault {
            from,
            to,
            window: (start, end),
            action: LinkAction::Drop,
            budget: Some(count),
        })
    }

    /// Add `extra` latency to every message from `from` to `to` inside
    /// `[start, end)`.
    pub fn delay_link(
        self,
        from: NodeId,
        to: NodeId,
        start: SimTime,
        end: SimTime,
        extra: SimDuration,
    ) -> Self {
        self.push_link(LinkFault {
            from,
            to,
            window: (start, end),
            action: LinkAction::Delay(extra),
            budget: None,
        })
    }

    /// Deliver the first `count` messages from `from` to `to` inside
    /// `[start, end)` twice.
    pub fn duplicate_link(
        self,
        from: NodeId,
        to: NodeId,
        start: SimTime,
        end: SimTime,
        count: u32,
    ) -> Self {
        self.push_link(LinkFault {
            from,
            to,
            window: (start, end),
            action: LinkAction::Duplicate,
            budget: Some(count),
        })
    }

    /// Kill MPI rank `rank` at virtual time `at`: its mailbox stops
    /// accepting messages and peers that wait on it observe a lost peer.
    pub fn kill_rank(mut self, rank: usize, at: SimTime) -> Self {
        self.deaths.push(RankDeath { rank, at });
        self
    }

    /// Crash the SPE process with CellPilot process id `process` at its
    /// first channel operation at or after `at`.
    ///
    /// Each `crash_spe` entry fires once: under supervision the restarted
    /// process runs on unless a *further* entry for the same process is
    /// scheduled, so stacking `max_restarts + 1` entries exhausts a
    /// supervision budget deterministically.
    pub fn crash_spe(mut self, process: usize, at: SimTime) -> Self {
        self.crashes.push(SpeCrash { process, at });
        self.crash_fired.lock().push(false);
        self
    }

    /// Kill node `node`'s primary Co-Pilot at its first service iteration
    /// at or after `at`. Without a standby this fails the node's channels;
    /// with one (the `cellpilot` runtime provisions standbys whenever the
    /// plan schedules a kill) the watchdog promotes it after
    /// [`WATCHDOG_TIMEOUT`](crate::heartbeat::WATCHDOG_TIMEOUT) of missed
    /// heartbeats.
    pub fn kill_copilot(mut self, node: NodeId, at: SimTime) -> Self {
        self.kills.push(CopilotKill { node, at });
        self
    }

    /// Stall node `node`'s Co-Pilot service for `duration`, starting at its
    /// first service iteration at or after `at`.
    pub fn stall_copilot(mut self, node: NodeId, at: SimTime, duration: SimDuration) -> Self {
        self.stalls.push(CopilotStall { node, at, duration });
        self
    }

    /// Consult the plan for one message leaving node `from` for node `to`
    /// at virtual time `now`. Consumes one unit of the first matching
    /// fault's budget; later sends see later verdicts. Called under the DES
    /// kernel's serialized execution, so the consumption order — and hence
    /// the whole fault timeline — is deterministic.
    pub fn egress(&self, now: SimTime, from: NodeId, to: NodeId) -> LinkVerdict {
        let mut spent = self.spent.lock();
        for (i, fault) in self.links.iter().enumerate() {
            if fault.from != from || fault.to != to {
                continue;
            }
            if now < fault.window.0 || now >= fault.window.1 {
                continue;
            }
            if let Some(budget) = fault.budget {
                if spent[i] >= budget {
                    continue;
                }
                spent[i] += 1;
            }
            return match fault.action {
                LinkAction::Drop => LinkVerdict::Drop,
                LinkAction::Delay(d) => LinkVerdict::Delay(d),
                LinkAction::Duplicate => LinkVerdict::Duplicate,
            };
        }
        LinkVerdict::Deliver
    }

    /// All scripted rank deaths, in declaration order.
    pub fn rank_deaths(&self) -> &[RankDeath] {
        &self.deaths
    }

    /// When rank `rank` is scripted to die, if at all.
    pub fn death_of(&self, rank: usize) -> Option<SimTime> {
        self.deaths.iter().find(|d| d.rank == rank).map(|d| d.at)
    }

    /// All scripted SPE crashes, in declaration order.
    pub fn spe_crashes(&self) -> &[SpeCrash] {
        &self.crashes
    }

    /// When process `process` is scripted to crash, if at all (the earliest
    /// entry; does not consume — pure query for "is this process doomed").
    pub fn spe_crash_of(&self, process: usize) -> Option<SimTime> {
        self.crashes
            .iter()
            .find(|c| c.process == process)
            .map(|c| c.at)
    }

    /// Fire-once crash checkpoint: the earliest unfired crash entry for
    /// `process` whose time has come at `now` is marked fired and returned.
    /// A supervised restart of the process therefore survives until its
    /// *next* scheduled crash entry, if any.
    pub fn take_spe_crash(&self, process: usize, now: SimTime) -> Option<SimTime> {
        let mut fired = self.crash_fired.lock();
        self.crashes
            .iter()
            .enumerate()
            .filter(|(i, c)| c.process == process && now >= c.at && !fired[*i])
            .min_by_key(|(_, c)| c.at)
            .map(|(i, c)| {
                fired[i] = true;
                c.at
            })
    }

    /// All scripted Co-Pilot stalls, in declaration order.
    pub fn copilot_stalls(&self) -> &[CopilotStall] {
        &self.stalls
    }

    /// The first scripted stall for node `node`'s Co-Pilot, if any.
    pub fn stall_of(&self, node: NodeId) -> Option<CopilotStall> {
        self.stalls.iter().find(|s| s.node == node).copied()
    }

    /// All scripted Co-Pilot kills, in declaration order.
    pub fn copilot_kills(&self) -> &[CopilotKill] {
        &self.kills
    }

    /// When node `node`'s primary Co-Pilot is scripted to die, if at all.
    pub fn copilot_kill_of(&self, node: NodeId) -> Option<SimTime> {
        self.kills.iter().find(|k| k.node == node).map(|k| k.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: SimDuration::from_micros(50),
            backoff_cap: SimDuration::from_micros(300),
        };
        assert_eq!(p.backoff(0), SimDuration::from_micros(50));
        assert_eq!(p.backoff(1), SimDuration::from_micros(100));
        assert_eq!(p.backoff(2), SimDuration::from_micros(200));
        assert_eq!(p.backoff(3), SimDuration::from_micros(300), "capped");
        assert_eq!(p.backoff(9), SimDuration::from_micros(300), "still capped");
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(p.backoff(200), SimDuration::from_micros(300));
    }

    #[test]
    fn total_backoff_sums_the_series() {
        let p = RetryPolicy {
            max_retries: 4,
            base_backoff: SimDuration::from_micros(10),
            backoff_cap: SimDuration::from_millis(1),
        };
        // 10 + 20 + 40 + 80
        assert_eq!(p.total_backoff(4), SimDuration::from_micros(150));
        assert_eq!(p.total_backoff(0), SimDuration::ZERO);
    }

    #[test]
    fn drop_budget_is_consumed_in_order() {
        let plan = FaultPlan::new().drop_link(NodeId(0), NodeId(1), SimTime(0), SimTime(1_000), 2);
        let t = SimTime(500);
        assert_eq!(plan.egress(t, NodeId(0), NodeId(1)), LinkVerdict::Drop);
        assert_eq!(plan.egress(t, NodeId(0), NodeId(1)), LinkVerdict::Drop);
        assert_eq!(plan.egress(t, NodeId(0), NodeId(1)), LinkVerdict::Deliver);
    }

    #[test]
    fn window_is_half_open() {
        let plan = FaultPlan::new().drop_link(NodeId(0), NodeId(1), SimTime(100), SimTime(200), 10);
        assert_eq!(
            plan.egress(SimTime(99), NodeId(0), NodeId(1)),
            LinkVerdict::Deliver
        );
        assert_eq!(
            plan.egress(SimTime(100), NodeId(0), NodeId(1)),
            LinkVerdict::Drop
        );
        assert_eq!(
            plan.egress(SimTime(199), NodeId(0), NodeId(1)),
            LinkVerdict::Drop
        );
        assert_eq!(
            plan.egress(SimTime(200), NodeId(0), NodeId(1)),
            LinkVerdict::Deliver
        );
    }

    #[test]
    fn link_faults_are_directional() {
        let plan = FaultPlan::new().drop_link(NodeId(0), NodeId(1), SimTime(0), SimTime(1_000), 10);
        assert_eq!(
            plan.egress(SimTime(10), NodeId(1), NodeId(0)),
            LinkVerdict::Deliver,
            "reverse direction unaffected"
        );
    }

    #[test]
    fn delay_and_duplicate_verdicts() {
        let plan = FaultPlan::new()
            .delay_link(
                NodeId(0),
                NodeId(1),
                SimTime(0),
                SimTime(100),
                SimDuration::from_micros(7),
            )
            .duplicate_link(NodeId(2), NodeId(3), SimTime(0), SimTime(100), 1);
        assert_eq!(
            plan.egress(SimTime(10), NodeId(0), NodeId(1)),
            LinkVerdict::Delay(SimDuration::from_micros(7))
        );
        assert_eq!(
            plan.egress(SimTime(10), NodeId(2), NodeId(3)),
            LinkVerdict::Duplicate
        );
        assert_eq!(
            plan.egress(SimTime(10), NodeId(2), NodeId(3)),
            LinkVerdict::Deliver,
            "duplicate budget exhausted"
        );
    }

    #[test]
    fn scheduled_deaths_crashes_and_stalls_are_queryable() {
        let plan = FaultPlan::new()
            .kill_rank(3, SimTime(500))
            .crash_spe(7, SimTime(900))
            .stall_copilot(NodeId(2), SimTime(100), SimDuration::from_micros(40));
        assert_eq!(plan.death_of(3), Some(SimTime(500)));
        assert_eq!(plan.death_of(4), None);
        assert_eq!(plan.spe_crash_of(7), Some(SimTime(900)));
        assert_eq!(plan.spe_crash_of(8), None);
        let stall = plan.stall_of(NodeId(2)).unwrap();
        assert_eq!(stall.duration, SimDuration::from_micros(40));
        assert_eq!(plan.stall_of(NodeId(0)), None);
        assert_eq!(plan.rank_deaths().len(), 1);
        assert_eq!(plan.spe_crashes().len(), 1);
        assert_eq!(plan.copilot_stalls().len(), 1);
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(
            plan.egress(SimTime(0), NodeId(0), NodeId(1)),
            LinkVerdict::Deliver
        );
    }

    #[test]
    fn copilot_kills_are_queryable_and_count_as_nonempty() {
        let plan = FaultPlan::new().kill_copilot(NodeId(1), SimTime(2_000));
        assert!(!plan.is_empty());
        assert_eq!(plan.copilot_kill_of(NodeId(1)), Some(SimTime(2_000)));
        assert_eq!(plan.copilot_kill_of(NodeId(0)), None);
        assert_eq!(plan.copilot_kills().len(), 1);
    }

    #[test]
    fn spe_crash_entries_fire_once_each_in_schedule_order() {
        let plan = FaultPlan::new()
            .crash_spe(3, SimTime(100))
            .crash_spe(3, SimTime(500))
            .crash_spe(9, SimTime(200));
        // Not due yet.
        assert_eq!(plan.take_spe_crash(3, SimTime(50)), None);
        // Earliest due entry fires, once.
        assert_eq!(plan.take_spe_crash(3, SimTime(150)), Some(SimTime(100)));
        assert_eq!(plan.take_spe_crash(3, SimTime(150)), None);
        // The second entry fires when its time comes, then the well is dry.
        assert_eq!(plan.take_spe_crash(3, SimTime(600)), Some(SimTime(500)));
        assert_eq!(plan.take_spe_crash(3, SimTime(9_999)), None);
        // Other processes are unaffected; the pure query never consumes.
        assert_eq!(plan.spe_crash_of(9), Some(SimTime(200)));
        assert_eq!(plan.take_spe_crash(9, SimTime(300)), Some(SimTime(200)));
    }
}
