//! Cluster assembly: which nodes exist, what kind each is, and the shared
//! hardware handles the higher layers use.

use crate::netcosts::NetCosts;
use cp_cellsim::{CellCosts, CellNode, MainMemory};
use cp_des::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Identifies one node of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The processor kind of a node — determines MPI software costs and
/// whether the node hosts SPEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A Cell blade with the given total SPE count (a dual-PowerXCell QS22
    /// blade exposes 16).
    Cell {
        /// SPEs exposed by the blade.
        spes: usize,
    },
    /// A commodity node (the paper's 4- and 8-core Xeons).
    Commodity {
        /// Core count (informational).
        cores: usize,
    },
}

impl NodeKind {
    /// True for Cell nodes.
    pub fn is_cell(&self) -> bool {
        matches!(self, NodeKind::Cell { .. })
    }
}

/// Hardware of one node.
pub struct NodeHw {
    /// This node's id.
    pub id: NodeId,
    /// Processor kind.
    pub kind: NodeKind,
    /// The Cell hardware, for Cell nodes.
    pub cell: Option<Arc<CellNode>>,
    /// Main memory (shared with `cell.mem` on Cell nodes).
    pub mem: Arc<MainMemory>,
}

/// Declarative description of a cluster to build.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Node kinds in id order.
    pub nodes: Vec<NodeKind>,
    /// Interconnect cost model.
    pub net: NetCosts,
    /// Intra-Cell cost model applied to every Cell node.
    pub cell_costs: CellCosts,
    /// Main memory bytes per node.
    pub main_bytes: usize,
}

impl ClusterSpec {
    /// The paper's evaluation platform: 8 dual-PowerXCell blades (16 SPEs
    /// each) and 4 Xeon nodes, gigabit Ethernet.
    pub fn paper() -> ClusterSpec {
        let mut nodes = vec![NodeKind::Cell { spes: 16 }; 8];
        nodes.extend([NodeKind::Commodity { cores: 4 }; 2]);
        nodes.extend([NodeKind::Commodity { cores: 8 }; 2]);
        ClusterSpec {
            nodes,
            net: NetCosts::default(),
            cell_costs: CellCosts::default(),
            main_bytes: 8 << 20,
        }
    }

    /// A small two-Cell + one-Xeon cluster, convenient for tests and
    /// examples (matches the paper's Figure 3/4 sample, which runs on two
    /// Cell nodes).
    pub fn two_cells_one_xeon() -> ClusterSpec {
        ClusterSpec {
            nodes: vec![
                NodeKind::Cell { spes: 8 },
                NodeKind::Cell { spes: 8 },
                NodeKind::Commodity { cores: 4 },
            ],
            net: NetCosts::default(),
            cell_costs: CellCosts::default(),
            main_bytes: 8 << 20,
        }
    }

    /// Build the cluster hardware.
    pub fn build(&self) -> Arc<Cluster> {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &kind)| match kind {
                NodeKind::Cell { spes } => {
                    let cell = CellNode::new(i, spes, self.main_bytes, self.cell_costs.clone());
                    let mem = cell.mem.clone();
                    NodeHw {
                        id: NodeId(i),
                        kind,
                        cell: Some(cell),
                        mem,
                    }
                }
                NodeKind::Commodity { .. } => NodeHw {
                    id: NodeId(i),
                    kind,
                    cell: None,
                    mem: Arc::new(MainMemory::new(self.main_bytes)),
                },
            })
            .collect();
        let links = (0..self.nodes.len())
            .map(|_| LinkState::default())
            .collect();
        Arc::new(Cluster {
            nodes,
            net: self.net.clone(),
            links,
        })
    }
}

/// Per-node NIC occupancy for the contention model.
#[derive(Default)]
struct LinkState {
    egress_busy_until: Mutex<SimTime>,
    ingress_busy_until: Mutex<SimTime>,
}

/// The built cluster: node hardware plus the interconnect model.
pub struct Cluster {
    /// Node hardware in id order.
    pub nodes: Vec<NodeHw>,
    /// Interconnect cost model.
    pub net: NetCosts,
    links: Vec<LinkState>,
}

impl Cluster {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// The Cell hardware of `id`, panicking if it is not a Cell node.
    pub fn cell(&self, id: NodeId) -> &Arc<CellNode> {
        self.nodes[id.0]
            .cell
            .as_ref()
            .unwrap_or_else(|| panic!("{id} is not a Cell node"))
    }

    /// Wire/shared-memory transport cost between two nodes (contention-free
    /// formula).
    pub fn transport_us(&self, a: NodeId, b: NodeId, bytes: usize) -> f64 {
        self.net.transport_us(a == b, bytes)
    }

    /// Delivery delay of a message sent *now* from `a` to `b`. With
    /// [`NetCosts::contention`] enabled, the serialization portion queues
    /// behind in-flight traffic on the sender's egress and the receiver's
    /// ingress NIC; otherwise this equals [`Cluster::transport_us`].
    pub fn transfer_delay(&self, now: SimTime, a: NodeId, b: NodeId, bytes: usize) -> SimDuration {
        if a == b || !self.net.contention {
            return SimDuration::from_micros_f64(self.transport_us(a, b, bytes));
        }
        let serialize = SimDuration::from_micros_f64(bytes as f64 / self.net.wire_bytes_per_us);
        let mut egress = self.links[a.0].egress_busy_until.lock();
        let mut ingress = self.links[b.0].ingress_busy_until.lock();
        let start = now.max(*egress).max(*ingress);
        let done = start + serialize;
        *egress = done;
        *ingress = done;
        let wire = SimDuration::from_micros_f64(self.net.wire_latency_us);
        (done - now) + wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterSpec::paper().build();
        assert_eq!(c.len(), 12);
        assert_eq!(c.nodes.iter().filter(|n| n.kind.is_cell()).count(), 8);
        assert_eq!(c.cell(NodeId(0)).spe_count(), 16);
        assert!(c.nodes[8].cell.is_none());
    }

    #[test]
    fn cell_mem_is_shared_handle() {
        let c = ClusterSpec::two_cells_one_xeon().build();
        let node = &c.nodes[0];
        assert!(Arc::ptr_eq(&node.mem, &node.cell.as_ref().unwrap().mem));
    }

    #[test]
    fn transport_picks_path_by_node_identity() {
        let c = ClusterSpec::two_cells_one_xeon().build();
        let local = c.transport_us(NodeId(1), NodeId(1), 100);
        let remote = c.transport_us(NodeId(0), NodeId(1), 100);
        assert!(local < remote);
    }

    #[test]
    fn contention_serializes_concurrent_messages() {
        let mut spec = ClusterSpec::two_cells_one_xeon();
        spec.net.contention = true;
        let c = spec.build();
        let now = SimTime::ZERO;
        let bytes = 8000; // 100us of serialization at 80 B/us
        let d1 = c.transfer_delay(now, NodeId(0), NodeId(1), bytes);
        let d2 = c.transfer_delay(now, NodeId(0), NodeId(1), bytes);
        assert!(
            d2.as_micros_f64() >= d1.as_micros_f64() + 99.0,
            "second message must queue: {d1} then {d2}"
        );
        // A different pair is unaffected by 0<->1 traffic.
        let d3 = c.transfer_delay(now, NodeId(2), NodeId(2), bytes);
        assert!(d3.as_micros_f64() < d1.as_micros_f64());
    }

    #[test]
    fn no_contention_messages_overlap() {
        let c = ClusterSpec::two_cells_one_xeon().build();
        let now = SimTime::ZERO;
        let d1 = c.transfer_delay(now, NodeId(0), NodeId(1), 8000);
        let d2 = c.transfer_delay(now, NodeId(0), NodeId(1), 8000);
        assert_eq!(d1, d2, "messages overlap freely by default");
    }

    #[test]
    #[should_panic(expected = "not a Cell node")]
    fn cell_accessor_panics_on_commodity() {
        let c = ClusterSpec::two_cells_one_xeon().build();
        let _ = c.cell(NodeId(2));
    }
}
