//! The one-sided **window fabric**: a cluster-wide table of remotely
//! writable memory windows backed by EA-mapped SPE local stores.
//!
//! A Co-Pilot (or the configuration layer on its behalf) *registers* a
//! region of one of its SPEs' local stores as a window keyed by channel
//! id. A remote writer then *puts* a payload straight at that window —
//! one fabric hop, no intermediate relay buffering — and the reader side
//! *takes* landed payloads in FIFO order. The fabric is the data-plane
//! bookkeeping only: who owns which window, what has landed, and which
//! put sequence numbers were already applied (the exactly-once guard).
//! Transport cost, local-store bytes, mailbox completion and
//! happens-before recording stay with the caller, which is what keeps
//! this model independent of the runtime above it.
//!
//! Ownership is per Cell node: when a standby Co-Pilot adopts a node
//! after a failover, [`WindowFabric::take_over_node`] migrates every
//! window of that node to the adopting rank so in-flight puts keep
//! routing to a live owner.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Why a fabric operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowError {
    /// A window for this channel id already exists.
    Duplicate(u32),
    /// The new window overlaps an existing window (`other`) on the same
    /// SPE local store.
    Overlap {
        /// Channel whose registration was refused.
        chan: u32,
        /// Channel owning the already-registered overlapping window.
        other: u32,
    },
    /// The window would be empty (zero length).
    Empty(u32),
    /// No window is registered for this channel id.
    Unregistered(u32),
    /// The payload does not fit the registered window.
    Overflow {
        /// Target channel.
        chan: u32,
        /// Payload length that was offered.
        len: usize,
        /// Registered window capacity.
        window: u32,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::Duplicate(c) => write!(f, "window for channel {c} already registered"),
            WindowError::Overlap { chan, other } => write!(
                f,
                "window for channel {chan} overlaps the window of channel {other}"
            ),
            WindowError::Empty(c) => write!(f, "window for channel {c} has zero length"),
            WindowError::Unregistered(c) => write!(f, "no window registered for channel {c}"),
            WindowError::Overflow { chan, len, window } => write!(
                f,
                "put of {len} B does not fit the {window} B window of channel {chan}"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// Where a window lives and who services it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDesc {
    /// Channel id the window belongs to.
    pub chan: u32,
    /// Cell node holding the backing local store.
    pub node: usize,
    /// Hardware SPE index on that node.
    pub spe: usize,
    /// First local-store byte of the window.
    pub start: u32,
    /// Window capacity in bytes.
    pub len: u32,
    /// MPI rank of the Co-Pilot currently servicing the window's node.
    pub owner_rank: usize,
}

/// One payload that landed in a window and has not been taken yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LandedPut {
    /// Writer-side sequence number of the put.
    pub seq: u64,
    /// The payload bytes.
    pub bytes: Vec<u8>,
}

/// What [`WindowFabric::put`] did with the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutStatus {
    /// The payload landed and is queued for the reader.
    Landed,
    /// The sequence number was already applied — the put was a replay
    /// (crash-restart or failover retry) and was dropped without
    /// re-delivering.
    Duplicate,
}

/// Progress counters of one window, read by fence/flush primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowCounters {
    /// Puts applied (duplicates excluded).
    pub puts: u64,
    /// Payloads taken by the reader side.
    pub taken: u64,
    /// Landed payloads not yet taken (`puts - taken`).
    pub pending: u64,
}

#[derive(Debug)]
struct WindowState {
    desc: WindowDesc,
    landed: VecDeque<LandedPut>,
    /// Next put sequence number that is *new*; anything below was applied.
    next_seq: u64,
    taken: u64,
}

#[derive(Debug, Default)]
struct FabricState {
    windows: BTreeMap<u32, WindowState>,
}

/// The cluster-wide window table. Clones are shallow handles onto one
/// shared table, mirroring how `Cluster` and the recorder are shared.
#[derive(Debug, Clone, Default)]
pub struct WindowFabric {
    inner: Arc<Mutex<FabricState>>,
}

impl WindowFabric {
    /// An empty fabric.
    pub fn new() -> WindowFabric {
        WindowFabric::default()
    }

    /// Register a window. Refuses zero-length windows, a second window
    /// for the same channel, and any region that overlaps an existing
    /// window on the same SPE local store.
    pub fn register(&self, desc: WindowDesc) -> Result<(), WindowError> {
        if desc.len == 0 {
            return Err(WindowError::Empty(desc.chan));
        }
        let mut st = self.inner.lock();
        if st.windows.contains_key(&desc.chan) {
            return Err(WindowError::Duplicate(desc.chan));
        }
        let end = u64::from(desc.start) + u64::from(desc.len);
        for w in st.windows.values() {
            if w.desc.node == desc.node && w.desc.spe == desc.spe {
                let w_end = u64::from(w.desc.start) + u64::from(w.desc.len);
                if u64::from(desc.start) < w_end && u64::from(w.desc.start) < end {
                    return Err(WindowError::Overlap {
                        chan: desc.chan,
                        other: w.desc.chan,
                    });
                }
            }
        }
        st.windows.insert(
            desc.chan,
            WindowState {
                desc,
                landed: VecDeque::new(),
                next_seq: 0,
                taken: 0,
            },
        );
        Ok(())
    }

    /// The registered window for `chan`, if any.
    pub fn window(&self, chan: u32) -> Option<WindowDesc> {
        self.inner.lock().windows.get(&chan).map(|w| w.desc)
    }

    /// The rank currently servicing `chan`'s window.
    pub fn owner_rank(&self, chan: u32) -> Option<usize> {
        self.window(chan).map(|d| d.owner_rank)
    }

    /// Land `bytes` in the window of `chan`. `seq` is the writer's
    /// monotonically increasing per-channel sequence number; a sequence
    /// number that was already applied is dropped
    /// ([`PutStatus::Duplicate`]) so crash-restart and failover replays
    /// deliver exactly once.
    pub fn put(&self, chan: u32, seq: u64, bytes: Vec<u8>) -> Result<PutStatus, WindowError> {
        let mut st = self.inner.lock();
        let w = st
            .windows
            .get_mut(&chan)
            .ok_or(WindowError::Unregistered(chan))?;
        if bytes.len() as u64 > u64::from(w.desc.len) {
            return Err(WindowError::Overflow {
                chan,
                len: bytes.len(),
                window: w.desc.len,
            });
        }
        if seq < w.next_seq {
            return Ok(PutStatus::Duplicate);
        }
        w.next_seq = seq + 1;
        w.landed.push_back(LandedPut { seq, bytes });
        Ok(PutStatus::Landed)
    }

    /// Take the oldest landed payload, if one is queued.
    pub fn take(&self, chan: u32) -> Result<Option<LandedPut>, WindowError> {
        let mut st = self.inner.lock();
        let w = st
            .windows
            .get_mut(&chan)
            .ok_or(WindowError::Unregistered(chan))?;
        let front = w.landed.pop_front();
        if front.is_some() {
            w.taken += 1;
        }
        Ok(front)
    }

    /// Landed-but-untaken payload count (0 means the window is drained —
    /// the fence condition).
    pub fn pending(&self, chan: u32) -> Result<usize, WindowError> {
        let st = self.inner.lock();
        st.windows
            .get(&chan)
            .map(|w| w.landed.len())
            .ok_or(WindowError::Unregistered(chan))
    }

    /// Progress counters for fence/flush decisions.
    pub fn counters(&self, chan: u32) -> Result<WindowCounters, WindowError> {
        let st = self.inner.lock();
        let w = st
            .windows
            .get(&chan)
            .ok_or(WindowError::Unregistered(chan))?;
        Ok(WindowCounters {
            puts: w.next_seq,
            taken: w.taken,
            pending: w.landed.len() as u64,
        })
    }

    /// Migrate every window on `node` to `new_rank` (Co-Pilot failover:
    /// the standby that adopted the node now services its windows).
    /// Returns how many windows moved.
    pub fn take_over_node(&self, node: usize, new_rank: usize) -> usize {
        let mut st = self.inner.lock();
        let mut moved = 0;
        for w in st.windows.values_mut() {
            if w.desc.node == node && w.desc.owner_rank != new_rank {
                w.desc.owner_rank = new_rank;
                moved += 1;
            }
        }
        moved
    }

    /// Number of registered windows.
    pub fn window_count(&self) -> usize {
        self.inner.lock().windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(chan: u32, node: usize, spe: usize, start: u32, len: u32) -> WindowDesc {
        WindowDesc {
            chan,
            node,
            spe,
            start,
            len,
            owner_rank: 10 + node,
        }
    }

    #[test]
    fn register_and_route() {
        let f = WindowFabric::new();
        f.register(desc(0, 1, 2, 0x1000, 2048)).unwrap();
        assert_eq!(f.window(0).unwrap().spe, 2);
        assert_eq!(f.owner_rank(0), Some(11));
        assert_eq!(f.owner_rank(9), None);
        assert_eq!(f.window_count(), 1);
    }

    #[test]
    fn rejects_duplicate_empty_and_overlap() {
        let f = WindowFabric::new();
        f.register(desc(0, 0, 0, 0x100, 256)).unwrap();
        assert_eq!(
            f.register(desc(0, 1, 1, 0x8000, 64)),
            Err(WindowError::Duplicate(0))
        );
        assert_eq!(
            f.register(desc(1, 0, 0, 0x0, 0)),
            Err(WindowError::Empty(1))
        );
        // Same LS, overlapping tail.
        assert_eq!(
            f.register(desc(2, 0, 0, 0x1ff, 16)),
            Err(WindowError::Overlap { chan: 2, other: 0 })
        );
        // Same region on a *different* SPE is fine.
        f.register(desc(3, 0, 1, 0x100, 256)).unwrap();
        // Adjacent (touching, not overlapping) is fine.
        f.register(desc(4, 0, 0, 0x200, 16)).unwrap();
    }

    #[test]
    fn put_take_fifo_and_overflow() {
        let f = WindowFabric::new();
        f.register(desc(7, 0, 3, 0, 8)).unwrap();
        assert_eq!(f.put(7, 0, vec![1, 2]), Ok(PutStatus::Landed));
        assert_eq!(f.put(7, 1, vec![3]), Ok(PutStatus::Landed));
        assert_eq!(
            f.put(7, 2, vec![0; 9]),
            Err(WindowError::Overflow {
                chan: 7,
                len: 9,
                window: 8
            })
        );
        assert_eq!(f.pending(7), Ok(2));
        assert_eq!(
            f.take(7).unwrap(),
            Some(LandedPut {
                seq: 0,
                bytes: vec![1, 2]
            })
        );
        assert_eq!(
            f.take(7).unwrap(),
            Some(LandedPut {
                seq: 1,
                bytes: vec![3]
            })
        );
        assert_eq!(f.take(7).unwrap(), None);
        assert_eq!(f.take(8), Err(WindowError::Unregistered(8)));
        assert_eq!(f.put(8, 0, vec![]), Err(WindowError::Unregistered(8)));
    }

    #[test]
    fn replayed_seq_is_deduplicated() {
        let f = WindowFabric::new();
        f.register(desc(1, 0, 0, 0, 64)).unwrap();
        assert_eq!(f.put(1, 0, vec![1]), Ok(PutStatus::Landed));
        assert_eq!(f.put(1, 1, vec![2]), Ok(PutStatus::Landed));
        // Crash-restart replays put 1: dropped, nothing re-delivered.
        assert_eq!(f.put(1, 1, vec![2]), Ok(PutStatus::Duplicate));
        assert_eq!(f.put(1, 0, vec![1]), Ok(PutStatus::Duplicate));
        let c = f.counters(1).unwrap();
        assert_eq!((c.puts, c.taken, c.pending), (2, 0, 2));
        assert_eq!(f.take(1).unwrap().unwrap().bytes, vec![1]);
        assert_eq!(f.take(1).unwrap().unwrap().bytes, vec![2]);
        assert_eq!(f.take(1).unwrap(), None);
        let c = f.counters(1).unwrap();
        assert_eq!((c.puts, c.taken, c.pending), (2, 2, 0));
    }

    #[test]
    fn takeover_migrates_node_windows_only() {
        let f = WindowFabric::new();
        f.register(desc(0, 0, 0, 0, 64)).unwrap();
        f.register(desc(1, 0, 1, 0, 64)).unwrap();
        f.register(desc(2, 1, 0, 0, 64)).unwrap();
        f.put(0, 0, vec![9]).unwrap();
        assert_eq!(f.take_over_node(0, 42), 2);
        assert_eq!(f.owner_rank(0), Some(42));
        assert_eq!(f.owner_rank(1), Some(42));
        assert_eq!(f.owner_rank(2), Some(11));
        // Landed data and dedup state survive the migration.
        assert_eq!(f.put(0, 0, vec![9]), Ok(PutStatus::Duplicate));
        assert_eq!(f.take(0).unwrap().unwrap().bytes, vec![9]);
        // Idempotent: nothing left to move.
        assert_eq!(f.take_over_node(0, 42), 0);
    }

    proptest::proptest! {
        /// Registration never admits two overlapping windows on the same
        /// local store: whatever interval set we offer, the accepted set
        /// is pairwise disjoint per (node, spe).
        #[test]
        fn accepted_windows_never_overlap(
            regions in proptest::collection::vec(
                (0usize..2, 0usize..4, 0u32..4096, 1u32..512), 1..40)
        ) {
            let f = WindowFabric::new();
            let mut accepted: Vec<WindowDesc> = Vec::new();
            for (i, (node, spe, start, len)) in regions.into_iter().enumerate() {
                let d = desc(i as u32, node, spe, start, len);
                if f.register(d).is_ok() {
                    accepted.push(d);
                }
            }
            for (i, a) in accepted.iter().enumerate() {
                for b in &accepted[i + 1..] {
                    if a.node == b.node && a.spe == b.spe {
                        let disjoint = u64::from(a.start) + u64::from(a.len)
                            <= u64::from(b.start)
                            || u64::from(b.start) + u64::from(b.len) <= u64::from(a.start);
                        proptest::prop_assert!(
                            disjoint,
                            "accepted overlapping windows {a:?} and {b:?}"
                        );
                    }
                }
            }
            // And everything accepted is still routable.
            for a in &accepted {
                proptest::prop_assert_eq!(f.window(a.chan), Some(*a));
            }
        }
    }
}
