//! Interconnect cost model.
//!
//! Calibration anchor: the paper's Table II type-1 hand-coded baseline —
//! a raw MPI ping-pong between two PPEs over gigabit Ethernet measured
//! 98 µs for 1 byte and 160 µs for 1600 bytes. We decompose that into a
//! wire component (here) and per-rank MPI software costs (in `cp-mpisim`,
//! where they differ by processor kind: the paper notes PPE endpoints were
//! slower than Xeon endpoints).

/// Transport costs of the cluster fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCosts {
    /// One-way latency of a message on the Ethernet wire (switch + NIC +
    /// kernel network stack), microseconds.
    pub wire_latency_us: f64,
    /// Wire payload bandwidth in bytes per microsecond (GigE ≈ 125 B/µs
    /// theoretical; effective value is lower).
    pub wire_bytes_per_us: f64,
    /// One-way latency of the shared-memory transport between two ranks on
    /// the same node, microseconds.
    pub shmem_latency_us: f64,
    /// Shared-memory transport bandwidth, bytes per microsecond.
    pub shmem_bytes_per_us: f64,
    /// Model NIC serialization: concurrent messages through one node's
    /// link queue behind each other instead of overlapping. Off by default
    /// (the paper's ping-pong experiments never contend; turn it on for
    /// fan-in/fan-out studies).
    pub contention: bool,
}

impl Default for NetCosts {
    fn default() -> Self {
        NetCosts {
            wire_latency_us: 60.0,
            wire_bytes_per_us: 80.0,
            shmem_latency_us: 5.0,
            shmem_bytes_per_us: 1250.0,
            contention: false,
        }
    }
}

impl NetCosts {
    /// Transport cost of `bytes` between two nodes (`same_node` selects the
    /// shared-memory path), excluding per-rank software costs.
    pub fn transport_us(&self, same_node: bool, bytes: usize) -> f64 {
        if same_node {
            self.shmem_latency_us + bytes as f64 / self.shmem_bytes_per_us
        } else {
            self.wire_latency_us + bytes as f64 / self.wire_bytes_per_us
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_slower_than_shmem() {
        let c = NetCosts::default();
        assert!(c.transport_us(false, 1) > c.transport_us(true, 1));
        assert!(c.transport_us(false, 1600) > c.transport_us(true, 1600));
    }

    #[test]
    fn bandwidth_term_scales_linearly() {
        let c = NetCosts::default();
        let d = c.transport_us(false, 3200) - c.transport_us(false, 1600);
        assert!((d - 1600.0 / c.wire_bytes_per_us).abs() < 1e-9);
    }
}
