//! The span/event recorder every layer of the stack reports into.

use crate::chrome;
use crate::hb::{HbEvent, HbOp};
use crate::metrics::{MetricsSnapshot, MetricsState, CHANNEL_TYPE_COUNT};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Chrome-trace phase of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`"ph": "X"`): carries a duration.
    Complete,
    /// An instant marker (`"ph": "i"`).
    Instant,
    /// A counter sample (`"ph": "C"`).
    Counter,
}

/// One recorded trace event, keyed on simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual timestamp, nanoseconds.
    pub ts_ns: u64,
    /// Span duration, nanoseconds (0 for instants and counters).
    pub dur_ns: u64,
    /// Lane id (see [`Recorder::lane`]); one lane per rank/SPE/Co-Pilot.
    pub lane: u32,
    /// What kind of event this is.
    pub phase: Phase,
    /// Display name.
    pub name: String,
    /// Category tag (`"channel"`, `"mpi"`, `"net"`, `"des"`, `"incident"`).
    pub category: &'static str,
    /// Counter value; meaningful only for [`Phase::Counter`].
    pub value: f64,
    /// Free-form detail attached to the event, if any.
    pub detail: Option<String>,
}

#[derive(Debug, Default)]
struct State {
    lanes: Vec<String>,
    lane_ids: BTreeMap<String, u32>,
    events: Vec<Event>,
    metrics: MetricsState,
    hb: Vec<HbEvent>,
}

impl State {
    fn lane_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.lane_ids.get(name) {
            return id;
        }
        let id = self.lanes.len() as u32;
        self.lanes.push(name.to_string());
        self.lane_ids.insert(name.to_string(), id);
        id
    }

    fn push(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// Sample the kernel queue-depth counter once per this many dispatches, so
/// long runs cannot balloon the trace with one event per context switch.
const QUEUE_SAMPLE_EVERY: u64 = 64;

/// Handle to one run's recording, shared by every instrumented layer.
///
/// `Recorder::default()` is *disabled*: there is no storage behind it and
/// every recording call returns after a single branch, which is what makes
/// always-on instrumentation affordable. [`Recorder::enabled`] allocates
/// shared storage; clones are shallow, so the caller keeps one clone and
/// reads [`Recorder::snapshot`] / [`Recorder::chrome_trace`] after the run.
///
/// No method consumes virtual time — the recorder observes the schedule,
/// it never perturbs it.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<State>>>,
}

impl Recorder {
    /// A recording handle with live storage.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Mutex::new(State::default()))),
        }
    }

    /// The no-op handle (what `Default` also returns).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this handle records anything. Instrumentation that must
    /// format names or look up state should check this first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a lane (one horizontal track in the trace viewer; by
    /// convention the DES process name: rank name, SPE name, `copilotN`).
    /// Returns 0 when disabled.
    pub fn lane(&self, name: &str) -> u32 {
        let Some(inner) = &self.inner else { return 0 };
        inner.lock().lane_id(name)
    }

    /// Record a complete span on `lane` covering `[ts_ns, ts_ns + dur_ns]`.
    pub fn span(&self, lane: u32, category: &'static str, name: &str, ts_ns: u64, dur_ns: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().push(Event {
            ts_ns,
            dur_ns,
            lane,
            phase: Phase::Complete,
            name: name.to_string(),
            category,
            value: 0.0,
            detail: None,
        });
    }

    /// Record an instant marker on `lane`.
    pub fn instant(
        &self,
        lane: u32,
        category: &'static str,
        name: &str,
        ts_ns: u64,
        detail: Option<String>,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().push(Event {
            ts_ns,
            dur_ns: 0,
            lane,
            phase: Phase::Instant,
            name: name.to_string(),
            category,
            value: 0.0,
            detail,
        });
    }

    /// Record a counter sample on `lane`.
    pub fn counter(&self, lane: u32, category: &'static str, name: &str, ts_ns: u64, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().push(Event {
            ts_ns,
            dur_ns: 0,
            lane,
            phase: Phase::Counter,
            name: name.to_string(),
            category,
            value,
            detail: None,
        });
    }

    /// DES kernel: one scheduler dispatch with the pending-queue depth at
    /// dispatch time. Counts always; samples a `queue depth` counter event
    /// once every 64 dispatches.
    pub fn record_dispatch(&self, ts_ns: u64, queue_depth: usize) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        st.metrics.des.dispatches += 1;
        st.metrics.des.max_queue_depth = st.metrics.des.max_queue_depth.max(queue_depth as u64);
        if st.metrics.des.dispatches % QUEUE_SAMPLE_EVERY == 1 {
            let lane = st.lane_id("kernel");
            st.push(Event {
                ts_ns,
                dur_ns: 0,
                lane,
                phase: Phase::Counter,
                name: "queue depth".to_string(),
                category: "des",
                value: queue_depth as f64,
                detail: None,
            });
        }
    }

    /// A degradation incident (category is the `IncidentCategory`
    /// kebab-case name): counted, and marked as an instant on the
    /// reporting process's lane so failovers are visible in the trace.
    pub fn record_incident(&self, ts_ns: u64, process: &str, category: &str, detail: &str) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        *st.metrics
            .incidents
            .entry(category.to_string())
            .or_insert(0) += 1;
        let lane = st.lane_id(process);
        st.push(Event {
            ts_ns,
            dur_ns: 0,
            lane,
            phase: Phase::Instant,
            name: format!("incident: {category}"),
            category: "incident",
            value: 0.0,
            detail: Some(detail.to_string()),
        });
    }

    /// MPI layer: a logical point-to-point send of `payload_bytes`.
    pub fn record_send(&self, payload_bytes: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        st.metrics.mpi.sends += 1;
        st.metrics.mpi.payload_bytes += payload_bytes;
    }

    /// MPI layer: a completed point-to-point receive of `payload_bytes`.
    pub fn record_recv(&self, payload_bytes: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        st.metrics.mpi.recvs += 1;
        st.metrics.mpi.payload_bytes += payload_bytes;
    }

    /// MPI layer: `wire_bytes` put on the wire for one transmission
    /// attempt (retransmissions call this again).
    pub fn record_wire(&self, wire_bytes: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.mpi.wire_bytes += wire_bytes;
    }

    /// MPI layer: a transmission attempt will be repeated after a drop.
    pub fn record_retransmit(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.mpi.retransmits += 1;
    }

    /// MPI layer: one completed collective operation (`"bcast"`, ...).
    pub fn record_collective(&self, op: &str) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        *st.metrics
            .mpi
            .collectives
            .entry(op.to_string())
            .or_insert(0) += 1;
    }

    /// Interconnect: the fault plan dropped a frame on a link.
    pub fn record_link_drop(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.net.link_drops += 1;
    }

    /// Interconnect: the fault plan delayed a frame on a link.
    pub fn record_link_delay(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.net.link_delays += 1;
    }

    /// Interconnect: the fault plan duplicated a frame on a link.
    pub fn record_link_duplicate(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.net.link_duplicates += 1;
    }

    /// Interconnect: one Co-Pilot heartbeat beat.
    pub fn record_heartbeat(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.net.heartbeats += 1;
    }

    /// CellPilot runtime: a completed channel operation on a channel of
    /// Table-I type `chan_type` (1..=5); `latency_ns` is the virtual time
    /// the endpoint spent inside the operation.
    pub fn record_channel_op(&self, chan_type: u8, write: bool, bytes: u64, latency_ns: u64) {
        let Some(inner) = &self.inner else { return };
        assert!(
            (1..=CHANNEL_TYPE_COUNT as u8).contains(&chan_type),
            "channel type {chan_type} out of range"
        );
        let mut st = inner.lock();
        let c = &mut st.metrics.channel[(chan_type - 1) as usize];
        if write {
            c.writes += 1;
        } else {
            c.reads += 1;
        }
        c.bytes += bytes;
        c.latencies_ns.push(latency_ns);
    }

    /// CellPilot runtime: a Co-Pilot relayed a message of type
    /// `chan_type` one hop (writer-side MPI forward or reader-side
    /// delivery to the destination SPE).
    pub fn record_proxy_hop(&self, chan_type: u8) {
        let Some(inner) = &self.inner else { return };
        assert!(
            (1..=CHANNEL_TYPE_COUNT as u8).contains(&chan_type),
            "channel type {chan_type} out of range"
        );
        inner.lock().metrics.channel[(chan_type - 1) as usize].proxy_hops += 1;
    }

    /// CellPilot runtime: a completed one-sided window-fabric operation —
    /// a `put` landing bytes in a remote window (`put == true`) or a `get`
    /// delivering a landed put to the reader (`put == false`);
    /// `latency_ns` is the virtual time the acting side spent inside the
    /// operation.
    pub fn record_one_sided_op(&self, put: bool, bytes: u64, latency_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        let os = &mut st.metrics.one_sided;
        if put {
            os.puts += 1;
            os.put_latencies_ns.push(latency_ns);
        } else {
            os.gets += 1;
            os.get_latencies_ns.push(latency_ns);
        }
        os.bytes += bytes;
    }

    /// CellPilot runtime: a write on bounded channel `chan` was granted a
    /// credit at in-flight `depth`; tracks the per-channel queue-depth
    /// high watermark the overload bench gate compares against capacity.
    pub fn record_queue_depth(&self, chan: u32, depth: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.flow.note_depth(chan, depth);
    }

    /// CellPilot runtime: a write on channel `chan` was shed — refused
    /// under `OverloadPolicy::Shed` or expired under `DeadlineDrop`.
    pub fn record_shed(&self, chan: u32) {
        let Some(inner) = &self.inner else { return };
        *inner.lock().metrics.flow.sheds.entry(chan).or_insert(0) += 1;
    }

    /// CellPilot runtime: a write on channel `chan` found the channel at
    /// capacity and entered a credit wait (whether or not it eventually
    /// got through).
    pub fn record_backpressure_wait(&self, chan: u32) {
        let Some(inner) = &self.inner else { return };
        *inner
            .lock()
            .metrics
            .flow
            .backpressure_waits
            .entry(chan)
            .or_insert(0) += 1;
    }

    /// Service workload: one end-to-end request completed at virtual time
    /// `ts_ns` after `latency_ns` of virtual time in flight. Aggregated
    /// into the snapshot's `service` percentile histogram.
    pub fn record_service_request(&self, ts_ns: u64, latency_ns: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.service.note_request(ts_ns, latency_ns);
    }

    /// Happens-before stream: `actor` performed `op` at virtual time
    /// `ts_ns`. Consumed by the `cp-check` race detector; see
    /// [`crate::hb`] for the event model.
    pub fn record_hb(&self, actor: &str, ts_ns: u64, op: HbOp) {
        let Some(inner) = &self.inner else { return };
        inner.lock().hb.push(HbEvent {
            actor: actor.to_string(),
            ts_ns,
            op,
        });
    }

    /// The recorded happens-before stream, in execution (record) order.
    pub fn hb_events(&self) -> Vec<HbEvent> {
        match &self.inner {
            Some(inner) => inner.lock().hb.clone(),
            None => Vec::new(),
        }
    }

    /// Collapse the counters into a [`MetricsSnapshot`] (all zero when the
    /// recorder is disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.lock().metrics.snapshot(),
            None => MetricsState::default().snapshot(),
        }
    }

    /// All recorded events, stably sorted by timestamp (ties keep record
    /// order).
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = inner.lock().events.clone();
        events.sort_by_key(|e| e.ts_ns);
        events
    }

    /// The interned lane names, indexed by lane id.
    pub fn lanes(&self) -> Vec<String> {
        match &self.inner {
            Some(inner) => inner.lock().lanes.clone(),
            None => Vec::new(),
        }
    }

    /// Export the recording as Chrome `trace_event` JSON (openable in
    /// `about://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> String {
        chrome::chrome_trace(&self.lanes(), &self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::default();
        assert!(!r.is_enabled());
        r.record_dispatch(10, 3);
        r.record_channel_op(5, true, 100, 1000);
        r.record_incident(10, "main", "spe-crash", "x");
        r.record_hb(
            "node0.spe0:w",
            10,
            HbOp::DmaWait {
                node: 0,
                spe: 0,
                mask: 1,
            },
        );
        assert_eq!(r.lane("main"), 0);
        assert!(r.hb_events().is_empty());
        assert!(r.events().is_empty());
        assert!(r.lanes().is_empty());
        let snap = r.snapshot();
        assert_eq!(snap.des.dispatches, 0);
        assert_eq!(snap.channel_types.len(), 5);
    }

    #[test]
    fn clones_share_storage() {
        let r = Recorder::enabled();
        let c = r.clone();
        c.record_send(128);
        assert_eq!(r.snapshot().mpi.sends, 1);
        assert_eq!(r.snapshot().mpi.payload_bytes, 128);
    }

    #[test]
    fn lanes_are_interned_stably() {
        let r = Recorder::enabled();
        let a = r.lane("rank0");
        let b = r.lane("copilot1");
        assert_eq!(r.lane("rank0"), a);
        assert_ne!(a, b);
        assert_eq!(r.lanes(), vec!["rank0".to_string(), "copilot1".to_string()]);
    }

    #[test]
    fn events_sort_by_virtual_time() {
        let r = Recorder::enabled();
        let lane = r.lane("main");
        r.instant(lane, "channel", "later", 500, None);
        r.span(lane, "channel", "earlier", 100, 50);
        let ev = r.events();
        assert_eq!(ev[0].name, "earlier");
        assert_eq!(ev[1].name, "later");
    }

    #[test]
    fn dispatch_counter_is_sampled_not_dense() {
        let r = Recorder::enabled();
        for i in 0..200u64 {
            r.record_dispatch(i, (i % 10) as usize);
        }
        let snap = r.snapshot();
        assert_eq!(snap.des.dispatches, 200);
        assert_eq!(snap.des.max_queue_depth, 9);
        let counters = r
            .events()
            .iter()
            .filter(|e| e.phase == Phase::Counter)
            .count();
        assert!(
            counters <= 200 / QUEUE_SAMPLE_EVERY as usize + 1,
            "{counters}"
        );
        assert!(counters >= 1);
    }

    #[test]
    fn channel_ops_aggregate_per_type() {
        let r = Recorder::enabled();
        r.record_channel_op(4, true, 1600, 112_000);
        r.record_channel_op(4, false, 1600, 112_000);
        r.record_proxy_hop(5);
        r.record_proxy_hop(5);
        let snap = r.snapshot();
        assert_eq!(snap.channel_types[3].writes, 1);
        assert_eq!(snap.channel_types[3].reads, 1);
        assert_eq!(snap.channel_types[3].bytes, 3200);
        assert_eq!(snap.channel_types[3].latency_us.median, 112.0);
        assert_eq!(snap.channel_types[4].proxy_hops, 2);
    }

    #[test]
    fn one_sided_ops_aggregate() {
        let r = Recorder::enabled();
        r.record_one_sided_op(true, 1600, 80_000);
        r.record_one_sided_op(true, 1600, 82_000);
        r.record_one_sided_op(false, 1600, 6_000);
        let snap = r.snapshot();
        assert_eq!(snap.one_sided.puts, 2);
        assert_eq!(snap.one_sided.gets, 1);
        assert_eq!(snap.one_sided.bytes, 4800);
        assert_eq!(snap.one_sided.put_latency_us.median, 82.0);
        assert_eq!(snap.one_sided.get_latency_us.max, 6.0);
        assert!(snap.one_sided.throughput_mb_s > 0.0);
        // Disabled recorder: single-branch no-op.
        Recorder::default().record_one_sided_op(true, 1, 1);
    }

    #[test]
    fn flow_counters_aggregate() {
        let r = Recorder::enabled();
        r.record_queue_depth(3, 2);
        r.record_queue_depth(3, 5);
        r.record_queue_depth(3, 4);
        r.record_backpressure_wait(3);
        r.record_shed(7);
        r.record_shed(7);
        let snap = r.snapshot();
        assert_eq!(snap.flow.queue_high_watermark.get(&3), Some(&5));
        assert_eq!(snap.flow.backpressure_waits.get(&3), Some(&1));
        assert_eq!(snap.flow.sheds.get(&7), Some(&2));
        // Disabled recorder: single-branch no-op.
        Recorder::default().record_queue_depth(0, 1);
        Recorder::default().record_shed(0);
        Recorder::default().record_backpressure_wait(0);
    }

    #[test]
    fn hb_stream_keeps_record_order() {
        let r = Recorder::enabled();
        r.record_hb(
            "copilot0",
            2_000,
            HbOp::MsgSend {
                queue: "node0.spe1".into(),
                seq: 0,
            },
        );
        r.record_hb(
            "node0.spe1:w",
            1_000, // earlier virtual time, recorded later: order must hold
            HbOp::MsgRecv {
                queue: "node0.spe1".into(),
                seq: 0,
            },
        );
        let hb = r.hb_events();
        assert_eq!(hb.len(), 2);
        assert!(matches!(hb[0].op, HbOp::MsgSend { .. }));
        assert!(matches!(hb[1].op, HbOp::MsgRecv { .. }));
        assert_eq!(hb[1].actor, "node0.spe1:w");
    }

    #[test]
    fn incidents_count_and_mark() {
        let r = Recorder::enabled();
        r.record_incident(
            1_000,
            "copilot1-standby",
            "copilot-failover",
            "adopting node 1",
        );
        r.record_incident(2_000, "reaper-rank1", "rank-death", "rank 1");
        r.record_incident(3_000, "reaper-rank2", "rank-death", "rank 2");
        let snap = r.snapshot();
        assert_eq!(snap.incidents["copilot-failover"], 1);
        assert_eq!(snap.incidents["rank-death"], 2);
        let ev = r.events();
        assert!(ev.iter().any(|e| e.name == "incident: copilot-failover"
            && e.detail.as_deref() == Some("adopting node 1")));
    }
}
