//! Chrome `trace_event` export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! `about://tracing` and Perfetto load directly. Everything runs under one
//! synthetic process (`pid` 1); each recorder lane becomes one thread
//! (`tid` = lane id) named via `thread_name` metadata, so the viewer shows
//! one horizontal track per rank/SPE/Co-Pilot. Timestamps are microseconds
//! of *virtual* time.

use crate::json::Json;
use crate::recorder::{Event, Phase};

/// Synthetic process id every lane lives under.
const PID: u64 = 1;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render lanes + events as a Chrome `trace_event` JSON document.
pub fn chrome_trace(lanes: &[String], events: &[Event]) -> String {
    let mut list: Vec<Json> = Vec::with_capacity(lanes.len() + events.len());
    for (tid, lane) in lanes.iter().enumerate() {
        let mut meta = Json::obj();
        meta.set("ph", "M");
        meta.set("pid", PID);
        meta.set("tid", tid as u64);
        meta.set("name", "thread_name");
        let mut args = Json::obj();
        args.set("name", lane.as_str());
        meta.set("args", args);
        list.push(meta);
    }
    for event in events {
        let mut o = Json::obj();
        o.set("pid", PID);
        o.set("tid", u64::from(event.lane));
        o.set("ts", us(event.ts_ns));
        o.set("cat", event.category);
        o.set("name", event.name.as_str());
        let mut args = Json::obj();
        match event.phase {
            Phase::Complete => {
                o.set("ph", "X");
                o.set("dur", us(event.dur_ns));
            }
            Phase::Instant => {
                o.set("ph", "i");
                // "t" scopes the instant marker to its thread (lane).
                o.set("s", "t");
            }
            Phase::Counter => {
                o.set("ph", "C");
                args.set("value", event.value);
            }
        }
        if let Some(detail) = &event.detail {
            args.set("detail", detail.as_str());
        }
        o.set("args", args);
        list.push(o);
    }
    let mut root = Json::obj();
    root.set("traceEvents", list);
    root.set("displayTimeUnit", "ms");
    let mut out = root.to_compact();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn export_is_valid_trace_event_json() {
        let r = Recorder::enabled();
        let main = r.lane("main");
        let copilot = r.lane("copilot1");
        r.span(main, "channel", "write c0 (type 5)", 1_000, 189_000);
        r.instant(
            copilot,
            "incident",
            "incident: copilot-failover",
            50_000,
            Some("x".into()),
        );
        r.counter(r.lane("kernel"), "des", "queue depth", 2_000, 7.0);
        let text = r.chrome_trace();
        let doc = Json::parse(&text).expect("chrome export must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 thread_name metadata records + 3 events.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3);
        for ph in ["X", "i", "C"] {
            assert!(phases.contains(&ph), "missing phase {ph}");
        }
        // The span's timestamp and duration are µs of virtual time.
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(189.0));
        // Lane names travel via thread_name metadata.
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("copilot1"));
    }

    #[test]
    fn disabled_recorder_exports_an_empty_trace() {
        let text = Recorder::default().chrome_trace();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
