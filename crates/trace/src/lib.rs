//! Observability layer for the CellPilot workspace.
//!
//! Every other crate in the stack (the DES kernel, the interconnect model,
//! the MPI layer, the CellPilot runtime, the bench drivers) records what it
//! does through one shared [`Recorder`]: spans and instants keyed on
//! *simulated* time, plus always-cheap counters that aggregate into a
//! [`MetricsSnapshot`]. Two exporters turn a recording into artifacts:
//!
//! * [`BenchReport`] — the machine-readable `BENCH_<label>.json` files the
//!   CI perf gate diffs against a committed baseline (see [`gate`]);
//! * [`chrome_trace`] — Chrome `trace_event` JSON that loads in
//!   `about://tracing` / Perfetto, one lane per rank/SPE/Co-Pilot.
//!
//! The recorder follows the same handle pattern as the runtime's own
//! `TraceSink`: a disabled recorder is a `None` inside and every recording
//! call returns immediately, so instrumented hot paths cost one branch when
//! observability is off. Crucially, recording **never consumes virtual
//! time** — enabling tracing cannot perturb the deterministic schedule, so
//! golden-run byte-identity and schedule-exploration equivalence hold with
//! or without it.
//!
//! The crate depends only on `parking_lot` (it sits *below* `cp-des` in the
//! dependency order) and carries its own minimal JSON tree ([`Json`])
//! because the offline build environment has no serde.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod hb;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use chrome::chrome_trace;
pub use hb::{HbEvent, HbOp};
pub use json::Json;
pub use metrics::{
    ChannelTypeMetrics, DesMetrics, FlowMetrics, LatencyStats, MetricsSnapshot, MpiMetrics,
    NetMetrics, OneSidedMetrics, PercentileStats, ServiceMetrics,
};
pub use recorder::{Event, Phase, Recorder};
pub use report::{
    gate, BenchChannelType, BenchReport, GateOutcome, NativeRates, OverloadChannel, ServiceRow,
    SweepRow, BENCH_SCHEMA,
};
