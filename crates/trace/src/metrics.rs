//! Metric aggregation: cheap counters accumulated during a run and the
//! [`MetricsSnapshot`] they collapse into, with a stable JSON schema.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of CellPilot channel types (Table I of the paper).
pub const CHANNEL_TYPE_COUNT: usize = 5;

/// Mutable per-run accumulation (lives inside the recorder's lock).
#[derive(Debug, Default)]
pub(crate) struct MetricsState {
    pub(crate) channel: [ChannelState; CHANNEL_TYPE_COUNT],
    pub(crate) one_sided: OneSidedState,
    pub(crate) mpi: MpiState,
    pub(crate) net: NetState,
    pub(crate) des: DesState,
    pub(crate) flow: FlowState,
    pub(crate) service: ServiceState,
    pub(crate) incidents: BTreeMap<String, u64>,
}

/// Per-request service-workload samples: end-to-end request latencies plus
/// the virtual-time window they completed in (for the sustained rate).
/// Empty for runs that never call `record_service_request`, so ordinary
/// traces and their goldens are untouched.
#[derive(Debug, Default)]
pub(crate) struct ServiceState {
    pub(crate) latencies_ns: Vec<u64>,
    pub(crate) first_done_ns: Option<u64>,
    pub(crate) last_done_ns: u64,
}

impl ServiceState {
    pub(crate) fn note_request(&mut self, ts_ns: u64, latency_ns: u64) {
        self.latencies_ns.push(latency_ns);
        let first = self.first_done_ns.get_or_insert(ts_ns);
        *first = (*first).min(ts_ns);
        self.last_done_ns = self.last_done_ns.max(ts_ns);
    }
}

#[derive(Debug, Default)]
pub(crate) struct ChannelState {
    pub(crate) writes: u64,
    pub(crate) reads: u64,
    pub(crate) bytes: u64,
    pub(crate) proxy_hops: u64,
    pub(crate) latencies_ns: Vec<u64>,
}

#[derive(Debug, Default)]
pub(crate) struct OneSidedState {
    pub(crate) puts: u64,
    pub(crate) gets: u64,
    pub(crate) bytes: u64,
    pub(crate) put_latencies_ns: Vec<u64>,
    pub(crate) get_latencies_ns: Vec<u64>,
}

#[derive(Debug, Default)]
pub(crate) struct MpiState {
    pub(crate) sends: u64,
    pub(crate) recvs: u64,
    pub(crate) payload_bytes: u64,
    pub(crate) wire_bytes: u64,
    pub(crate) retransmits: u64,
    pub(crate) collectives: BTreeMap<String, u64>,
}

#[derive(Debug, Default)]
pub(crate) struct NetState {
    pub(crate) link_drops: u64,
    pub(crate) link_delays: u64,
    pub(crate) link_duplicates: u64,
    pub(crate) heartbeats: u64,
}

#[derive(Debug, Default)]
pub(crate) struct DesState {
    pub(crate) dispatches: u64,
    pub(crate) max_queue_depth: u64,
}

/// Per-channel flow-control counters, keyed by channel index. Only
/// channels with a configured capacity record here, so the maps stay
/// empty (and the section all-default) for unbounded configurations —
/// which keeps pre-flow-control golden traces byte-identical.
#[derive(Debug, Default)]
pub(crate) struct FlowState {
    pub(crate) queue_high_watermark: BTreeMap<u32, u64>,
    pub(crate) sheds: BTreeMap<u32, u64>,
    pub(crate) backpressure_waits: BTreeMap<u32, u64>,
}

impl FlowState {
    pub(crate) fn note_depth(&mut self, chan: u32, depth: u64) {
        let hwm = self.queue_high_watermark.entry(chan).or_insert(0);
        *hwm = (*hwm).max(depth);
    }
}

impl MetricsState {
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            channel_types: self
                .channel
                .iter()
                .enumerate()
                .map(|(i, c)| ChannelTypeMetrics {
                    chan_type: (i + 1) as u8,
                    writes: c.writes,
                    reads: c.reads,
                    bytes: c.bytes,
                    proxy_hops: c.proxy_hops,
                    latency_us: LatencyStats::from_ns_samples(&c.latencies_ns),
                    throughput_mb_s: throughput_mb_s(c.bytes, &c.latencies_ns),
                })
                .collect(),
            one_sided: OneSidedMetrics {
                puts: self.one_sided.puts,
                gets: self.one_sided.gets,
                bytes: self.one_sided.bytes,
                put_latency_us: LatencyStats::from_ns_samples(&self.one_sided.put_latencies_ns),
                get_latency_us: LatencyStats::from_ns_samples(&self.one_sided.get_latencies_ns),
                throughput_mb_s: throughput_mb_s(
                    self.one_sided.bytes,
                    &self.one_sided.put_latencies_ns,
                ),
            },
            mpi: MpiMetrics {
                sends: self.mpi.sends,
                recvs: self.mpi.recvs,
                payload_bytes: self.mpi.payload_bytes,
                wire_bytes: self.mpi.wire_bytes,
                retransmits: self.mpi.retransmits,
                collectives: self.mpi.collectives.clone(),
            },
            net: NetMetrics {
                link_drops: self.net.link_drops,
                link_delays: self.net.link_delays,
                link_duplicates: self.net.link_duplicates,
                heartbeats: self.net.heartbeats,
            },
            des: DesMetrics {
                dispatches: self.des.dispatches,
                max_queue_depth: self.des.max_queue_depth,
            },
            flow: FlowMetrics {
                queue_high_watermark: self.flow.queue_high_watermark.clone(),
                sheds: self.flow.sheds.clone(),
                backpressure_waits: self.flow.backpressure_waits.clone(),
            },
            service: ServiceMetrics {
                requests: self.service.latencies_ns.len() as u64,
                latency_us: PercentileStats::from_ns_samples(&self.service.latencies_ns),
                sustained_req_s: sustained_req_s(
                    self.service.latencies_ns.len() as u64,
                    self.service.first_done_ns,
                    self.service.last_done_ns,
                ),
            },
            incidents: self.incidents.clone(),
        }
    }
}

/// Completed requests over the virtual-time span they completed in. Zero
/// until at least two requests give the window a nonzero width.
fn sustained_req_s(count: u64, first_ns: Option<u64>, last_ns: u64) -> f64 {
    let Some(first) = first_ns else { return 0.0 };
    let window_ns = last_ns.saturating_sub(first);
    if window_ns == 0 {
        return 0.0;
    }
    count as f64 / (window_ns as f64 / 1e9)
}

/// Bytes over total operation latency, in MB/s (one byte per µs ≡ 1 MB/s —
/// the unit Figure 6 of the paper reports).
fn throughput_mb_s(bytes: u64, latencies_ns: &[u64]) -> f64 {
    let total_ns: u64 = latencies_ns.iter().sum();
    if total_ns == 0 {
        return 0.0;
    }
    bytes as f64 / (total_ns as f64 / 1000.0)
}

/// Order statistics over a set of channel-operation latencies, in µs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples; all other fields are 0 when this is 0.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (nearest rank) — the value the CI perf gate diffs.
    pub median: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencyStats {
    /// Collapse nanosecond samples into µs order statistics.
    pub fn from_ns_samples(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let us = |ns: u64| ns as f64 / 1000.0;
        let rank = |p: f64| {
            let idx = (p * (sorted.len() - 1) as f64).round() as usize;
            us(sorted[idx])
        };
        LatencyStats {
            count: sorted.len() as u64,
            min: us(sorted[0]),
            mean: us(samples.iter().sum::<u64>()) / sorted.len() as f64,
            median: rank(0.5),
            p95: rank(0.95),
            max: us(*sorted.last().unwrap()),
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", self.count);
        o.set("min", self.min);
        o.set("mean", self.mean);
        o.set("median", self.median);
        o.set("p95", self.p95);
        o.set("max", self.max);
        o
    }

    fn from_json(j: &Json) -> Result<LatencyStats, String> {
        Ok(LatencyStats {
            count: req_u64(j, "count")?,
            min: req_f64(j, "min")?,
            mean: req_f64(j, "mean")?,
            median: req_f64(j, "median")?,
            p95: req_f64(j, "p95")?,
            max: req_f64(j, "max")?,
        })
    }
}

/// Tail-focused order statistics over per-request latencies, in µs — the
/// histogram shape a heavy-traffic service workload is judged by (p50 for
/// the typical request, p99/p999 for the tail the SLO cares about).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PercentileStats {
    /// Number of samples; all other fields are 0 when this is 0.
    pub count: u64,
    /// 50th percentile (nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank) — the value the CI service gate
    /// diffs.
    pub p99: f64,
    /// 99.9th percentile (nearest rank).
    pub p999: f64,
    /// Largest sample.
    pub max: f64,
}

impl PercentileStats {
    /// Collapse nanosecond samples into µs tail statistics.
    pub fn from_ns_samples(samples: &[u64]) -> PercentileStats {
        if samples.is_empty() {
            return PercentileStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let us = |ns: u64| ns as f64 / 1000.0;
        let rank = |p: f64| {
            let idx = (p * (sorted.len() - 1) as f64).round() as usize;
            us(sorted[idx])
        };
        PercentileStats {
            count: sorted.len() as u64,
            p50: rank(0.5),
            p99: rank(0.99),
            p999: rank(0.999),
            max: us(*sorted.last().unwrap()),
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", self.count);
        o.set("p50", self.p50);
        o.set("p99", self.p99);
        o.set("p999", self.p999);
        o.set("max", self.max);
        o
    }

    fn from_json(j: &Json) -> Result<PercentileStats, String> {
        Ok(PercentileStats {
            count: req_u64(j, "count")?,
            p50: req_f64(j, "p50")?,
            p99: req_f64(j, "p99")?,
            p999: req_f64(j, "p999")?,
            max: req_f64(j, "max")?,
        })
    }
}

/// Aggregated service-workload request metrics. All-zero for runs that
/// record no service requests (older snapshots omit the section).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceMetrics {
    /// Completed end-to-end requests.
    pub requests: u64,
    /// Per-request latency tail statistics, µs.
    pub latency_us: PercentileStats,
    /// Completed requests over the virtual-time window they completed in,
    /// requests per second.
    pub sustained_req_s: f64,
}

impl ServiceMetrics {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("requests", self.requests);
        o.set("latency_us", self.latency_us.to_json());
        o.set("sustained_req_s", self.sustained_req_s);
        o
    }

    fn from_json(j: &Json) -> Result<ServiceMetrics, String> {
        Ok(ServiceMetrics {
            requests: req_u64(j, "requests")?,
            latency_us: PercentileStats::from_json(
                j.get("latency_us").ok_or("metrics: missing latency_us")?,
            )?,
            sustained_req_s: req_f64(j, "sustained_req_s")?,
        })
    }
}

/// Aggregated metrics for one channel type (1–5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChannelTypeMetrics {
    /// Channel type, 1..=5 (Table I).
    pub chan_type: u8,
    /// Completed write operations.
    pub writes: u64,
    /// Completed read operations.
    pub reads: u64,
    /// Payload bytes across all recorded operations (a message counts on
    /// both its write and its read side).
    pub bytes: u64,
    /// Co-Pilot relay hops taken by messages of this type: the writer-side
    /// MPI forward and the reader-side delivery each count one, so a
    /// type-5 message records two and a purely local type-4 pairing none.
    pub proxy_hops: u64,
    /// Per-operation latency order statistics, µs.
    pub latency_us: LatencyStats,
    /// Payload bytes over summed operation latency, MB/s.
    pub throughput_mb_s: f64,
}

/// Aggregated one-sided window-fabric counters (put/get channels).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OneSidedMetrics {
    /// Completed one-sided `put` operations (writer side, end to end).
    pub puts: u64,
    /// Completed one-sided `get` deliveries (window → reader buffer).
    pub gets: u64,
    /// Payload bytes across all recorded puts and gets (a message counts
    /// on both sides, mirroring the channel-type accounting).
    pub bytes: u64,
    /// Per-put latency order statistics, µs.
    pub put_latency_us: LatencyStats,
    /// Per-get latency order statistics, µs.
    pub get_latency_us: LatencyStats,
    /// Put payload bytes over summed put latency, MB/s.
    pub throughput_mb_s: f64,
}

impl OneSidedMetrics {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("puts", self.puts);
        o.set("gets", self.gets);
        o.set("bytes", self.bytes);
        o.set("put_latency_us", self.put_latency_us.to_json());
        o.set("get_latency_us", self.get_latency_us.to_json());
        o.set("throughput_mb_s", self.throughput_mb_s);
        o
    }

    fn from_json(j: &Json) -> Result<OneSidedMetrics, String> {
        Ok(OneSidedMetrics {
            puts: req_u64(j, "puts")?,
            gets: req_u64(j, "gets")?,
            bytes: req_u64(j, "bytes")?,
            put_latency_us: LatencyStats::from_json(
                j.get("put_latency_us")
                    .ok_or("metrics: missing put_latency_us")?,
            )?,
            get_latency_us: LatencyStats::from_json(
                j.get("get_latency_us")
                    .ok_or("metrics: missing get_latency_us")?,
            )?,
            throughput_mb_s: req_f64(j, "throughput_mb_s")?,
        })
    }
}

/// Aggregated MPI-layer counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MpiMetrics {
    /// Logical point-to-point sends initiated.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Application payload bytes handed to the send path.
    pub payload_bytes: u64,
    /// Bytes put on the wire across all transmission attempts (counts
    /// retransmitted payloads again; rendezvous control frames are free).
    pub wire_bytes: u64,
    /// Transmission attempts repeated after an injected link drop.
    pub retransmits: u64,
    /// Collective operations completed, by name.
    pub collectives: BTreeMap<String, u64>,
}

/// Aggregated interconnect counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetMetrics {
    /// Link-level drops injected by the fault plan.
    pub link_drops: u64,
    /// Link-level extra delays injected by the fault plan.
    pub link_delays: u64,
    /// Link-level duplications injected by the fault plan.
    pub link_duplicates: u64,
    /// Co-Pilot heartbeat beats observed.
    pub heartbeats: u64,
}

/// Aggregated DES-kernel counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesMetrics {
    /// Scheduler dispatches (context switches).
    pub dispatches: u64,
    /// High-water mark of the pending event queue.
    pub max_queue_depth: u64,
}

/// Per-channel flow-control counters, keyed by channel index. Empty for
/// runs where no channel declared a capacity (older snapshots omit the
/// section entirely).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowMetrics {
    /// Largest observed in-flight depth per bounded channel — the number
    /// the overload bench gate compares against the configured capacity.
    pub queue_high_watermark: BTreeMap<u32, u64>,
    /// Messages shed (Shed or expired DeadlineDrop) per channel.
    pub sheds: BTreeMap<u32, u64>,
    /// Writes that entered a credit wait (Block or DeadlineDrop) per
    /// channel, whether or not they eventually succeeded.
    pub backpressure_waits: BTreeMap<u32, u64>,
}

impl FlowMetrics {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set(
            "queue_high_watermark",
            chan_counts_to_json(&self.queue_high_watermark),
        );
        o.set("sheds", chan_counts_to_json(&self.sheds));
        o.set(
            "backpressure_waits",
            chan_counts_to_json(&self.backpressure_waits),
        );
        o
    }

    fn from_json(j: &Json) -> Result<FlowMetrics, String> {
        Ok(FlowMetrics {
            queue_high_watermark: chan_counts_from_json(
                j.get("queue_high_watermark")
                    .ok_or("metrics: missing queue_high_watermark")?,
            )?,
            sheds: chan_counts_from_json(j.get("sheds").ok_or("metrics: missing sheds")?)?,
            backpressure_waits: chan_counts_from_json(
                j.get("backpressure_waits")
                    .ok_or("metrics: missing backpressure_waits")?,
            )?,
        })
    }
}

/// One run's aggregated metrics, with a stable JSON schema (see
/// `DESIGN.md` §14).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// One entry per channel type, ordered type 1 → 5.
    pub channel_types: Vec<ChannelTypeMetrics>,
    /// One-sided window-fabric counters; all-zero when no channel used
    /// the one-sided path (older snapshots omit the section entirely).
    pub one_sided: OneSidedMetrics,
    /// MPI-layer counters.
    pub mpi: MpiMetrics,
    /// Interconnect counters.
    pub net: NetMetrics,
    /// DES-kernel counters.
    pub des: DesMetrics,
    /// Flow-control counters; empty when no channel declared a capacity
    /// (older snapshots omit the section entirely).
    pub flow: FlowMetrics,
    /// Service-workload request metrics; all-zero when no requests were
    /// recorded (older snapshots omit the section entirely).
    pub service: ServiceMetrics,
    /// Incident counts by `IncidentCategory` kebab-case name.
    pub incidents: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Serialize to the documented JSON schema.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        let types: Vec<Json> = self
            .channel_types
            .iter()
            .map(|c| {
                let mut t = Json::obj();
                t.set("type", c.chan_type);
                t.set("writes", c.writes);
                t.set("reads", c.reads);
                t.set("bytes", c.bytes);
                t.set("proxy_hops", c.proxy_hops);
                t.set("latency_us", c.latency_us.to_json());
                t.set("throughput_mb_s", c.throughput_mb_s);
                t
            })
            .collect();
        o.set("channel_types", types);
        o.set("one_sided", self.one_sided.to_json());
        let mut mpi = Json::obj();
        mpi.set("sends", self.mpi.sends);
        mpi.set("recvs", self.mpi.recvs);
        mpi.set("payload_bytes", self.mpi.payload_bytes);
        mpi.set("wire_bytes", self.mpi.wire_bytes);
        mpi.set("retransmits", self.mpi.retransmits);
        mpi.set("collectives", counts_to_json(&self.mpi.collectives));
        o.set("mpi", mpi);
        let mut net = Json::obj();
        net.set("link_drops", self.net.link_drops);
        net.set("link_delays", self.net.link_delays);
        net.set("link_duplicates", self.net.link_duplicates);
        net.set("heartbeats", self.net.heartbeats);
        o.set("net", net);
        let mut des = Json::obj();
        des.set("dispatches", self.des.dispatches);
        des.set("max_queue_depth", self.des.max_queue_depth);
        o.set("des", des);
        o.set("flow", self.flow.to_json());
        o.set("service", self.service.to_json());
        o.set("incidents", counts_to_json(&self.incidents));
        o
    }

    /// Parse a value produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(j: &Json) -> Result<MetricsSnapshot, String> {
        let types = j
            .get("channel_types")
            .and_then(Json::as_arr)
            .ok_or("metrics: missing channel_types array")?;
        let channel_types = types
            .iter()
            .map(|t| {
                Ok(ChannelTypeMetrics {
                    chan_type: req_u64(t, "type")? as u8,
                    writes: req_u64(t, "writes")?,
                    reads: req_u64(t, "reads")?,
                    bytes: req_u64(t, "bytes")?,
                    proxy_hops: req_u64(t, "proxy_hops")?,
                    latency_us: LatencyStats::from_json(
                        t.get("latency_us").ok_or("metrics: missing latency_us")?,
                    )?,
                    throughput_mb_s: req_f64(t, "throughput_mb_s")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mpi = j.get("mpi").ok_or("metrics: missing mpi")?;
        let net = j.get("net").ok_or("metrics: missing net")?;
        let des = j.get("des").ok_or("metrics: missing des")?;
        // Tolerate snapshots written before the one-sided fabric existed:
        // a missing section reads back as the all-zero default.
        let one_sided = match j.get("one_sided") {
            Some(os) => OneSidedMetrics::from_json(os)?,
            None => OneSidedMetrics::default(),
        };
        // Same tolerance for the flow-control section (pre-backpressure
        // snapshots omit it).
        let flow = match j.get("flow") {
            Some(f) => FlowMetrics::from_json(f)?,
            None => FlowMetrics::default(),
        };
        // And for the service section (pre-service-bench snapshots omit
        // it).
        let service = match j.get("service") {
            Some(s) => ServiceMetrics::from_json(s)?,
            None => ServiceMetrics::default(),
        };
        Ok(MetricsSnapshot {
            channel_types,
            one_sided,
            mpi: MpiMetrics {
                sends: req_u64(mpi, "sends")?,
                recvs: req_u64(mpi, "recvs")?,
                payload_bytes: req_u64(mpi, "payload_bytes")?,
                wire_bytes: req_u64(mpi, "wire_bytes")?,
                retransmits: req_u64(mpi, "retransmits")?,
                collectives: counts_from_json(
                    mpi.get("collectives")
                        .ok_or("metrics: missing collectives")?,
                )?,
            },
            net: NetMetrics {
                link_drops: req_u64(net, "link_drops")?,
                link_delays: req_u64(net, "link_delays")?,
                link_duplicates: req_u64(net, "link_duplicates")?,
                heartbeats: req_u64(net, "heartbeats")?,
            },
            des: DesMetrics {
                dispatches: req_u64(des, "dispatches")?,
                max_queue_depth: req_u64(des, "max_queue_depth")?,
            },
            flow,
            service,
            incidents: counts_from_json(j.get("incidents").ok_or("metrics: missing incidents")?)?,
        })
    }
}

fn counts_to_json(counts: &BTreeMap<String, u64>) -> Json {
    let mut o = Json::obj();
    for (k, v) in counts {
        o.set(k, *v);
    }
    o
}

fn chan_counts_to_json(counts: &BTreeMap<u32, u64>) -> Json {
    let mut o = Json::obj();
    for (k, v) in counts {
        o.set(&k.to_string(), *v);
    }
    o
}

fn chan_counts_from_json(j: &Json) -> Result<BTreeMap<u32, u64>, String> {
    counts_from_json(j)?
        .into_iter()
        .map(|(k, v)| {
            k.parse::<u32>()
                .map(|chan| (chan, v))
                .map_err(|_| format!("metrics: channel key {k:?} is not an index"))
        })
        .collect()
}

fn counts_from_json(j: &Json) -> Result<BTreeMap<String, u64>, String> {
    match j {
        Json::Obj(map) => map
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("metrics: count {k:?} is not an integer"))
            })
            .collect(),
        _ => Err("metrics: counts must be an object".to_string()),
    }
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("metrics: missing integer field {key:?}"))
}

fn req_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("metrics: missing number field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_order_statistics() {
        // 1..=100 µs in ns.
        let samples: Vec<u64> = (1..=100u64).map(|v| v * 1000).collect();
        let s = LatencyStats::from_ns_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.median, 51.0); // nearest-rank: 0-based index 49.5 rounds to 50
        assert_eq!(s.p95, 95.0); // index 94.05 rounds to 94, i.e. 95 µs
    }

    #[test]
    fn empty_latency_stats_are_all_zero() {
        assert_eq!(LatencyStats::from_ns_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut state = MetricsState::default();
        state.channel[4].writes = 3;
        state.channel[4].reads = 3;
        state.channel[4].bytes = 9600;
        state.channel[4].proxy_hops = 6;
        state.channel[4].latencies_ns = vec![189_000, 190_000, 191_000];
        state.mpi.sends = 12;
        state.mpi.payload_bytes = 4800;
        state.mpi.wire_bytes = 6400;
        state.mpi.retransmits = 1;
        state.mpi.collectives.insert("bcast".to_string(), 2);
        state.net.link_drops = 1;
        state.net.heartbeats = 40;
        state.des.dispatches = 1234;
        state.des.max_queue_depth = 17;
        state.incidents.insert("copilot-failover".to_string(), 1);
        state.one_sided.puts = 4;
        state.one_sided.gets = 4;
        state.one_sided.bytes = 12800;
        state.one_sided.put_latencies_ns = vec![80_000, 81_000, 82_000, 83_000];
        state.one_sided.get_latencies_ns = vec![5_000, 6_000, 7_000, 8_000];
        state.flow.note_depth(0, 3);
        state.flow.note_depth(0, 7);
        state.flow.note_depth(0, 5); // high watermark keeps the max
        *state.flow.sheds.entry(2).or_insert(0) += 4;
        *state.flow.backpressure_waits.entry(0).or_insert(0) += 11;
        let snap = state.snapshot();
        assert_eq!(snap.channel_types.len(), CHANNEL_TYPE_COUNT);
        assert_eq!(snap.channel_types[4].chan_type, 5);
        assert_eq!(snap.channel_types[4].latency_us.median, 190.0);
        assert_eq!(snap.flow.queue_high_watermark.get(&0), Some(&7));
        assert_eq!(snap.flow.sheds.get(&2), Some(&4));
        let text = snap.to_json().to_pretty();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn throughput_is_bytes_per_microsecond() {
        // 1600 bytes in 200 µs -> 8 MB/s.
        assert_eq!(throughput_mb_s(1600, &[200_000]), 8.0);
        assert_eq!(throughput_mb_s(1600, &[]), 0.0);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let j = Json::parse("{\"channel_types\":[]}").unwrap();
        let err = MetricsSnapshot::from_json(&j).unwrap_err();
        assert!(err.contains("mpi"), "{err}");
    }

    #[test]
    fn missing_one_sided_section_parses_as_default() {
        // Snapshots committed before the window fabric existed have no
        // one_sided key; they must keep parsing (BENCH_baseline.json).
        let snap = MetricsState::default().snapshot();
        let stripped = match snap.to_json() {
            Json::Obj(map) => {
                Json::Obj(map.into_iter().filter(|(k, _)| k != "one_sided").collect())
            }
            other => panic!("snapshot must serialize to an object, got {other:?}"),
        };
        assert!(stripped.get("one_sided").is_none());
        let back = MetricsSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.one_sided, OneSidedMetrics::default());
    }

    #[test]
    fn percentile_stats_tail_ranks() {
        // 1..=1000 µs in ns.
        let samples: Vec<u64> = (1..=1000u64).map(|v| v * 1000).collect();
        let s = PercentileStats::from_ns_samples(&samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 501.0); // nearest-rank over 0-based indices
        assert_eq!(s.p99, 990.0);
        assert_eq!(s.p999, 999.0); // nearest-rank: index 998.001 rounds to 998
        assert_eq!(s.max, 1000.0);
        assert_eq!(
            PercentileStats::from_ns_samples(&[]),
            PercentileStats::default()
        );
    }

    #[test]
    fn service_section_aggregates_and_round_trips() {
        let mut state = MetricsState::default();
        // 3 requests finishing across a 2-second virtual window.
        state.service.note_request(1_000_000_000, 150_000);
        state.service.note_request(2_000_000_000, 90_000);
        state.service.note_request(3_000_000_000, 3_000_000);
        let snap = state.snapshot();
        assert_eq!(snap.service.requests, 3);
        assert_eq!(snap.service.latency_us.p50, 150.0);
        assert_eq!(snap.service.latency_us.max, 3000.0);
        assert_eq!(snap.service.sustained_req_s, 1.5); // 3 reqs / 2 s
        let text = snap.to_json().to_pretty();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.service, snap.service);
    }

    #[test]
    fn missing_service_section_parses_as_default() {
        // Snapshots committed before the service bench existed have no
        // service key; they must keep parsing (BENCH_baseline.json).
        let snap = MetricsState::default().snapshot();
        let stripped = match snap.to_json() {
            Json::Obj(map) => Json::Obj(map.into_iter().filter(|(k, _)| k != "service").collect()),
            other => panic!("snapshot must serialize to an object, got {other:?}"),
        };
        let back = MetricsSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.service, ServiceMetrics::default());
    }

    #[test]
    fn missing_flow_section_parses_as_default() {
        // Snapshots committed before flow control existed have no flow
        // key; they must keep parsing (BENCH_baseline.json).
        let snap = MetricsState::default().snapshot();
        let stripped = match snap.to_json() {
            Json::Obj(map) => Json::Obj(map.into_iter().filter(|(k, _)| k != "flow").collect()),
            other => panic!("snapshot must serialize to an object, got {other:?}"),
        };
        let back = MetricsSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.flow, FlowMetrics::default());
    }
}
