//! Minimal JSON tree, writer and parser.
//!
//! The offline build environment has no crates.io access, so serde is not
//! available; this module carries just enough JSON to write the
//! `BENCH_*.json` reports and Chrome traces and to parse reports back for
//! the CI regression gate. Objects keep their keys in a `BTreeMap`, so a
//! serialization is canonical (sorted keys) and golden-file tests can
//! compare bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers from floats).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with canonically sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<u8> for Json {
    fn from(v: u8) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert `key` into an object node.
    ///
    /// # Panics
    /// Panics when `self` is not an object (builder misuse is a bug).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Field of an object, if `self` is an object holding `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if `self` is a whole number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// String slice, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indent, trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => push_num(out, *n),
            Json::Str(s) => push_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write_into(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    push_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_into(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn push_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparsable document.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's f64 Display prints the shortest representation that
        // round-trips, which is exactly what a stable schema wants.
        let _ = write!(out, "{n}");
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let mut inner = Json::obj();
        inner.set("pi", 3.25);
        inner.set("n", 42u64);
        inner.set("neg", -7.0);
        let mut doc = Json::obj();
        doc.set("name", "trace \"quoted\" \\ line\nnext\ttab");
        doc.set("items", vec![Json::Null, Json::Bool(true), inner]);
        doc.set(
            "empty_arr",
            Vec::<Json>::new().into_iter().collect::<Vec<_>>(),
        );
        doc.set("empty_obj", Json::obj());
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "source: {text}");
        }
    }

    #[test]
    fn whole_numbers_render_without_decimal_point() {
        assert_eq!(Json::Num(50.0).to_compact(), "50");
        assert_eq!(Json::Num(1.5).to_compact(), "1.5");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn object_keys_are_canonically_sorted() {
        let mut doc = Json::obj();
        doc.set("zeta", 1u64);
        doc.set("alpha", 2u64);
        assert_eq!(doc.to_compact(), "{\"alpha\":2,\"zeta\":1}");
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        let parsed = Json::parse("\"a\\u00e9b \\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("aéb 😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_see_through_the_tree() {
        let doc = Json::parse("{\"a\":[1,\"x\"],\"b\":{\"c\":2}}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
