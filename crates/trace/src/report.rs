//! `BENCH_<label>.json`: the machine-readable bench report the CI perf
//! gate diffs, plus the gate comparison itself.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// Schema identifier carried by every report; bump on breaking change.
pub const BENCH_SCHEMA: &str = "cellpilot-bench/2";

/// Median one-way latency and throughput for one channel type.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchChannelType {
    /// Channel type, 1..=5 (Table I).
    pub chan_type: u8,
    /// Median one-way latency for the 1-byte payload, µs (Table II's
    /// `%b` column; the simulator is deterministic, so the median over
    /// `reps` repetitions is exact).
    pub latency_us_small: f64,
    /// Median one-way latency for the 1600-byte payload, µs (`%100Lf`).
    pub latency_us_large: f64,
    /// Throughput of the 1600-byte array case, MB/s (Figure 6).
    pub throughput_mb_s: f64,
}

/// One row of the IMB-style PingPong payload sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Payload bytes.
    pub bytes: u64,
    /// CellPilot one-way latency, µs.
    pub cellpilot_us: f64,
    /// Hand-coded DMA baseline latency, µs.
    pub dma_us: f64,
    /// Hand-coded copy baseline latency, µs.
    pub copy_us: f64,
}

/// One bounded channel's overload outcome: what the flow-control ledger
/// saw on a saturation run. The gate checks the queue-depth high
/// watermark against the configured capacity — a watermark above
/// capacity means the credit ledger failed to bound the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadChannel {
    /// Channel index in the run's configuration.
    pub chan: u32,
    /// Configured in-flight bound (`ChannelBuilder::capacity`).
    pub capacity: u64,
    /// Deepest observed in-flight count (from the trace flow metrics).
    pub queue_high_watermark: u64,
    /// Messages shed by the channel's overload policy.
    pub sheds: u64,
    /// Writes that entered a credit wait.
    pub backpressure_waits: u64,
}

/// One scenario of the heavy-traffic service bench (`repro_service`):
/// per-request latency tail statistics plus the sustained rate. The gate
/// compares p99 against the committed baseline — tail latency is the
/// number the service workload exists to protect.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// Scenario name (`type2-eager`, `type5-ablate`, `chaos-failover`, ...).
    pub scenario: String,
    /// Completed end-to-end requests.
    pub requests: u64,
    /// Median request latency, µs.
    pub p50_us: f64,
    /// 99th-percentile request latency, µs — the gated value.
    pub p99_us: f64,
    /// 99.9th-percentile request latency, µs.
    pub p999_us: f64,
    /// Completed requests over the virtual-time completion window, req/s.
    pub sustained_req_s: f64,
}

/// Wall-clock throughput of the native threads backend, measured by the
/// conformance driver. Informational: the perf gate compares virtual-time
/// medians only, so these rates never fail CI.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeRates {
    /// Wall-clock time the native replay took, milliseconds.
    pub wall_ms: f64,
    /// Kernel dispatch events per wall-clock second.
    pub events_per_sec: f64,
    /// Channel messages delivered per wall-clock second.
    pub msgs_per_sec: f64,
}

/// A complete `BENCH_<label>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema identifier (must be [`BENCH_SCHEMA`]).
    pub schema: String,
    /// Report label (`baseline`, `ci`, a PR name, ...).
    pub label: String,
    /// Timed repetitions behind each latency entry.
    pub reps: u64,
    /// Per-channel-type medians, ordered type 1 → 5. May be empty for
    /// reports that only carry [`BenchReport::metrics`] (e.g. chaos runs).
    pub channel_types: Vec<BenchChannelType>,
    /// One-sided (window-fabric) ablation rows: the same channel-type
    /// scenarios re-measured with the put/get path instead of the relay.
    /// Empty for reports taken before the fabric existed or when the
    /// ablation was not run; the gate only checks rows the baseline has.
    pub one_sided: Vec<BenchChannelType>,
    /// PingPong payload sweep (may be empty).
    pub pingpong_sweep: Vec<SweepRow>,
    /// Per-bounded-channel overload outcomes from a saturation campaign
    /// (`repro_overload`). Empty for ordinary bench runs and for reports
    /// taken before flow control existed; the gate fails any row whose
    /// queue high watermark exceeds its capacity.
    pub overload: Vec<OverloadChannel>,
    /// Heavy-traffic service bench scenarios (`repro_service`). Empty for
    /// ordinary bench runs and for reports taken before the service bench
    /// existed; the gate compares p99 per scenario the baseline has.
    pub service: Vec<ServiceRow>,
    /// Full metrics snapshot of an instrumented run, when one was taken.
    pub metrics: Option<MetricsSnapshot>,
    /// Native-backend wall-clock rates, when the conformance driver
    /// measured them. Absent from sim-only reports; the gate ignores it.
    pub native_rates: Option<NativeRates>,
}

impl BenchReport {
    /// An empty report shell with the current schema.
    pub fn new(label: &str, reps: u64) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            label: label.to_string(),
            reps,
            channel_types: Vec::new(),
            one_sided: Vec::new(),
            pingpong_sweep: Vec::new(),
            overload: Vec::new(),
            service: Vec::new(),
            metrics: None,
            native_rates: None,
        }
    }

    /// Serialize to the documented JSON schema.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("schema", self.schema.as_str());
        o.set("label", self.label.as_str());
        o.set("reps", self.reps);
        let row = |c: &BenchChannelType| {
            let mut t = Json::obj();
            t.set("type", c.chan_type);
            let mut lat = Json::obj();
            lat.set("small", c.latency_us_small);
            lat.set("large", c.latency_us_large);
            t.set("latency_us", lat);
            t.set("throughput_mb_s", c.throughput_mb_s);
            t
        };
        let types: Vec<Json> = self.channel_types.iter().map(row).collect();
        o.set("channel_types", types);
        let one_sided: Vec<Json> = self.one_sided.iter().map(row).collect();
        o.set("one_sided", one_sided);
        let sweep: Vec<Json> = self
            .pingpong_sweep
            .iter()
            .map(|row| {
                let mut r = Json::obj();
                r.set("bytes", row.bytes);
                r.set("cellpilot_us", row.cellpilot_us);
                r.set("dma_us", row.dma_us);
                r.set("copy_us", row.copy_us);
                r
            })
            .collect();
        o.set("pingpong_sweep", sweep);
        let overload: Vec<Json> = self
            .overload
            .iter()
            .map(|row| {
                let mut r = Json::obj();
                r.set("chan", row.chan);
                r.set("capacity", row.capacity);
                r.set("queue_high_watermark", row.queue_high_watermark);
                r.set("sheds", row.sheds);
                r.set("backpressure_waits", row.backpressure_waits);
                r
            })
            .collect();
        o.set("overload", overload);
        let service: Vec<Json> = self
            .service
            .iter()
            .map(|row| {
                let mut r = Json::obj();
                r.set("scenario", row.scenario.as_str());
                r.set("requests", row.requests);
                r.set("p50_us", row.p50_us);
                r.set("p99_us", row.p99_us);
                r.set("p999_us", row.p999_us);
                r.set("sustained_req_s", row.sustained_req_s);
                r
            })
            .collect();
        o.set("service", service);
        match &self.metrics {
            Some(m) => o.set("metrics", m.to_json()),
            None => o.set("metrics", Json::Null),
        }
        if let Some(n) = &self.native_rates {
            let mut nr = Json::obj();
            nr.set("wall_ms", n.wall_ms);
            nr.set("events_per_sec", n.events_per_sec);
            nr.set("msgs_per_sec", n.msgs_per_sec);
            o.set("native_rates", nr);
        }
        o
    }

    /// Pretty-printed JSON document (what the bench drivers write).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parse a `BENCH_*.json` document, validating the schema id.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let j = Json::parse(text)?;
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("bench report: missing schema")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "bench report: schema {schema:?} (this tool reads {BENCH_SCHEMA:?})"
            ));
        }
        let parse_rows = |rows: &[Json]| {
            rows.iter()
                .map(|t| {
                    let lat = t
                        .get("latency_us")
                        .ok_or("bench report: missing latency_us")?;
                    Ok(BenchChannelType {
                        chan_type: field_u64(t, "type")? as u8,
                        latency_us_small: field_f64(lat, "small")?,
                        latency_us_large: field_f64(lat, "large")?,
                        throughput_mb_s: field_f64(t, "throughput_mb_s")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()
        };
        let channel_types = parse_rows(
            j.get("channel_types")
                .and_then(Json::as_arr)
                .ok_or("bench report: missing channel_types")?,
        )?;
        // Reports written before the window fabric existed have no
        // one_sided section; read those back as an empty ablation.
        let one_sided = match j.get("one_sided").and_then(Json::as_arr) {
            Some(rows) => parse_rows(rows)?,
            None => Vec::new(),
        };
        let pingpong_sweep = j
            .get("pingpong_sweep")
            .and_then(Json::as_arr)
            .ok_or("bench report: missing pingpong_sweep")?
            .iter()
            .map(|r| {
                Ok(SweepRow {
                    bytes: field_u64(r, "bytes")?,
                    cellpilot_us: field_f64(r, "cellpilot_us")?,
                    dma_us: field_f64(r, "dma_us")?,
                    copy_us: field_f64(r, "copy_us")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // Reports written before flow control existed have no overload
        // section; read those back as an empty campaign.
        let overload = match j.get("overload").and_then(Json::as_arr) {
            Some(rows) => rows
                .iter()
                .map(|r| {
                    Ok(OverloadChannel {
                        chan: field_u64(r, "chan")? as u32,
                        capacity: field_u64(r, "capacity")?,
                        queue_high_watermark: field_u64(r, "queue_high_watermark")?,
                        sheds: field_u64(r, "sheds")?,
                        backpressure_waits: field_u64(r, "backpressure_waits")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        // And the service section (pre-service-bench reports omit it).
        let service = match j.get("service").and_then(Json::as_arr) {
            Some(rows) => rows
                .iter()
                .map(|r| {
                    Ok(ServiceRow {
                        scenario: r
                            .get("scenario")
                            .and_then(Json::as_str)
                            .ok_or("bench report: missing scenario")?
                            .to_string(),
                        requests: field_u64(r, "requests")?,
                        p50_us: field_f64(r, "p50_us")?,
                        p99_us: field_f64(r, "p99_us")?,
                        p999_us: field_f64(r, "p999_us")?,
                        sustained_req_s: field_f64(r, "sustained_req_s")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        let metrics = match j.get("metrics") {
            None | Some(Json::Null) => None,
            Some(m) => Some(MetricsSnapshot::from_json(m)?),
        };
        // Sim-only reports (and all pre-native ones) carry no native_rates
        // key; parse it as absent rather than failing.
        let native_rates = match j.get("native_rates") {
            None | Some(Json::Null) => None,
            Some(n) => Some(NativeRates {
                wall_ms: field_f64(n, "wall_ms")?,
                events_per_sec: field_f64(n, "events_per_sec")?,
                msgs_per_sec: field_f64(n, "msgs_per_sec")?,
            }),
        };
        Ok(BenchReport {
            schema: schema.to_string(),
            label: j
                .get("label")
                .and_then(Json::as_str)
                .ok_or("bench report: missing label")?
                .to_string(),
            reps: field_u64(&j, "reps")?,
            channel_types,
            one_sided,
            pingpong_sweep,
            overload,
            service,
            metrics,
            native_rates,
        })
    }
}

fn field_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("bench report: missing integer field {key:?}"))
}

fn field_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("bench report: missing number field {key:?}"))
}

/// Result of gating a candidate report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Human-readable per-cell comparison lines (always populated).
    pub lines: Vec<String>,
    /// Violations; the gate passes iff this is empty.
    pub regressions: Vec<String>,
}

impl GateOutcome {
    /// Whether the candidate is within tolerance everywhere.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `candidate` against `baseline`: any channel-type median latency
/// (1-byte or 1600-byte) more than `tolerance_pct` percent *above* the
/// baseline is a regression — in the relay rows and, when the baseline
/// carries them, the one-sided ablation rows too. Getting faster never
/// fails the gate, and throughput is reported informationally only.
///
/// The candidate's overload section (when present) is checked on its own,
/// with no baseline needed: a bounded channel whose queue-depth high
/// watermark exceeds its capacity means the flow-control ledger let the
/// queue grow without limit, and that always fails the gate.
///
/// Service scenarios the baseline carries are gated on p99 tail latency
/// with the same `tolerance_pct`; scenarios only the candidate has are
/// informational.
pub fn gate(baseline: &BenchReport, candidate: &BenchReport, tolerance_pct: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    gate_rows(
        &mut out,
        "type",
        &baseline.channel_types,
        &candidate.channel_types,
        tolerance_pct,
    );
    gate_rows(
        &mut out,
        "one-sided type",
        &baseline.one_sided,
        &candidate.one_sided,
        tolerance_pct,
    );
    for row in &candidate.overload {
        let line = format!(
            "overload chan {}: depth high-watermark {}/{} capacity, {} shed, {} waits",
            row.chan, row.queue_high_watermark, row.capacity, row.sheds, row.backpressure_waits
        );
        if row.queue_high_watermark > row.capacity {
            out.regressions
                .push(format!("{line}  unbounded queue growth"));
        }
        out.lines.push(line);
    }
    // Service scenarios are gated on p99 tail latency, per scenario the
    // baseline carries (new candidate scenarios pass informationally).
    for base in &baseline.service {
        let Some(cand) = candidate
            .service
            .iter()
            .find(|c| c.scenario == base.scenario)
        else {
            out.regressions.push(format!(
                "service {}: missing from candidate report",
                base.scenario
            ));
            continue;
        };
        let delta_pct = if base.p99_us > 0.0 {
            (cand.p99_us / base.p99_us - 1.0) * 100.0
        } else {
            0.0
        };
        let line = format!(
            "service {} p99: {:>8.2} -> {:>8.2} us ({:+.1}%), p50 {:.2} us, {:.0} req/s",
            base.scenario, base.p99_us, cand.p99_us, delta_pct, cand.p50_us, cand.sustained_req_s
        );
        if delta_pct > tolerance_pct {
            out.regressions
                .push(format!("{line}  exceeds +{tolerance_pct:.0}% tolerance"));
        }
        out.lines.push(line);
    }
    out
}

fn gate_rows(
    out: &mut GateOutcome,
    prefix: &str,
    baseline: &[BenchChannelType],
    candidate: &[BenchChannelType],
    tolerance_pct: f64,
) {
    for base in baseline {
        let Some(cand) = candidate.iter().find(|c| c.chan_type == base.chan_type) else {
            out.regressions.push(format!(
                "{prefix} {}: missing from candidate report",
                base.chan_type
            ));
            continue;
        };
        for (name, b, c) in [
            ("1B", base.latency_us_small, cand.latency_us_small),
            ("1600B", base.latency_us_large, cand.latency_us_large),
        ] {
            let delta_pct = if b > 0.0 { (c / b - 1.0) * 100.0 } else { 0.0 };
            let line = format!(
                "{prefix} {} {:>5} median: {:>8.2} -> {:>8.2} us ({:+.1}%)",
                base.chan_type, name, b, c, delta_pct
            );
            if delta_pct > tolerance_pct {
                out.regressions
                    .push(format!("{line}  exceeds +{tolerance_pct:.0}% tolerance"));
            }
            out.lines.push(line);
        }
        out.lines.push(format!(
            "{prefix} {} throughput:   {:>8.2} -> {:>8.2} MB/s",
            base.chan_type, base.throughput_mb_s, cand.throughput_mb_s
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("baseline", 50);
        r.channel_types = (1..=5u8)
            .map(|t| BenchChannelType {
                chan_type: t,
                latency_us_small: 100.0 + f64::from(t),
                latency_us_large: 170.0 + f64::from(t),
                throughput_mb_s: 9.25,
            })
            .collect();
        r.pingpong_sweep = vec![SweepRow {
            bytes: 1024,
            cellpilot_us: 80.5,
            dma_us: 20.25,
            copy_us: 30.75,
        }];
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = sample_report();
        r.metrics = Some(MetricsSnapshot::default());
        r.one_sided = vec![BenchChannelType {
            chan_type: 5,
            latency_us_small: 70.0,
            latency_us_large: 110.0,
            throughput_mb_s: 14.5,
        }];
        r.native_rates = Some(NativeRates {
            wall_ms: 12.5,
            events_per_sec: 48_000.0,
            msgs_per_sec: 9_600.0,
        });
        let back = BenchReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn report_without_native_rates_parses_as_none_and_gates_clean() {
        // Sim-only reports never carry the section; and a candidate that
        // gains it must not trip the gate against such a baseline.
        let base = sample_report();
        let json = base.to_json_string();
        assert!(!json.contains("native_rates"));
        let back = BenchReport::parse(&json).unwrap();
        assert!(back.native_rates.is_none());
        let mut cand = sample_report();
        cand.native_rates = Some(NativeRates {
            wall_ms: 1.0,
            events_per_sec: 2.0,
            msgs_per_sec: 3.0,
        });
        assert!(gate(&base, &cand, 20.0).passed());
    }

    #[test]
    fn report_without_one_sided_section_parses_as_empty() {
        // A pre-fabric BENCH_*.json has no one_sided key at all.
        let stripped = match sample_report().to_json() {
            Json::Obj(map) => {
                Json::Obj(map.into_iter().filter(|(k, _)| k != "one_sided").collect())
            }
            other => panic!("report must serialize to an object, got {other:?}"),
        };
        let back = BenchReport::parse(&stripped.to_pretty()).unwrap();
        assert!(back.one_sided.is_empty());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let mut r = sample_report();
        r.schema = "cellpilot-bench/999".to_string();
        let err = BenchReport::parse(&r.to_json_string()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(BenchReport::parse("{}").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = sample_report();
        let mut cand = sample_report();
        cand.channel_types[2].latency_us_small *= 1.15; // +15% < 20%
        cand.channel_types[0].latency_us_large *= 0.5; // faster is fine
        let outcome = gate(&base, &cand, 20.0);
        assert!(outcome.passed(), "{:?}", outcome.regressions);
        assert_eq!(outcome.lines.len(), 15);
    }

    #[test]
    fn gate_checks_one_sided_rows_when_baseline_has_them() {
        let one_sided_row = BenchChannelType {
            chan_type: 5,
            latency_us_small: 70.0,
            latency_us_large: 110.0,
            throughput_mb_s: 14.5,
        };
        let mut base = sample_report();
        base.one_sided = vec![one_sided_row.clone()];
        // Candidate regresses the one-sided large-message latency by 30%.
        let mut cand = sample_report();
        cand.one_sided = vec![BenchChannelType {
            latency_us_large: 143.0,
            ..one_sided_row.clone()
        }];
        let outcome = gate(&base, &cand, 20.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.lines.len(), 18);
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("one-sided type 5") && r.contains("1600B")));
        // A candidate with no one-sided section at all is a regression...
        let outcome = gate(&base, &sample_report(), 20.0);
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("one-sided type 5") && r.contains("missing")));
        // ...but a baseline without one is gated on relay rows only.
        let mut cand = sample_report();
        cand.one_sided = vec![one_sided_row];
        let outcome = gate(&sample_report(), &cand, 20.0);
        assert!(outcome.passed());
        assert_eq!(outcome.lines.len(), 15);
    }

    #[test]
    fn report_without_overload_section_parses_as_empty_and_round_trips() {
        // A pre-flow-control BENCH_*.json has no overload key at all.
        let stripped = match sample_report().to_json() {
            Json::Obj(map) => Json::Obj(map.into_iter().filter(|(k, _)| k != "overload").collect()),
            other => panic!("report must serialize to an object, got {other:?}"),
        };
        let back = BenchReport::parse(&stripped.to_pretty()).unwrap();
        assert!(back.overload.is_empty());
        // And a populated section round-trips.
        let mut r = sample_report();
        r.overload = vec![OverloadChannel {
            chan: 2,
            capacity: 4,
            queue_high_watermark: 4,
            sheds: 17,
            backpressure_waits: 31,
        }];
        let back = BenchReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn gate_fails_on_unbounded_queue_growth() {
        let base = sample_report();
        let mut cand = sample_report();
        cand.overload = vec![
            OverloadChannel {
                chan: 0,
                capacity: 8,
                queue_high_watermark: 8,
                sheds: 0,
                backpressure_waits: 12,
            },
            OverloadChannel {
                chan: 1,
                capacity: 8,
                queue_high_watermark: 9, // ledger failed to bound the queue
                sheds: 0,
                backpressure_waits: 0,
            },
        ];
        let outcome = gate(&base, &cand, 20.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        assert!(
            outcome.regressions[0].contains("chan 1")
                && outcome.regressions[0].contains("unbounded"),
            "{}",
            outcome.regressions[0]
        );
        // At-capacity watermark is the expected saturation outcome.
        cand.overload.pop();
        assert!(gate(&base, &cand, 20.0).passed());
    }

    fn sample_service_row() -> ServiceRow {
        ServiceRow {
            scenario: "type2-eager".to_string(),
            requests: 250_000,
            p50_us: 44.0,
            p99_us: 120.5,
            p999_us: 310.25,
            sustained_req_s: 18_000.0,
        }
    }

    #[test]
    fn report_service_section_round_trips_and_tolerates_absence() {
        // A pre-service BENCH_*.json has no service key at all.
        let stripped = match sample_report().to_json() {
            Json::Obj(map) => Json::Obj(map.into_iter().filter(|(k, _)| k != "service").collect()),
            other => panic!("report must serialize to an object, got {other:?}"),
        };
        let back = BenchReport::parse(&stripped.to_pretty()).unwrap();
        assert!(back.service.is_empty());
        // And a populated section round-trips.
        let mut r = sample_report();
        r.service = vec![sample_service_row()];
        let back = BenchReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn gate_checks_service_p99_when_baseline_has_rows() {
        let mut base = sample_report();
        base.service = vec![sample_service_row()];
        // +15% p99 is within a 20% tolerance.
        let mut cand = sample_report();
        cand.service = vec![ServiceRow {
            p99_us: 120.5 * 1.15,
            ..sample_service_row()
        }];
        assert!(gate(&base, &cand, 20.0).passed());
        // +30% p99 fails.
        let mut cand = sample_report();
        cand.service = vec![ServiceRow {
            p99_us: 120.5 * 1.30,
            ..sample_service_row()
        }];
        let outcome = gate(&base, &cand, 20.0);
        assert!(!outcome.passed());
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("service type2-eager") && r.contains("tolerance")));
        // Dropping a gated scenario is a regression...
        let outcome = gate(&base, &sample_report(), 20.0);
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("service type2-eager") && r.contains("missing")));
        // ...but a candidate-only scenario is informational.
        let mut cand = sample_report();
        cand.service = vec![sample_service_row()];
        assert!(gate(&sample_report(), &cand, 20.0).passed());
    }

    #[test]
    fn gate_fails_on_regression_and_missing_type() {
        let base = sample_report();
        let mut cand = sample_report();
        cand.channel_types[3].latency_us_large *= 1.30; // +30% > 20%
        cand.channel_types.remove(0);
        let outcome = gate(&base, &cand, 20.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 2);
        assert!(outcome.regressions.iter().any(|r| r.contains("type 1")));
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("type 4") && r.contains("1600B")));
    }
}
