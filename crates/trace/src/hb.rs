//! Happens-before event stream consumed by the `cp-check` DMA race
//! detector.
//!
//! The instrumented layers (cellsim's MFC, local store and mailboxes; the
//! CellPilot runtime's Co-Pilot queue) append one [`HbEvent`] per
//! ordering-relevant operation. Record order is the DES kernel's global
//! execution order (the simulation is cooperative — exactly one process
//! runs at a time), so a matching `MsgRecv` always appears *after* its
//! `MsgSend` and the analysis can replay the stream front to back.
//!
//! Like every other recording path, the stream costs a single branch when
//! the recorder is disabled and never consumes virtual time.

/// One ordering-relevant operation in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbOp {
    /// An MFC DMA command was issued on SPE `spe` of Cell node `node`.
    /// The transfer itself is asynchronous: it touches local-store bytes
    /// `[ls_start, ls_start + len)` (a *write* for a get, a *read* for a
    /// put) concurrently with the issuing program until a covering
    /// [`HbOp::DmaWait`] orders it.
    DmaIssue {
        /// Cell node id.
        node: usize,
        /// Hardware SPE index on the node.
        spe: usize,
        /// `true` for a put (LS → EA, reads local store), `false` for a
        /// get (EA → LS, writes local store).
        put: bool,
        /// MFC tag group the command was issued under.
        tag: u32,
        /// First local-store byte the transfer touches.
        ls_start: u32,
        /// Transfer length in bytes.
        len: u32,
    },
    /// The program on SPE `spe` blocked until every DMA issued under a
    /// tag in `mask` completed — an ordering edge from all covered
    /// transfers into the waiter.
    DmaWait {
        /// Cell node id.
        node: usize,
        /// Hardware SPE index on the node.
        spe: usize,
        /// Tag-group mask (bit `t` covers tag `t`).
        mask: u32,
    },
    /// A value entered the FIFO queue `queue` as its `seq`-th message
    /// (per-queue counter, starting at 0).
    MsgSend {
        /// Queue identity (mailbox label or Co-Pilot event-queue label).
        queue: String,
        /// Per-queue send sequence number.
        seq: u64,
    },
    /// The `seq`-th message of `queue` was consumed: an ordering edge
    /// from the matching [`HbOp::MsgSend`] into the receiver.
    MsgRecv {
        /// Queue identity (mailbox label or Co-Pilot event-queue label).
        queue: String,
        /// Per-queue receive sequence number.
        seq: u64,
    },
    /// The acting process read local-store bytes
    /// `[start, start + len)` of SPE `spe` on node `node` directly
    /// (program load or PPE-side copy).
    LsRead {
        /// Cell node id.
        node: usize,
        /// Hardware SPE index on the node.
        spe: usize,
        /// First byte read.
        start: u32,
        /// Length in bytes.
        len: u32,
    },
    /// The acting process wrote local-store bytes
    /// `[start, start + len)` of SPE `spe` on node `node` directly
    /// (program store or PPE/Co-Pilot-side copy).
    LsWrite {
        /// Cell node id.
        node: usize,
        /// Hardware SPE index on the node.
        spe: usize,
        /// First byte written.
        start: u32,
        /// Length in bytes.
        len: u32,
    },
    /// A one-sided `put` landed `len` bytes in the registered window of
    /// channel `chan` — local-store bytes `[start, start + len)` of SPE
    /// `spe` on node `node` — written remotely over the window fabric,
    /// bypassing the reader-side relay. Doubles as the send half of a
    /// per-channel ordering edge into the matching [`HbOp::OneSidedGet`].
    OneSidedPut {
        /// CellPilot channel id the window belongs to.
        chan: u32,
        /// Cell node id of the window.
        node: usize,
        /// Hardware SPE index holding the window.
        spe: usize,
        /// First window byte written.
        start: u32,
        /// Length in bytes.
        len: u32,
        /// Fabric put sequence number (exactly-once dedup key).
        seq: u64,
    },
    /// The owning Co-Pilot took the `seq`-th landed put out of channel
    /// `chan`'s window (local-store bytes `[start, start + len)` of SPE
    /// `spe` on node `node`): an ordering edge from the matching
    /// [`HbOp::OneSidedPut`] into the consumer.
    OneSidedGet {
        /// CellPilot channel id the window belongs to.
        chan: u32,
        /// Cell node id of the window.
        node: usize,
        /// Hardware SPE index holding the window.
        spe: usize,
        /// First window byte read.
        start: u32,
        /// Length in bytes.
        len: u32,
        /// Fabric put sequence number consumed.
        seq: u64,
    },
}

/// One recorded happens-before event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbEvent {
    /// The DES process that performed the operation (its `ProcCtx` name).
    pub actor: String,
    /// Virtual timestamp, nanoseconds (diagnostic only — the analysis
    /// orders by record position, not by timestamp).
    pub ts_ns: u64,
    /// What happened.
    pub op: HbOp,
}
