//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `proptest` to this crate. It keeps the same surface
//! syntax — `proptest! { #[test] fn f(x in strat) { .. } }`, `any::<T>()`,
//! range strategies, `collection::vec`, `prop_map`, `prop_oneof!`,
//! `prop_assert*!`, `prop_assume!` — but generates inputs with a fixed
//! per-test deterministic RNG and performs **no shrinking**: a failing case
//! panics with the generated inputs left to `assert!` formatting.
//!
//! Determinism is a feature here: the DES kernel's own property tests
//! assert bit-for-bit reproducibility, and a deterministic driver makes CI
//! failures replayable by construction.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic RNG driving input generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case: seeded from the test path and case
    /// index so every run of the binary generates identical inputs.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A case was rejected by `prop_assume!` — skip it, not a failure.
#[derive(Debug)]
pub struct Reject;

/// A generator of test inputs. The object-safe core is [`Strategy::generate`];
/// combinators requiring `Sized` are provided methods.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value from the deterministic RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// String strategy written as a `&str` pattern (e.g. `"\\PC*"`).
///
/// Real proptest interprets the pattern as a regex; this shim has no regex
/// engine and instead emits arbitrary printable-ASCII strings of length
/// 0..64, which satisfies the only pattern the workspace uses (`\PC*`,
/// "any printable characters").
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64) as usize;
        (0..len)
            .map(|_| (b' ' + rng.below(95) as u8) as char)
            .collect()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default generation strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (see [`any`]).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the default strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_float {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Finite values only (like proptest's default f64 strategy,
                // which excludes NaN and infinities): uniform magnitude in
                // [-1e6, 1e6] with occasional exact zero.
                let bits = rng.next_u64();
                if bits % 17 == 0 {
                    return 0.0;
                }
                let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                ((unit * 2.0 - 1.0) * 1.0e6) as $t
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    /// The candidate strategies, one of which is drawn per case.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! with no arms");
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Allowed lengths for [`vec`], convertible from a range or exact size.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Items re-exported by `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Runner internals used by the generated test bodies.
pub mod test_runner {
    pub use crate::{ProptestConfig, Reject, TestRng};
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("prop_assume! rejected the generated inputs")
    }
}

/// Asserts a condition inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$(::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>),+],
        }
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ..) { .. }`
/// becomes a normal test that runs `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                // Rejected cases (prop_assume!) are skipped; failures panic
                // inside the closure via prop_assert!.
                drop(__outcome);
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Payload {
        Bytes(Vec<u8>),
        Words(Vec<i32>),
    }

    fn arb_payload() -> impl Strategy<Value = Payload> {
        prop_oneof![
            crate::collection::vec(any::<u8>(), 0..16).prop_map(Payload::Bytes),
            crate::collection::vec(any::<i32>(), 0..16).prop_map(Payload::Words),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds.
        #[test]
        fn range_bounds(x in 3usize..17, y in 1u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0i32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
        }

        #[test]
        fn tuples_and_oneof((flag, p) in (any::<bool>(), arb_payload())) {
            let _ = flag;
            match p {
                Payload::Bytes(b) => prop_assert!(b.len() < 16),
                Payload::Words(w) => prop_assert!(w.len() < 16),
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let gen = |case| {
            let mut rng = crate::TestRng::for_case("det", case);
            strat.generate(&mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(1), gen(2));
    }
}
