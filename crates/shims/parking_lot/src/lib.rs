//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses (`Mutex`, `MutexGuard`, `Condvar`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `parking_lot` to this crate. Semantics match
//! `parking_lot` where it differs from `std::sync`:
//!
//! * `Mutex::lock` returns the guard directly (no poisoning `Result`);
//!   a panic while holding the lock does not poison it for later users.
//! * `Condvar::wait` takes `&mut MutexGuard` rather than consuming it.
//!
//! Internally everything is backed by `std::sync`; poison errors are
//! swallowed by recovering the inner guard.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with the `parking_lot` calling convention:
/// `lock()` returns the guard directly and never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// underlying `std` guard out and put the re-acquired one back; it is always
/// `Some` outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable whose `wait` takes `&mut MutexGuard`, matching
/// `parking_lot::Condvar`.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// re-acquiring the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Atomically releases the guard's mutex and blocks until notified or
    /// `timeout` elapses, re-acquiring the mutex before returning. Matches
    /// `parking_lot::Condvar::wait_for`: inspect the result with
    /// [`WaitTimeoutResult::timed_out`].
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a [`Condvar::wait_for`], matching
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Nobody notifies: the wait must time out.
        {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            let res = cv.wait_for(&mut ready, std::time::Duration::from_millis(5));
            assert!(res.timed_out());
        }
        // With a notifier the wait returns without timing out.
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                let res = cv.wait_for(&mut ready, std::time::Duration::from_secs(30));
                if res.timed_out() {
                    panic!("notification lost");
                }
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn no_poison_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
