//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen_range` / `gen_bool` / `gen`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this crate. The generator is a
//! xoshiro256** seeded via splitmix64 — deterministic for a given seed on
//! every platform, which is all the simulation code relies on (nothing in
//! the repo depends on matching upstream `StdRng`'s exact stream).

#![forbid(unsafe_code)]

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Builds a value from 64 random bits.
    fn sample(bits: u64) -> Self;
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, as rand_core does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3i32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u64..=20);
            assert!((1..=20).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
