//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses (`Criterion`, benchmark groups, `criterion_group!`/`criterion_main!`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `criterion` to this crate. It performs a simple
//! timed-loop measurement (median of `sample_size` wall-clock samples) and
//! prints one line per benchmark — enough to compare runs by eye, with no
//! statistical analysis, plotting, or baselines.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Entry point handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints `group/id: <median>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        nanos: Vec::with_capacity(samples),
    };
    f(&mut b);
    b.nanos.sort_unstable();
    let median = b.nanos.get(b.nanos.len() / 2).copied().unwrap_or(0);
    println!(
        "bench {label}: median {median} ns over {} samples",
        b.nanos.len()
    );
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    /// Runs `f` once per sample, recording wall-clock time for each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.nanos.push(t0.elapsed().as_nanos());
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
