//! Golden sim-trace digest for the `dacs_tour` example scenario: the
//! DaCS baseline's remote-memory roundtrip, scatter/gather collectives,
//! and footprint rejection replayed under `Simulation::with_trace`, with
//! the `(time, pid)` dispatch trace pinned by an FNV-1a digest. Any change
//! to DaCS costs or event ordering drifts the digest here first.

use cp_cellsim::{CellCosts, CellNode, LS_SIZE};
use cp_dacs::{DacsHost, MemPerm, SPE_LIB_FOOTPRINT};
use cp_des::Simulation;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn tour_trace() -> String {
    let cell = CellNode::new(0, 8, 1 << 20, CellCosts::default());
    let mut sim = Simulation::with_trace();
    let cell2 = cell.clone();
    sim.spawn("host-element", move |ctx| {
        let dacs = DacsHost::init(cell2.clone());
        assert_eq!(dacs.num_available_children(), 8);

        // Remote-memory roundtrip: an AE gets, transforms, puts back.
        let base = cell2.mem.alloc(256, 16).unwrap();
        cell2.mem.write(base.0 as usize, &[3u8; 128]).unwrap();
        let mem = dacs.remote_mem_create(base, 256, MemPerm::ReadWrite);
        let pid = dacs
            .de_start(ctx, 0, "transform", 8192, move |ae| {
                let len = ae.remote_mem_query(mem).unwrap();
                let ls = ae.local_store().alloc(128, 16).unwrap();
                ae.get(mem, 0, ls, 128, 0).unwrap();
                ae.wait(0);
                let data = ae.local_store().read(ls, 128).unwrap();
                let tripled: Vec<u8> = data.iter().map(|&b| b * 3).collect();
                ae.local_store().write(ls, &tripled).unwrap();
                ae.put(mem, 128, ls, 128, 1).unwrap();
                ae.wait(1);
                ae.local_store().free(ls).unwrap();
                ae.mailbox_write(len as u32);
            })
            .unwrap();
        assert_eq!(dacs.mailbox_read(ctx, 0), 256);
        let out = cell2.mem.read(base.0 as usize + 128, 128).unwrap();
        assert_eq!(out, vec![9u8; 128]);
        ctx.join(pid);
        dacs.remote_mem_release(mem).unwrap();

        // Scatter/gather over three AEs.
        let aes = [1usize, 2, 3];
        let mut pids = Vec::new();
        for &hw in &aes {
            pids.push(
                dacs.de_start(ctx, hw, "collect", 4096, move |ae| {
                    let part = ae.scatter_recv().unwrap();
                    let sum: u32 = part.iter().map(|&b| u32::from(b)).sum();
                    ae.gather_send(&sum.to_be_bytes()).unwrap();
                })
                .unwrap(),
            );
        }
        let parts: Vec<Vec<u8>> = (0..3).map(|k| vec![k as u8 + 1; 64]).collect();
        dacs.scatter(ctx, &aes, &parts).unwrap();
        let sums = dacs.gather(ctx, &aes, 4).unwrap();
        for (k, s) in sums.iter().enumerate() {
            let v = u32::from_be_bytes(s[..4].try_into().unwrap());
            assert_eq!(v, (k as u32 + 1) * 64);
        }
        for p in pids {
            ctx.join(p);
        }

        // The footprint squeeze must reject an image CellPilot could load.
        let big = LS_SIZE - SPE_LIB_FOOTPRINT + 1;
        assert!(dacs.de_start(ctx, 0, "too-big", big, |_| {}).is_err());
    });
    let report = sim.run().unwrap();
    let trace = report.trace.expect("with_trace records dispatches");
    let mut rendered = String::new();
    for (at, pid) in trace {
        rendered.push_str(&format!("t={} pid={}\n", at.as_nanos(), pid));
    }
    rendered
}

#[test]
fn golden_trace_dacs_tour() {
    let a = tour_trace();
    let b = tour_trace();
    assert!(!a.is_empty(), "tour produced no dispatch trace");
    assert_eq!(a, b, "dacs_tour replay must be byte-identical");
    assert_eq!(
        fnv1a(&a),
        0x2345_c6b1_e6b7_cfb8,
        "dacs_tour trace digest drifted (got {:#018x})",
        fnv1a(&a)
    );
}
