//! DaCS for Hybrid (DaCSH): the off-node layer.
//!
//! The paper's Figure 1: one non-Cell (x86-64) node is the Host Element
//! for the cluster and every Cell node's PPE is one of its Accelerator
//! Elements; each PPE is in turn the HE of its own SPEs (the local level in
//! [`crate::local`]). Communication is strictly parent↔child — an AE
//! cannot talk to a sibling AE, which is exactly the inflexibility the
//! paper contrasts CellPilot's free-form channels against.

use cp_mpisim::{Comm, Datatype, Rank};

/// Reserved tag for DaCSH parent↔child traffic.
const TAG_DACSH: i32 = 900_000;

/// Errors from the hybrid layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridError {
    /// The peer is not this element's parent or child.
    NotRelated {
        /// The calling element's rank.
        me: Rank,
        /// The unrelated peer.
        peer: Rank,
    },
}

impl std::fmt::Display for HybridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HybridError::NotRelated { me, peer } => write!(
                f,
                "dacsh: rank {me} and rank {peer} are not parent/child — \
                 the DaCS hierarchy permits no sibling communication"
            ),
        }
    }
}

impl std::error::Error for HybridError {}

/// One element of the hybrid hierarchy, bound to an MPI rank.
pub struct HybridElement<'a> {
    comm: &'a Comm,
    parent: Option<Rank>,
    children: Vec<Rank>,
}

impl<'a> HybridElement<'a> {
    /// The cluster HE: the non-Cell node's rank with its Cell-PPE children.
    pub fn host(comm: &'a Comm, children: Vec<Rank>) -> HybridElement<'a> {
        HybridElement {
            comm,
            parent: None,
            children,
        }
    }

    /// A PPE accelerator element under `parent` (itself possibly a local
    /// HE for its SPEs).
    pub fn accelerator(comm: &'a Comm, parent: Rank) -> HybridElement<'a> {
        HybridElement {
            comm,
            parent: Some(parent),
            children: Vec::new(),
        }
    }

    fn check_related(&self, peer: Rank) -> Result<(), HybridError> {
        if self.parent == Some(peer) || self.children.contains(&peer) {
            Ok(())
        } else {
            Err(HybridError::NotRelated {
                me: self.comm.rank(),
                peer,
            })
        }
    }

    /// `dacs_send_v`: blocking byte send to a parent or child.
    pub fn send_v(&self, peer: Rank, data: Vec<u8>) -> Result<(), HybridError> {
        self.check_related(peer)?;
        let n = data.len();
        self.comm
            .send_bytes(peer, TAG_DACSH, Datatype::Byte, n, data);
        Ok(())
    }

    /// `dacs_recv_v`: blocking byte receive from a parent or child.
    pub fn recv_v(&self, peer: Rank) -> Result<Vec<u8>, HybridError> {
        self.check_related(peer)?;
        let m = self.comm.recv(Some(peer), Some(TAG_DACSH));
        Ok(m.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_mpisim::{mpirun, MpiCosts};
    use cp_simnet::{ClusterSpec, NodeId};

    #[test]
    fn parent_child_exchange_works() {
        let spec = ClusterSpec::two_cells_one_xeon();
        // Rank 0 = cluster HE on the Xeon; ranks 1,2 = PPE AEs.
        let placement = vec![NodeId(2), NodeId(0), NodeId(1)];
        mpirun(&spec, placement, MpiCosts::default(), |comm| {
            match comm.rank() {
                0 => {
                    let he = HybridElement::host(&comm, vec![1, 2]);
                    he.send_v(1, vec![10]).unwrap();
                    he.send_v(2, vec![20]).unwrap();
                    assert_eq!(he.recv_v(1).unwrap(), vec![11]);
                    assert_eq!(he.recv_v(2).unwrap(), vec![21]);
                }
                r => {
                    let ae = HybridElement::accelerator(&comm, 0);
                    let v = ae.recv_v(0).unwrap();
                    ae.send_v(0, vec![v[0] + 1]).unwrap();
                    let _ = r;
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn sibling_communication_is_refused() {
        let spec = ClusterSpec::two_cells_one_xeon();
        let placement = vec![NodeId(2), NodeId(0), NodeId(1)];
        mpirun(&spec, placement, MpiCosts::default(), |comm| {
            if comm.rank() == 1 {
                let ae = HybridElement::accelerator(&comm, 0);
                assert_eq!(
                    ae.send_v(2, vec![1]),
                    Err(HybridError::NotRelated { me: 1, peer: 2 })
                );
            }
        })
        .unwrap();
    }
}
