#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-dacs — a DaCS-like hierarchical baseline library
//!
//! Reimplements the slice of IBM's Data Communication and Synchronization
//! library (and its DaCSH hybrid extension) that the paper compares
//! CellPilot against: a strict Host-Element/Accelerator-Element hierarchy
//! with remote memory regions, `put`/`get`/`wait` transfers, mailboxes,
//! and parent↔child-only messaging. Used by the footprint experiment
//! (`libdacs.a` = 36 600 B of local store vs `cellpilot.o` = 10 336 B) and
//! the code-size comparison of Section IV.C.

mod hybrid;
mod local;

pub use hybrid::{HybridElement, HybridError};
pub use local::{DacsAe, DacsError, DacsHost, MemPerm, RemoteMem, SPE_LIB_FOOTPRINT};
