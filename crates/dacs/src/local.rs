//! DaCS local level: a Host Element (the PPE) managing Accelerator
//! Elements (its SPEs).
//!
//! Mirrors the Cell SDK library the paper evaluates against: remote memory
//! regions created by the host and queried by accelerators, `dacs_put` /
//! `dacs_get` transfers with work-item waits, and parent↔child mailbox
//! messages. Two properties the paper calls out are reproduced
//! deliberately: **no direct AE↔AE communication** (the hierarchy is
//! strict), and a large SPE-resident library footprint
//! ([`SPE_LIB_FOOTPRINT`] = 36 600 bytes vs CellPilot's 10 336).

use cp_cellsim::{CellNode, DmaDir, Ea, SpeRunError};
use cp_des::{Pid, ProcCtx};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Bytes of SPE local store `libdacs.a` occupies (paper Section V).
pub const SPE_LIB_FOOTPRINT: usize = 36_600;

/// Permissions of a remote memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPerm {
    /// Accelerators may only read the region.
    ReadOnly,
    /// Accelerators may read and write.
    ReadWrite,
}

/// A handle to a host-created remote memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteMem(pub u32);

/// Errors from the DaCS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DacsError {
    /// Unknown remote memory handle.
    NoSuchMem(u32),
    /// Write attempted on a read-only region.
    PermissionDenied(u32),
    /// Access outside the region.
    OutOfRange {
        /// The region id.
        mem: u32,
        /// Offset of the offending access.
        offset: usize,
        /// Its length.
        len: usize,
    },
    /// Underlying SPE start failure.
    Spe(SpeRunError),
    /// Underlying DMA failure.
    Dma(String),
}

impl std::fmt::Display for DacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DacsError::NoSuchMem(id) => write!(f, "dacs: no such remote mem {id}"),
            DacsError::PermissionDenied(id) => {
                write!(f, "dacs: remote mem {id} is read-only")
            }
            DacsError::OutOfRange { mem, offset, len } => {
                write!(
                    f,
                    "dacs: access [{offset}..+{len}] outside remote mem {mem}"
                )
            }
            DacsError::Spe(e) => write!(f, "dacs: {e}"),
            DacsError::Dma(e) => write!(f, "dacs: {e}"),
        }
    }
}

impl std::error::Error for DacsError {}

impl From<SpeRunError> for DacsError {
    fn from(e: SpeRunError) -> Self {
        DacsError::Spe(e)
    }
}

struct MemRegion {
    base: Ea,
    len: usize,
    perm: MemPerm,
}

struct DacsShared {
    cell: Arc<CellNode>,
    mems: Mutex<HashMap<u32, MemRegion>>,
    next_mem: Mutex<u32>,
}

/// The Host Element handle (`dacs_init` on the PPE).
pub struct DacsHost {
    shared: Arc<DacsShared>,
}

/// The Accelerator Element handle given to an SPE program started with
/// [`DacsHost::de_start`].
pub struct DacsAe {
    shared: Arc<DacsShared>,
    hw: usize,
    ctx: ProcCtx,
}

impl DacsHost {
    /// Initialize the DaCS runtime for one Cell node.
    pub fn init(cell: Arc<CellNode>) -> DacsHost {
        DacsHost {
            shared: Arc::new(DacsShared {
                cell,
                mems: Mutex::new(HashMap::new()),
                next_mem: Mutex::new(1),
            }),
        }
    }

    /// How many accelerators can be reserved (`dacs_get_num_avail_children`).
    pub fn num_available_children(&self) -> usize {
        self.shared.cell.spe_count()
    }

    /// `dacs_remote_mem_create`: share `len` bytes of host memory at `base`
    /// with the accelerators.
    pub fn remote_mem_create(&self, base: Ea, len: usize, perm: MemPerm) -> RemoteMem {
        let mut next = self.shared.next_mem.lock();
        let id = *next;
        *next += 1;
        self.shared
            .mems
            .lock()
            .insert(id, MemRegion { base, len, perm });
        RemoteMem(id)
    }

    /// `dacs_remote_mem_release`.
    pub fn remote_mem_release(&self, mem: RemoteMem) -> Result<(), DacsError> {
        self.shared
            .mems
            .lock()
            .remove(&mem.0)
            .map(|_| ())
            .ok_or(DacsError::NoSuchMem(mem.0))
    }

    /// `dacs_de_start`: load and run an accelerator program on SPE `hw`.
    /// The DaCS SPE library's [`SPE_LIB_FOOTPRINT`] is reserved in the
    /// local store on top of the program image.
    pub fn de_start<F>(
        &self,
        ctx: &ProcCtx,
        hw: usize,
        name: &str,
        image_bytes: usize,
        body: F,
    ) -> Result<Pid, DacsError>
    where
        F: FnOnce(&DacsAe) + Send + 'static,
    {
        let shared = self.shared.clone();
        let pid = self.shared.cell.start_spe(
            ctx,
            hw,
            name,
            image_bytes + SPE_LIB_FOOTPRINT,
            move |sctx| {
                let ae = DacsAe {
                    shared,
                    hw,
                    ctx: sctx.clone(),
                };
                body(&ae);
            },
        )?;
        Ok(pid)
    }

    /// Host-side mailbox send to accelerator `hw` (`dacs_mailbox_write`).
    pub fn mailbox_write(&self, ctx: &ProcCtx, hw: usize, word: u32) {
        let cell = &self.shared.cell;
        cell.spes[hw].mbox.ppe_write_inbox(ctx, &cell.costs, word);
    }

    /// Host-side blocking mailbox read from accelerator `hw`.
    pub fn mailbox_read(&self, ctx: &ProcCtx, hw: usize) -> u32 {
        let cell = &self.shared.cell;
        cell.spes[hw].mbox.ppe_read_outbox(ctx, &cell.costs)
    }

    /// The underlying Cell node (for host-side buffer management).
    pub fn cell(&self) -> &Arc<CellNode> {
        &self.shared.cell
    }

    /// DaCS's "limited support for collective operations, scatter and
    /// gather, between the PPE and a list of SPEs" (paper §II.B): stage
    /// one part per accelerator in host memory and hand each its region
    /// id + length through the mailbox. Each AE completes the operation
    /// with [`DacsAe::scatter_recv`].
    pub fn scatter(
        &self,
        ctx: &ProcCtx,
        aes: &[usize],
        parts: &[Vec<u8>],
    ) -> Result<(), DacsError> {
        assert_eq!(aes.len(), parts.len(), "one part per accelerator");
        for (&hw, part) in aes.iter().zip(parts) {
            let len = part.len().max(1);
            let base = self
                .shared
                .cell
                .mem
                .alloc((len + 15) & !15, 16)
                .map_err(|e| DacsError::Dma(e.to_string()))?;
            self.shared
                .cell
                .mem
                .write(base.0 as usize, part)
                .map_err(|e| DacsError::Dma(e.to_string()))?;
            let mem = self.remote_mem_create(base, (len + 15) & !15, MemPerm::ReadOnly);
            self.mailbox_write(ctx, hw, mem.0);
            self.mailbox_write(ctx, hw, part.len() as u32);
        }
        Ok(())
    }

    /// Gather counterpart: create a writable region per accelerator,
    /// announce it, and collect once every AE acknowledges its
    /// [`DacsAe::gather_send`].
    pub fn gather(
        &self,
        ctx: &ProcCtx,
        aes: &[usize],
        bytes_per_ae: usize,
    ) -> Result<Vec<Vec<u8>>, DacsError> {
        let padded = (bytes_per_ae.max(1) + 15) & !15;
        let mut regions = Vec::new();
        for &hw in aes {
            let base = self
                .shared
                .cell
                .mem
                .alloc(padded, 16)
                .map_err(|e| DacsError::Dma(e.to_string()))?;
            let mem = self.remote_mem_create(base, padded, MemPerm::ReadWrite);
            self.mailbox_write(ctx, hw, mem.0);
            self.mailbox_write(ctx, hw, bytes_per_ae as u32);
            regions.push((base, mem));
        }
        let mut out = Vec::with_capacity(aes.len());
        for (&hw, (base, mem)) in aes.iter().zip(&regions) {
            let ack = self.mailbox_read(ctx, hw);
            debug_assert_eq!(ack, mem.0, "AE acknowledges its region");
            let data = self
                .shared
                .cell
                .mem
                .read(base.0 as usize, bytes_per_ae)
                .map_err(|e| DacsError::Dma(e.to_string()))?;
            self.remote_mem_release(*mem)?;
            out.push(data);
        }
        Ok(out)
    }
}

impl DacsAe {
    /// My accelerator index.
    pub fn index(&self) -> usize {
        self.hw
    }

    /// The simulated-process context.
    pub fn ctx(&self) -> &ProcCtx {
        &self.ctx
    }

    /// `dacs_remote_mem_query`: size of a shared region.
    pub fn remote_mem_query(&self, mem: RemoteMem) -> Result<usize, DacsError> {
        self.shared
            .mems
            .lock()
            .get(&mem.0)
            .map(|r| r.len)
            .ok_or(DacsError::NoSuchMem(mem.0))
    }

    fn region(
        &self,
        mem: RemoteMem,
        offset: usize,
        len: usize,
    ) -> Result<(Ea, MemPerm), DacsError> {
        let mems = self.shared.mems.lock();
        let r = mems.get(&mem.0).ok_or(DacsError::NoSuchMem(mem.0))?;
        if offset + len > r.len {
            return Err(DacsError::OutOfRange {
                mem: mem.0,
                offset,
                len,
            });
        }
        Ok((r.base.offset(offset as u64), r.perm))
    }

    /// `dacs_put`: local store → remote memory under work id `wid`.
    pub fn put(
        &self,
        mem: RemoteMem,
        offset: usize,
        ls_addr: usize,
        len: usize,
        wid: u32,
    ) -> Result<(), DacsError> {
        let (ea, perm) = self.region(mem, offset, len)?;
        if perm != MemPerm::ReadWrite {
            return Err(DacsError::PermissionDenied(mem.0));
        }
        self.shared
            .cell
            .dma(&self.ctx, self.hw, DmaDir::Put, wid, ls_addr, ea, len)
            .map_err(|e| DacsError::Dma(e.to_string()))
    }

    /// `dacs_get`: remote memory → local store under work id `wid`.
    pub fn get(
        &self,
        mem: RemoteMem,
        offset: usize,
        ls_addr: usize,
        len: usize,
        wid: u32,
    ) -> Result<(), DacsError> {
        let (ea, _) = self.region(mem, offset, len)?;
        self.shared
            .cell
            .dma(&self.ctx, self.hw, DmaDir::Get, wid, ls_addr, ea, len)
            .map_err(|e| DacsError::Dma(e.to_string()))
    }

    /// `dacs_wait`: block until the work id's transfers complete.
    pub fn wait(&self, wid: u32) {
        self.shared.cell.dma_wait(&self.ctx, self.hw, 1 << wid);
    }

    /// Accelerator-side mailbox send to the host.
    pub fn mailbox_write(&self, word: u32) {
        let cell = &self.shared.cell;
        cell.spes[self.hw]
            .mbox
            .spu_write_outbox(&self.ctx, &cell.costs, word);
    }

    /// Accelerator-side blocking mailbox read from the host.
    pub fn mailbox_read(&self) -> u32 {
        let cell = &self.shared.cell;
        cell.spes[self.hw]
            .mbox
            .spu_read_inbox(&self.ctx, &cell.costs)
    }

    /// My local store.
    pub fn local_store(&self) -> &cp_cellsim::LocalStore {
        &self.shared.cell.spes[self.hw].ls
    }

    /// Receive this accelerator's part of a [`DacsHost::scatter`].
    pub fn scatter_recv(&self) -> Result<Vec<u8>, DacsError> {
        let mem = RemoteMem(self.mailbox_read());
        let len = self.mailbox_read() as usize;
        let padded = (len.max(1) + 15) & !15;
        let ls = self
            .local_store()
            .alloc(padded, 16)
            .map_err(|e| DacsError::Dma(e.to_string()))?;
        self.get(mem, 0, ls, padded, 0)?;
        self.wait(0);
        let data = self
            .local_store()
            .read(ls, len)
            .map_err(|e| DacsError::Dma(e.to_string()))?;
        let _ = self.local_store().free(ls);
        Ok(data)
    }

    /// Contribute this accelerator's part to a [`DacsHost::gather`].
    pub fn gather_send(&self, data: &[u8]) -> Result<(), DacsError> {
        let mem = RemoteMem(self.mailbox_read());
        let expect = self.mailbox_read() as usize;
        assert_eq!(data.len(), expect, "gather contribution length");
        let padded = (expect.max(1) + 15) & !15;
        let ls = self
            .local_store()
            .alloc(padded, 16)
            .map_err(|e| DacsError::Dma(e.to_string()))?;
        self.local_store()
            .write(ls, data)
            .map_err(|e| DacsError::Dma(e.to_string()))?;
        self.put(mem, 0, ls, padded, 0)?;
        self.wait(0);
        let _ = self.local_store().free(ls);
        self.mailbox_write(mem.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_cellsim::CellCosts;
    use cp_des::Simulation;

    fn host() -> (Arc<CellNode>, DacsHost) {
        let cell = CellNode::new(0, 8, 1 << 20, CellCosts::default());
        (cell.clone(), DacsHost::init(cell))
    }

    #[test]
    fn footprint_is_much_larger_than_cellpilot() {
        assert_eq!(SPE_LIB_FOOTPRINT, 36_600);
        const { assert!(SPE_LIB_FOOTPRINT > 3 * 10_336) };
    }

    #[test]
    fn put_get_roundtrip_through_remote_mem() {
        let (cell, host) = host();
        let mut sim = Simulation::new();
        sim.spawn("he", move |ctx| {
            let base = cell.mem.alloc(256, 16).unwrap();
            cell.mem.write(base.0 as usize, &[7u8; 64]).unwrap();
            let mem = host.remote_mem_create(base, 256, MemPerm::ReadWrite);
            let pid = host
                .de_start(ctx, 0, "ae", 4096, move |ae| {
                    assert_eq!(ae.remote_mem_query(mem).unwrap(), 256);
                    let ls = ae.local_store().alloc(64, 16).unwrap();
                    ae.get(mem, 0, ls, 64, 3).unwrap();
                    ae.wait(3);
                    let data = ae.local_store().read(ls, 64).unwrap();
                    assert_eq!(data, vec![7u8; 64]);
                    // Transform and put back at offset 64.
                    ae.local_store().write(ls, &[9u8; 64]).unwrap();
                    ae.put(mem, 64, ls, 64, 4).unwrap();
                    ae.wait(4);
                    ae.mailbox_write(1);
                })
                .unwrap();
            assert_eq!(host.mailbox_read(ctx, 0), 1);
            let out = cell.mem.read(base.0 as usize + 64, 64).unwrap();
            assert_eq!(out, vec![9u8; 64]);
            ctx.join(pid);
        });
        sim.run().unwrap();
    }

    #[test]
    fn read_only_region_rejects_put() {
        let (cell, host) = host();
        let mut sim = Simulation::new();
        sim.spawn("he", move |ctx| {
            let base = cell.mem.alloc(64, 16).unwrap();
            let mem = host.remote_mem_create(base, 64, MemPerm::ReadOnly);
            let pid = host
                .de_start(ctx, 0, "ae", 4096, move |ae| {
                    let ls = ae.local_store().alloc(16, 16).unwrap();
                    assert_eq!(
                        ae.put(mem, 0, ls, 16, 0),
                        Err(DacsError::PermissionDenied(mem.0))
                    );
                    assert!(ae.get(mem, 0, ls, 16, 0).is_ok());
                    assert!(matches!(
                        ae.get(mem, 60, ls, 16, 0),
                        Err(DacsError::OutOfRange { .. })
                    ));
                })
                .unwrap();
            ctx.join(pid);
        });
        sim.run().unwrap();
    }

    #[test]
    fn released_mem_is_gone() {
        let (cell, host) = host();
        let mut sim = Simulation::new();
        sim.spawn("he", move |ctx| {
            let base = cell.mem.alloc(64, 16).unwrap();
            let mem = host.remote_mem_create(base, 64, MemPerm::ReadWrite);
            host.remote_mem_release(mem).unwrap();
            assert_eq!(
                host.remote_mem_release(mem),
                Err(DacsError::NoSuchMem(mem.0))
            );
            let pid = host
                .de_start(ctx, 0, "ae", 4096, move |ae| {
                    assert_eq!(ae.remote_mem_query(mem), Err(DacsError::NoSuchMem(mem.0)));
                })
                .unwrap();
            ctx.join(pid);
        });
        sim.run().unwrap();
    }

    #[test]
    fn host_scatter_gather_over_ae_list() {
        let (cell, host) = host();
        let mut sim = Simulation::new();
        sim.spawn("he", move |ctx| {
            let aes = [0usize, 1, 2];
            let mut pids = Vec::new();
            for &hw in &aes {
                let pid = host
                    .de_start(ctx, hw, "worker", 4096, move |ae| {
                        let part = ae.scatter_recv().unwrap();
                        // Double every byte and send it back.
                        let out: Vec<u8> = part.iter().map(|&b| b.wrapping_mul(2)).collect();
                        ae.gather_send(&out).unwrap();
                    })
                    .unwrap();
                pids.push(pid);
            }
            let parts: Vec<Vec<u8>> = (0..3).map(|k| vec![(k + 1) as u8; 32]).collect();
            host.scatter(ctx, &aes, &parts).unwrap();
            let gathered = host.gather(ctx, &aes, 32).unwrap();
            for (k, g) in gathered.iter().enumerate() {
                assert_eq!(g, &vec![((k + 1) * 2) as u8; 32]);
            }
            for p in pids {
                ctx.join(p);
            }
            let _ = cell;
        });
        sim.run().unwrap();
    }

    #[test]
    fn dacs_footprint_squeezes_local_store() {
        // With libdacs resident, a program image that fits under CellPilot
        // no longer fits under DaCS.
        let (cell, host) = host();
        let mut sim = Simulation::new();
        sim.spawn("he", move |ctx| {
            let big_image = 256 * 1024 - SPE_LIB_FOOTPRINT + 1;
            match host.de_start(ctx, 0, "too-big", big_image, |_| {}) {
                Err(DacsError::Spe(SpeRunError::ImageTooLarge { .. })) => {}
                other => panic!("expected ImageTooLarge, got {other:?}"),
            }
            let _ = cell;
        });
        sim.run().unwrap();
    }
}
