#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-scatter — scatter-search case study on CellPilot
//!
//! The paper's Section VI case study: "the parallelization and
//! implementation of scatter search, a well-known meta-heuristic that has
//! been successfully applied to a variety of NP-hard problems". Provides
//! the five-component sequential template on a 0/1-knapsack black box, and
//! a CellPilot master/worker parallelization whose improvement step runs
//! on SPE workers across the hybrid cluster — bit-identical to the
//! sequential search, just faster in virtual time.

mod features;
mod parallel;
mod problem;
mod scatter;

pub use features::FeatureSelect;
pub use parallel::{
    parallel_scatter_search, ParallelResult, PPE_IMPROVE_US_PER_BIT_PASS,
    SPE_IMPROVE_US_PER_BIT_PASS,
};
pub use problem::{BinaryProblem, Knapsack, MaxCut};
pub use scatter::{
    build_refset, combine, diversify, hamming, improve, scatter_search, Scored, SsParams,
};
