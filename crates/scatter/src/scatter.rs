//! The scatter-search metaheuristic: diversification, improvement,
//! reference-set update, subset generation, and solution combination.
//!
//! Classic five-component template (Glover/Laguna/Martí), specialized to
//! binary vectors. The sequential form here is also the ground truth the
//! CellPilot-parallel version (`crate::parallel`) is validated against:
//! with the same seed and parameters both explore the same candidates.

use crate::problem::BinaryProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scatter-search parameters.
#[derive(Debug, Clone)]
pub struct SsParams {
    /// Diverse trial solutions per generation.
    pub pool_size: usize,
    /// Reference-set size (b1 best + b2 diverse).
    pub refset_size: usize,
    /// Generations to run.
    pub generations: usize,
    /// Local-search bit-flip passes per improvement call.
    pub improve_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SsParams {
    fn default() -> Self {
        SsParams {
            pool_size: 20,
            refset_size: 8,
            generations: 10,
            improve_passes: 2,
            seed: 42,
        }
    }
}

/// A solution with its cached fitness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scored {
    /// The bit vector.
    pub bits: Vec<u8>,
    /// Its objective value.
    pub fitness: u64,
}

/// Hamming distance between two solutions.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).filter(|&(x, y)| x != y).count()
}

/// Diversification generator: systematic seeded binary vectors with
/// varying density, repaired to feasibility.
pub fn diversify<P: BinaryProblem>(problem: &P, count: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    (0..count)
        .map(|k| {
            let density = 0.1 + 0.8 * (k as f64 / count.max(1) as f64);
            let mut sol: Vec<u8> = (0..problem.len())
                .map(|_| u8::from(rng.gen_bool(density)))
                .collect();
            problem.repair(&mut sol);
            sol
        })
        .collect()
}

/// Improvement method: first-improvement bit-flip local search with
/// repair, `passes` sweeps. This is the compute-heavy step the parallel
/// version offloads to SPE workers.
pub fn improve<P: BinaryProblem>(problem: &P, sol: &[u8], passes: usize) -> Scored {
    let mut cur = sol.to_vec();
    problem.repair(&mut cur);
    let mut best = problem.fitness(&cur);
    for _ in 0..passes {
        let mut improved = false;
        for i in 0..cur.len() {
            let mut trial = cur.clone();
            trial[i] ^= 1;
            problem.repair(&mut trial);
            let f = problem.fitness(&trial);
            if f > best {
                best = f;
                cur = trial;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Scored {
        fitness: best,
        bits: cur,
    }
}

/// Combination method: uniform crossover biased to the fitter parent, then
/// repair.
pub fn combine<P: BinaryProblem>(problem: &P, a: &Scored, b: &Scored, rng: &mut StdRng) -> Vec<u8> {
    let bias = if a.fitness >= b.fitness { 0.65 } else { 0.35 };
    let mut child: Vec<u8> = a
        .bits
        .iter()
        .zip(&b.bits)
        .map(|(&x, &y)| if rng.gen_bool(bias) { x } else { y })
        .collect();
    problem.repair(&mut child);
    child
}

/// The reference set: the `b/2` best solutions by quality plus `b/2` most
/// diverse (max-min Hamming distance to the current set).
pub fn build_refset(pool: &mut Vec<Scored>, size: usize) -> Vec<Scored> {
    pool.sort_by(|a, b| b.fitness.cmp(&a.fitness).then(a.bits.cmp(&b.bits)));
    pool.dedup_by(|a, b| a.bits == b.bits);
    let quality = size / 2;
    let mut refset: Vec<Scored> = pool.iter().take(quality).cloned().collect();
    let mut rest: Vec<Scored> = pool.iter().skip(quality).cloned().collect();
    while refset.len() < size && !rest.is_empty() {
        let (idx, _) = rest
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let d = refset
                    .iter()
                    .map(|r| hamming(&r.bits, &s.bits))
                    .min()
                    .unwrap_or(usize::MAX);
                (i, d)
            })
            .max_by_key(|&(_, d)| d)
            .expect("rest nonempty");
        refset.push(rest.swap_remove(idx));
    }
    refset
}

/// Run sequential scatter search; returns the best solution found.
pub fn scatter_search<P: BinaryProblem>(problem: &P, params: &SsParams) -> Scored {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut pool: Vec<Scored> = diversify(problem, params.pool_size, &mut rng)
        .into_iter()
        .map(|s| improve(problem, &s, params.improve_passes))
        .collect();
    let mut refset = build_refset(&mut pool, params.refset_size);
    for _ in 0..params.generations {
        // Subset generation: all pairs of the reference set.
        let mut candidates = Vec::new();
        for i in 0..refset.len() {
            for j in (i + 1)..refset.len() {
                candidates.push(combine(problem, &refset[i], &refset[j], &mut rng));
            }
        }
        // Improvement (the expensive part).
        let mut pool: Vec<Scored> = candidates
            .iter()
            .map(|c| improve(problem, c, params.improve_passes))
            .collect();
        pool.extend(refset.iter().cloned());
        let new_refset = build_refset(&mut pool, params.refset_size);
        if new_refset == refset {
            break; // converged
        }
        refset = new_refset;
    }
    refset.into_iter().next().expect("nonempty refset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Knapsack, MaxCut};

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(&[0, 1, 1], &[1, 1, 0]), 2);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn improve_never_worsens() {
        let p = Knapsack::random(30, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for s in diversify(&p, 10, &mut rng) {
            let before = p.fitness(&s);
            let after = improve(&p, &s, 2);
            assert!(after.fitness >= before);
            assert!(
                p.weight(&after.bits) <= p.capacity,
                "improve keeps feasibility"
            );
        }
    }

    #[test]
    fn refset_mixes_quality_and_diversity() {
        let mk = |bits: Vec<u8>, fitness: u64| Scored { bits, fitness };
        let mut pool = vec![
            mk(vec![1, 1, 1, 1], 100),
            mk(vec![1, 1, 1, 0], 90),
            mk(vec![1, 1, 0, 0], 80),
            mk(vec![0, 0, 0, 0], 10),
            mk(vec![0, 0, 0, 1], 5),
        ];
        let refset = build_refset(&mut pool, 4);
        assert_eq!(refset.len(), 4);
        assert_eq!(refset[0].fitness, 100);
        assert_eq!(refset[1].fitness, 90);
        // The diverse half must include the far-away all-zeros region.
        assert!(refset.iter().any(|s| s.bits.iter().sum::<u8>() <= 1));
    }

    #[test]
    fn refset_dedups_identical_solutions() {
        let mk = |bits: Vec<u8>, fitness: u64| Scored { bits, fitness };
        let mut pool = vec![mk(vec![1, 0], 10), mk(vec![1, 0], 10), mk(vec![0, 1], 8)];
        let refset = build_refset(&mut pool, 4);
        assert_eq!(refset.len(), 2);
    }

    #[test]
    fn scatter_search_finds_optimum_on_small_instance() {
        let p = Knapsack::random(18, 3);
        let opt = p.brute_force_optimum();
        // Scatter search is stochastic: a single seed can converge to a
        // near-optimal local maximum, so run a small multi-start and
        // require the best restart to reach the true optimum.
        let best = (0..20)
            .map(|seed| {
                scatter_search(
                    &p,
                    &SsParams {
                        seed,
                        ..SsParams::default()
                    },
                )
            })
            .max_by_key(|s| s.fitness)
            .expect("at least one restart");
        assert_eq!(best.fitness, opt, "optimum {opt}, found {}", best.fitness);
    }

    #[test]
    fn zero_improve_passes_just_repairs_and_scores() {
        let p = Knapsack::random(16, 4);
        let sol = vec![1u8; 16];
        let out = improve(&p, &sol, 0);
        assert!(p.weight(&out.bits) <= p.capacity);
        assert_eq!(out.fitness, p.fitness(&out.bits));
    }

    #[test]
    fn scatter_search_is_deterministic() {
        let p = Knapsack::random(40, 9);
        let a = scatter_search(&p, &SsParams::default());
        let b = scatter_search(&p, &SsParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn scatter_search_solves_maxcut_too() {
        let p = MaxCut::random(16, 0.4, 5);
        let opt = p.brute_force_optimum();
        let best = scatter_search(&p, &SsParams::default());
        assert_eq!(best.fitness, opt, "optimum {opt}, found {}", best.fitness);
    }

    #[test]
    fn more_generations_never_hurt() {
        let p = Knapsack::random(40, 11);
        let short = scatter_search(
            &p,
            &SsParams {
                generations: 1,
                ..Default::default()
            },
        );
        let long = scatter_search(
            &p,
            &SsParams {
                generations: 12,
                ..Default::default()
            },
        );
        assert!(long.fitness >= short.fitness);
    }
}
