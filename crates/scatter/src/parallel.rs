//! Scatter search parallelized over CellPilot: the master (on a PPE)
//! maintains the reference set; SPE worker processes — potentially spread
//! over several Cell nodes — run the compute-heavy improvement step.
//!
//! The decomposition follows the paper's master/worker sketch for the
//! case study: candidates travel to workers over per-worker channels
//! (types 2 and 3, routed transparently), improved solutions come back the
//! same way, and a zero-length message is the shutdown signal. With the
//! same seed the parallel search visits exactly the candidates of
//! [`crate::scatter::scatter_search`], so results are bit-identical.

use crate::problem::BinaryProblem;
use crate::scatter::{build_refset, combine, diversify, improve, Scored, SsParams};
use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_des::SimDuration;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Modelled SPE compute cost of one improvement pass over one bit
/// (vectorized local search on the SPE's SIMD units), µs.
pub const SPE_IMPROVE_US_PER_BIT_PASS: f64 = 0.2;

/// Modelled PPE compute cost for the same work (the "relatively slow"
/// in-order PPE the paper describes), µs.
pub const PPE_IMPROVE_US_PER_BIT_PASS: f64 = 0.8;

/// Outcome of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Best solution found.
    pub best: Scored,
    /// Virtual time the whole application took, µs.
    pub virtual_us: f64,
    /// Worker count used.
    pub workers: usize,
}

/// Run scatter search with `workers` SPE workers spread round-robin over
/// the cluster's Cell nodes.
pub fn parallel_scatter_search<P: BinaryProblem>(
    problem: &P,
    params: &SsParams,
    workers: usize,
    spec: &ClusterSpec,
) -> ParallelResult {
    assert!(workers >= 1, "need at least one worker");
    let problem = Arc::new(problem.clone());
    let params = params.clone();
    // Honors CP_BACKEND so the conformance harness can run the search on
    // the native threads backend; `virtual_us` is then wall-clock µs.
    let mut cfg = CellPilotConfig::one_rank_per_node(
        spec.clone(),
        CellPilotOpts::new().with_backend_from_env(),
    );

    // One host process per additional Cell node; it launches its local SPE
    // workers and waits for them.
    let cell_nodes: Vec<usize> = spec
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, k)| k.is_cell())
        .map(|(i, _)| i)
        .collect();
    assert!(!cell_nodes.is_empty(), "scatter search needs a Cell node");
    assert_eq!(cell_nodes[0], 0, "CP_MAIN must live on a Cell node's PPE");
    let mut hosts = vec![CP_MAIN];
    for _ in &cell_nodes[1..] {
        let h = cfg
            .create_process("host", 0, |cp, _| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        hosts.push(h);
    }

    // The worker SPE program: read a candidate, improve it (charging the
    // modelled SPE compute time), send it back; stop on an empty message.
    let passes = params.improve_passes;
    let prob2 = problem.clone();
    let worker_prog = SpeProgram::new("ss-worker", 6144, move |spe, _, _| {
        let idx = spe.index() as usize;
        let task = CpChannel(2 * idx);
        let result = CpChannel(2 * idx + 1);
        loop {
            let vals = spe.read(task, "%*b").unwrap();
            let PiValue::Byte(bits) = &vals[0] else {
                unreachable!()
            };
            if bits.is_empty() {
                return;
            }
            let us = bits.len() as f64 * passes as f64 * SPE_IMPROVE_US_PER_BIT_PASS;
            spe.ctx().advance(SimDuration::from_micros_f64(us));
            let improved = improve(prob2.as_ref(), bits, passes);
            spe.write(result, "%*b", &[PiValue::Byte(improved.bits)])
                .unwrap();
        }
    });

    let mut chans = Vec::new();
    for w in 0..workers {
        let parent = hosts[w % hosts.len()];
        let s = cfg
            .create_spe_process(&worker_prog, parent, w as i32)
            .unwrap();
        let task = cfg.channel(CP_MAIN, s).build().unwrap();
        let result = cfg.channel(s, CP_MAIN).build().unwrap();
        assert_eq!((task, result), (CpChannel(2 * w), CpChannel(2 * w + 1)));
        chans.push((task, result));
    }

    let out: Arc<Mutex<Option<(Scored, f64)>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let report = cfg
        .run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            // Farm out one batch of candidates and collect in order.
            let improve_batch = |candidates: &[Vec<u8>]| -> Vec<Scored> {
                let mut improved = Vec::with_capacity(candidates.len());
                for group in candidates.chunks(workers) {
                    for (w, cand) in group.iter().enumerate() {
                        cp.write(chans[w].0, "%*b", &[PiValue::Byte(cand.clone())])
                            .unwrap();
                    }
                    for (w, _) in group.iter().enumerate() {
                        let vals = cp.read(chans[w].1, "%*b").unwrap();
                        let PiValue::Byte(bits) = &vals[0] else {
                            unreachable!()
                        };
                        improved.push(Scored {
                            fitness: problem.fitness(bits),
                            bits: bits.clone(),
                        });
                    }
                }
                improved
            };

            let t0 = cp.ctx().now();
            let mut rng = StdRng::seed_from_u64(params.seed);
            let initial = diversify(problem.as_ref(), params.pool_size, &mut rng);
            let mut pool = improve_batch(&initial);
            let mut refset = build_refset(&mut pool, params.refset_size);
            for _ in 0..params.generations {
                let mut candidates = Vec::new();
                for i in 0..refset.len() {
                    for j in (i + 1)..refset.len() {
                        candidates.push(combine(
                            problem.as_ref(),
                            &refset[i],
                            &refset[j],
                            &mut rng,
                        ));
                    }
                }
                let mut pool = improve_batch(&candidates);
                pool.extend(refset.iter().cloned());
                let new_refset = build_refset(&mut pool, params.refset_size);
                if new_refset == refset {
                    break;
                }
                refset = new_refset;
            }
            let elapsed = (cp.ctx().now() - t0).as_micros_f64();
            // Shut the workers down.
            for &(task, _) in &chans {
                cp.write(task, "%*b", &[PiValue::Byte(Vec::new())]).unwrap();
            }
            for t in ts {
                cp.wait_spe(t);
            }
            *out2.lock() = Some((refset.into_iter().next().expect("nonempty refset"), elapsed));
        })
        .expect("parallel scatter search app");
    let _ = report;
    let (best, virtual_us) = out.lock().take().expect("master stored result");
    ParallelResult {
        best,
        virtual_us,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Knapsack, MaxCut};
    use crate::scatter::scatter_search;

    #[test]
    fn parallel_equals_sequential_bit_for_bit() {
        let p = Knapsack::random(24, 5);
        let params = SsParams {
            pool_size: 10,
            refset_size: 6,
            generations: 3,
            ..Default::default()
        };
        let seq = scatter_search(&p, &params);
        let spec = ClusterSpec::two_cells_one_xeon();
        for workers in [1usize, 3] {
            let par = parallel_scatter_search(&p, &params, workers, &spec);
            assert_eq!(par.best, seq, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_cut_virtual_time() {
        let p = Knapsack::random(64, 6);
        let params = SsParams {
            pool_size: 16,
            refset_size: 8,
            generations: 2,
            ..Default::default()
        };
        let spec = ClusterSpec::two_cells_one_xeon();
        let one = parallel_scatter_search(&p, &params, 1, &spec);
        let eight = parallel_scatter_search(&p, &params, 8, &spec);
        assert_eq!(one.best, eight.best);
        assert!(
            eight.virtual_us < one.virtual_us * 0.6,
            "8 workers {:.0}us vs 1 worker {:.0}us",
            eight.virtual_us,
            one.virtual_us
        );
    }

    #[test]
    fn parallel_maxcut_matches_sequential() {
        let p = MaxCut::random(24, 0.3, 13);
        let params = SsParams {
            pool_size: 10,
            refset_size: 6,
            generations: 2,
            ..Default::default()
        };
        let spec = ClusterSpec::two_cells_one_xeon();
        let par = parallel_scatter_search(&p, &params, 4, &spec);
        assert_eq!(par.best, scatter_search(&p, &params));
    }

    #[test]
    fn thirty_two_workers_on_the_paper_cluster() {
        // 8 dual-PowerXCell blades, 4 workers per blade.
        let p = Knapsack::random(32, 21);
        let params = SsParams {
            pool_size: 32,
            refset_size: 6,
            generations: 1,
            ..Default::default()
        };
        let spec = ClusterSpec::paper();
        let par = parallel_scatter_search(&p, &params, 32, &spec);
        assert_eq!(par.best, scatter_search(&p, &params));
        assert_eq!(par.workers, 32);
    }

    #[test]
    fn workers_span_multiple_cell_nodes() {
        // 12 workers on two 8-SPE nodes forces remote (type 3) channels.
        let p = Knapsack::random(24, 8);
        let params = SsParams {
            pool_size: 12,
            refset_size: 6,
            generations: 2,
            ..Default::default()
        };
        let spec = ClusterSpec::two_cells_one_xeon();
        let par = parallel_scatter_search(&p, &params, 12, &spec);
        let seq = scatter_search(&p, &params);
        assert_eq!(par.best, seq);
    }
}
