//! Binary optimization problems for the scatter-search case study.
//!
//! The paper's Section VI: "we are forging forward with various case
//! studies for CellPilot, including the parallelization and implementation
//! of scatter search, a well-known meta-heuristic that has been
//! successfully applied to a variety of NP-hard problems, primarily in the
//! areas of combinatorial optimization". The canonical black-box binary
//! problem (after Gortazar et al., the paper's reference [22]) used here
//! is the 0/1 knapsack.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A black-box binary optimization problem (after Gortazar et al., the
/// paper's reference \[22\]: "black box scatter search for general classes
/// of binary optimization problems"). Scatter search only needs three
/// capabilities: size, objective value, and a repair operator for
/// constrained problems (unconstrained ones leave `repair` a no-op).
pub trait BinaryProblem: Clone + Send + Sync + 'static {
    /// Number of decision variables.
    fn len(&self) -> usize;

    /// True for the degenerate empty instance.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Objective value of a (feasible) solution; higher is better.
    fn fitness(&self, sol: &[u8]) -> u64;

    /// Make a solution feasible in place.
    fn repair(&self, _sol: &mut [u8]) {}

    /// Exhaustive optimum for small instances (test oracle; `len <= 24`).
    fn brute_force_optimum(&self) -> u64 {
        let n = self.len();
        assert!(n <= 24, "brute force limited to small instances");
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let mut sol: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            self.repair(&mut sol);
            best = best.max(self.fitness(&sol));
        }
        best
    }
}

/// A 0/1 knapsack instance.
#[derive(Debug, Clone)]
pub struct Knapsack {
    /// Item weights.
    pub weights: Vec<u64>,
    /// Item values.
    pub values: Vec<u64>,
    /// Weight capacity.
    pub capacity: u64,
}

impl Knapsack {
    /// A reproducible random instance with `n` items.
    pub fn random(n: usize, seed: u64) -> Knapsack {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=100)).collect();
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=100)).collect();
        let capacity = weights.iter().sum::<u64>() / 2;
        Knapsack {
            weights,
            values,
            capacity,
        }
    }

    /// Total weight of a solution (bit `i` = item `i` packed).
    pub fn weight(&self, sol: &[u8]) -> u64 {
        sol.iter()
            .zip(&self.weights)
            .filter(|&(&b, _)| b != 0)
            .map(|(_, &w)| w)
            .sum()
    }

    /// Objective value: total packed value, or 0 for infeasible solutions
    /// (simple death-penalty; repair keeps candidates feasible anyway).
    fn fitness_impl(&self, sol: &[u8]) -> u64 {
        if self.weight(sol) > self.capacity {
            return 0;
        }
        sol.iter()
            .zip(&self.values)
            .filter(|&(&b, _)| b != 0)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Make a solution feasible by dropping the worst value/weight items.
    fn repair_impl(&self, sol: &mut [u8]) {
        while self.weight(sol) > self.capacity {
            let worst = sol
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b != 0)
                .min_by(|&(i, _), &(j, _)| {
                    let ri = self.values[i] as f64 / self.weights[i] as f64;
                    let rj = self.values[j] as f64 / self.weights[j] as f64;
                    ri.partial_cmp(&rj).expect("finite ratios")
                })
                .map(|(i, _)| i)
                .expect("infeasible solution has at least one item");
            sol[worst] = 0;
        }
    }
}

impl BinaryProblem for Knapsack {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn fitness(&self, sol: &[u8]) -> u64 {
        self.fitness_impl(sol)
    }

    fn repair(&self, sol: &mut [u8]) {
        self.repair_impl(sol)
    }
}

/// A MAX-CUT instance: maximize the total weight of edges crossing a
/// vertex bipartition (unconstrained — `repair` is the identity).
#[derive(Debug, Clone)]
pub struct MaxCut {
    n: usize,
    /// `(u, v, w)` edges, `u < v`.
    pub edges: Vec<(usize, usize, u64)>,
}

impl MaxCut {
    /// A reproducible random graph with `n` vertices and edge probability
    /// `density`.
    pub fn random(n: usize, density: f64, seed: u64) -> MaxCut {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(density) {
                    edges.push((u, v, rng.gen_range(1..=20)));
                }
            }
        }
        MaxCut { n, edges }
    }
}

impl BinaryProblem for MaxCut {
    fn len(&self) -> usize {
        self.n
    }

    fn fitness(&self, sol: &[u8]) -> u64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| sol[u] != sol[v])
            .map(|&(_, _, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitness_and_weight() {
        let p = Knapsack {
            weights: vec![2, 3, 5],
            values: vec![10, 20, 30],
            capacity: 5,
        };
        assert_eq!(p.fitness(&[1, 1, 0]), 30);
        assert_eq!(p.weight(&[1, 1, 0]), 5);
        assert_eq!(p.fitness(&[1, 1, 1]), 0, "infeasible scores zero");
        assert_eq!(p.fitness(&[0, 0, 0]), 0);
    }

    #[test]
    fn repair_reaches_feasibility_dropping_poor_ratios() {
        let p = Knapsack {
            weights: vec![5, 5, 5],
            values: vec![50, 10, 40],
            capacity: 10,
        };
        let mut sol = vec![1, 1, 1];
        p.repair(&mut sol);
        assert!(p.weight(&sol) <= 10);
        // The value-10 item has the worst ratio and goes first.
        assert_eq!(sol, vec![1, 0, 1]);
    }

    #[test]
    fn random_is_reproducible() {
        let a = Knapsack::random(20, 7);
        let b = Knapsack::random(20, 7);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.values, b.values);
        let c = Knapsack::random(20, 8);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn maxcut_fitness_counts_crossing_edges() {
        let p = MaxCut {
            n: 4,
            edges: vec![(0, 1, 5), (1, 2, 7), (2, 3, 2), (0, 3, 1)],
        };
        // Partition {0,2} vs {1,3}: all four edges cross.
        assert_eq!(p.fitness(&[0, 1, 0, 1]), 15);
        // Everyone on one side: nothing crosses.
        assert_eq!(p.fitness(&[1, 1, 1, 1]), 0);
        // Repair is the identity for unconstrained problems.
        let mut sol = vec![1, 0, 1, 0];
        p.repair(&mut sol);
        assert_eq!(sol, vec![1, 0, 1, 0]);
    }

    #[test]
    fn maxcut_random_reproducible_and_bruteforceable() {
        let a = MaxCut::random(10, 0.5, 3);
        let b = MaxCut::random(10, 0.5, 3);
        assert_eq!(a.edges, b.edges);
        assert!(a.brute_force_optimum() > 0);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn empty_maxcut_is_degenerate_but_valid() {
        let p = MaxCut {
            n: 0,
            edges: vec![],
        };
        assert!(p.is_empty());
        assert_eq!(p.fitness(&[]), 0);
    }

    #[test]
    fn brute_force_on_tiny_instance() {
        let p = Knapsack {
            weights: vec![1, 2, 3],
            values: vec![6, 10, 12],
            capacity: 5,
        };
        assert_eq!(p.brute_force_optimum(), 22); // items 2+3
    }
}
