//! Feature selection as a binary optimization problem — the paper's other
//! scatter-search domain (§VI cites "machine learning \[23\]": a
//! scatter-search-based ensemble approach to classification accuracy).
//!
//! A solution's bit `i` selects feature `i`; fitness is the leave-one-out
//! accuracy of a nearest-centroid classifier on a synthetic two-class
//! dataset, scaled to integer points, minus a small per-feature penalty —
//! so the search must find the informative features and drop the noise.

use crate::problem::BinaryProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A feature-selection instance over a synthetic labelled dataset.
#[derive(Debug, Clone)]
pub struct FeatureSelect {
    /// `samples[s][f]` — feature `f` of sample `s`.
    samples: Vec<Vec<f64>>,
    /// Class label (0/1) per sample.
    labels: Vec<u8>,
    /// Which features are genuinely informative (test oracle).
    informative: Vec<usize>,
    /// Fitness penalty per selected feature.
    penalty: u64,
}

impl FeatureSelect {
    /// A reproducible instance: `n_features` features of which
    /// `n_informative` carry class signal, over `n_samples` samples.
    pub fn random(
        n_features: usize,
        n_informative: usize,
        n_samples: usize,
        seed: u64,
    ) -> FeatureSelect {
        assert!(n_informative <= n_features);
        let mut rng = StdRng::seed_from_u64(seed);
        // Deterministically choose which features are informative.
        let mut idx: Vec<usize> = (0..n_features).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        let informative: Vec<usize> = {
            let mut v = idx[..n_informative].to_vec();
            v.sort_unstable();
            v
        };
        let mut samples = Vec::with_capacity(n_samples);
        let mut labels = Vec::with_capacity(n_samples);
        for s in 0..n_samples {
            let label = (s % 2) as u8;
            let shift = if label == 0 { -1.2 } else { 1.2 };
            let row: Vec<f64> = (0..n_features)
                .map(|f| {
                    let noise: f64 = rng.gen_range(-1.0..1.0);
                    if informative.contains(&f) {
                        shift + noise
                    } else {
                        noise * 2.0
                    }
                })
                .collect();
            samples.push(row);
            labels.push(label);
        }
        FeatureSelect {
            samples,
            labels,
            informative,
            penalty: 2,
        }
    }

    /// The ground-truth informative feature set (for tests).
    pub fn informative_features(&self) -> &[usize] {
        &self.informative
    }

    /// Leave-one-out nearest-centroid accuracy over the selected features,
    /// in per-mille (0..=1000).
    fn loo_accuracy_permille(&self, sol: &[u8]) -> u64 {
        let selected: Vec<usize> = sol
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b != 0)
            .map(|(f, _)| f)
            .collect();
        if selected.is_empty() {
            return 0;
        }
        let n = self.samples.len();
        let mut correct = 0usize;
        for held in 0..n {
            // Class centroids over the selected features, excluding `held`.
            let mut sums = [vec![0.0; selected.len()], vec![0.0; selected.len()]];
            let mut counts = [0usize; 2];
            for s in 0..n {
                if s == held {
                    continue;
                }
                let c = self.labels[s] as usize;
                counts[c] += 1;
                for (k, &f) in selected.iter().enumerate() {
                    sums[c][k] += self.samples[s][f];
                }
            }
            let dist = |c: usize| -> f64 {
                selected
                    .iter()
                    .enumerate()
                    .map(|(k, &f)| {
                        let centroid = sums[c][k] / counts[c].max(1) as f64;
                        let d = self.samples[held][f] - centroid;
                        d * d
                    })
                    .sum()
            };
            let predicted = u8::from(dist(1) < dist(0));
            if predicted == self.labels[held] {
                correct += 1;
            }
        }
        (correct * 1000 / n) as u64
    }
}

impl BinaryProblem for FeatureSelect {
    fn len(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    fn fitness(&self, sol: &[u8]) -> u64 {
        let acc = self.loo_accuracy_permille(sol);
        let k = sol.iter().filter(|&&b| b != 0).count() as u64;
        acc.saturating_sub(self.penalty * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::{scatter_search, SsParams};

    #[test]
    fn informative_features_beat_noise_features() {
        let p = FeatureSelect::random(12, 3, 40, 7);
        let mut good = vec![0u8; 12];
        for &f in p.informative_features() {
            good[f] = 1;
        }
        let mut noisy = vec![0u8; 12];
        for f in 0..12 {
            if !p.informative_features().contains(&f) {
                noisy[f] = 1;
                if noisy.iter().filter(|&&b| b != 0).count() == 3 {
                    break;
                }
            }
        }
        assert!(
            p.fitness(&good) > p.fitness(&noisy) + 200,
            "signal {} vs noise {}",
            p.fitness(&good),
            p.fitness(&noisy)
        );
    }

    #[test]
    fn empty_selection_scores_zero() {
        let p = FeatureSelect::random(8, 2, 20, 1);
        assert_eq!(p.fitness(&[0u8; 8]), 0);
    }

    #[test]
    fn scatter_search_recovers_the_signal_features() {
        let p = FeatureSelect::random(14, 3, 40, 11);
        let best = scatter_search(
            &p,
            &SsParams {
                pool_size: 16,
                refset_size: 6,
                generations: 6,
                ..Default::default()
            },
        );
        // The per-feature penalty may make one redundant informative
        // feature not worth keeping, but everything *selected* must carry
        // signal — no noise features survive.
        let selected: Vec<usize> = best
            .bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b != 0)
            .map(|(f, _)| f)
            .collect();
        assert!(!selected.is_empty());
        for &f in &selected {
            assert!(
                p.informative_features().contains(&f),
                "noise feature {f} selected (informative: {:?})",
                p.informative_features()
            );
        }
        // And classification should be near-perfect.
        assert!(best.fitness > 900, "fitness {}", best.fitness);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = FeatureSelect::random(10, 2, 20, 5);
        let b = FeatureSelect::random(10, 2, 20, 5);
        assert_eq!(a.informative_features(), b.informative_features());
        assert_eq!(a.fitness(&[1u8; 10]), b.fitness(&[1u8; 10]));
    }
}
