//! Exit-code contract of the repro/gate binaries: a CI step must never
//! silently no-op on a mistyped flag (`--seeds 0` used to run zero seeds
//! and exit 0). Usage errors exit 2; failed experiments exit 1.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("binary spawns")
}

fn assert_usage_error(out: &Output, what: &str) {
    assert_eq!(out.status.code(), Some(2), "{what}: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{what} stderr: {stderr}");
}

#[test]
fn repro_chaos_rejects_zero_seeds_and_unknown_flags() {
    let bin = env!("CARGO_BIN_EXE_repro_chaos");
    assert_usage_error(&run(bin, &["--seeds", "0"]), "--seeds 0");
    assert_usage_error(&run(bin, &["--seeds"]), "missing value");
    assert_usage_error(&run(bin, &["--seeds", "x"]), "non-numeric");
    assert_usage_error(&run(bin, &["--sedes", "8"]), "typoed flag");
}

#[test]
fn repro_explore_rejects_zero_seeds_and_unknown_flags() {
    let bin = env!("CARGO_BIN_EXE_repro_explore");
    assert_usage_error(&run(bin, &["--seeds", "0"]), "--seeds 0");
    assert_usage_error(&run(bin, &["--frobnicate"]), "unknown flag");
}

#[test]
fn repro_table2_rejects_bad_flags() {
    let bin = env!("CARGO_BIN_EXE_repro_table2");
    assert_usage_error(&run(bin, &["--reps", "0"]), "--reps 0");
    assert_usage_error(&run(bin, &["--json"]), "missing path");
    assert_usage_error(&run(bin, &["--bogus"]), "unknown flag");
}

/// `repro_check` carries a three-way exit contract so CI can assert both
/// directions of the analysis: 3 = findings reported (the seeded-defect
/// default mode caught everything), 0 = clean (the fenced/repaired twin
/// drew no false positives), 2 = usage error.
#[test]
fn repro_check_exit_codes_follow_the_contract() {
    let bin = env!("CARGO_BIN_EXE_repro_check");

    let findings = run(bin, &[]);
    assert_eq!(findings.status.code(), Some(3), "{findings:?}");
    let stdout = String::from_utf8_lossy(&findings.stdout);
    for code in ["CP001", "CP002", "CP003", "CP006", "CP007", "CP101"] {
        assert!(stdout.contains(code), "missing {code} in: {stdout}");
    }

    let clean = run(bin, &["--fenced"]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("verdict: clean"), "{stdout}");

    assert_usage_error(&run(bin, &["--bogus"]), "unknown flag");
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cp-bench-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fixture_json(scale: f64) -> String {
    use cp_trace::{BenchChannelType, BenchReport};
    let mut r = BenchReport::new("fixture", 5);
    r.channel_types = (1..=5u8)
        .map(|t| BenchChannelType {
            chan_type: t,
            latency_us_small: (50.0 + f64::from(t)) * scale,
            latency_us_large: (150.0 + f64::from(t)) * scale,
            throughput_mb_s: 9.25 / scale,
        })
        .collect();
    r.to_json_string()
}

#[test]
fn bench_gate_passes_within_tolerance_and_fails_beyond() {
    let bin = env!("CARGO_BIN_EXE_bench_gate");
    assert_usage_error(&run(bin, &[]), "missing flags");
    assert_usage_error(
        &run(
            bin,
            &["--baseline", "/nonexistent", "--candidate", "/nonexistent"],
        ),
        "unreadable files",
    );

    let base = scratch("base.json");
    let same = scratch("same.json");
    let slow = scratch("slow.json");
    std::fs::write(&base, fixture_json(1.0)).unwrap();
    std::fs::write(&same, fixture_json(1.05)).unwrap(); // +5% < 20%
    std::fs::write(&slow, fixture_json(1.5)).unwrap(); // +50% > 20%

    let ok = run(
        bin,
        &[
            "--baseline",
            base.to_str().unwrap(),
            "--candidate",
            same.to_str().unwrap(),
        ],
    );
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");

    let bad = run(
        bin,
        &[
            "--baseline",
            base.to_str().unwrap(),
            "--candidate",
            slow.to_str().unwrap(),
        ],
    );
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("gate FAILED"), "{stderr}");
    assert!(
        stderr.contains("refresh the baseline"),
        "failure must explain the refresh procedure: {stderr}"
    );
}

#[test]
fn repro_table2_writes_a_parseable_bench_report() {
    let bin = env!("CARGO_BIN_EXE_repro_table2");
    let path = scratch("BENCH_test.json");
    let out = run(
        bin,
        &[
            "--reps",
            "1",
            "--json",
            path.to_str().unwrap(),
            "--label",
            "test",
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let report = cp_trace::BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(report.label, "test");
    assert_eq!(report.channel_types.len(), 5);
    assert!(!report.pingpong_sweep.is_empty());
}
