//! Exit-code contract of the repro/gate binaries: a CI step must never
//! silently no-op on a mistyped flag (`--seeds 0` used to run zero seeds
//! and exit 0). Usage errors exit 2; failed experiments exit 1.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("binary spawns")
}

fn assert_usage_error(out: &Output, what: &str) {
    assert_eq!(out.status.code(), Some(2), "{what}: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{what} stderr: {stderr}");
}

#[test]
fn repro_chaos_rejects_zero_seeds_and_unknown_flags() {
    let bin = env!("CARGO_BIN_EXE_repro_chaos");
    assert_usage_error(&run(bin, &["--seeds", "0"]), "--seeds 0");
    assert_usage_error(&run(bin, &["--seeds"]), "missing value");
    assert_usage_error(&run(bin, &["--seeds", "x"]), "non-numeric");
    assert_usage_error(&run(bin, &["--sedes", "8"]), "typoed flag");
}

#[test]
fn repro_explore_rejects_zero_seeds_and_unknown_flags() {
    let bin = env!("CARGO_BIN_EXE_repro_explore");
    assert_usage_error(&run(bin, &["--seeds", "0"]), "--seeds 0");
    assert_usage_error(&run(bin, &["--frobnicate"]), "unknown flag");
}

#[test]
fn repro_table2_rejects_bad_flags() {
    let bin = env!("CARGO_BIN_EXE_repro_table2");
    assert_usage_error(&run(bin, &["--reps", "0"]), "--reps 0");
    assert_usage_error(&run(bin, &["--json"]), "missing path");
    assert_usage_error(&run(bin, &["--bogus"]), "unknown flag");
}

/// `repro_check` carries a three-way exit contract so CI can assert both
/// directions of the analysis: 3 = findings reported (the seeded-defect
/// default mode caught everything), 0 = clean (the fenced/repaired twin
/// drew no false positives), 2 = usage error.
#[test]
fn repro_check_exit_codes_follow_the_contract() {
    let bin = env!("CARGO_BIN_EXE_repro_check");

    let findings = run(bin, &[]);
    assert_eq!(findings.status.code(), Some(3), "{findings:?}");
    let stdout = String::from_utf8_lossy(&findings.stdout);
    for code in [
        "CP001", "CP002", "CP003", "CP006", "CP007", "CP101", "CP201", "CP202", "CP203", "CP204",
    ] {
        assert!(stdout.contains(code), "missing {code} in: {stdout}");
    }
    assert!(stdout.contains("advice[CP203]"), "{stdout}");

    let clean = run(bin, &["--fenced"]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("verdict: clean"), "{stdout}");

    assert_usage_error(&run(bin, &["--bogus"]), "unknown flag");
    assert_usage_error(&run(bin, &["--baseline"]), "missing baseline path");
    assert_usage_error(
        &run(bin, &["--baseline", "/nonexistent/cp-check.baseline"]),
        "unreadable baseline",
    );
}

/// The committed repo-root baseline covers every seeded finding: the
/// default run gated on it exits 0 — that file IS the debt register the
/// CI lint gate trusts, so this test is what keeps it honest.
#[test]
fn repro_check_committed_baseline_covers_the_seeded_findings() {
    let bin = env!("CARGO_BIN_EXE_repro_check");
    let repo_baseline = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../cp-check.baseline");
    let out = run(bin, &["--baseline", repo_baseline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("13 finding(s) suppressed, 0 remain"),
        "{stdout}"
    );
    assert!(stdout.contains("verdict: clean"), "{stdout}");
}

/// `--write-baseline` round-trips: a freshly generated baseline makes
/// the very next run clean.
#[test]
fn repro_check_write_baseline_round_trips() {
    let bin = env!("CARGO_BIN_EXE_repro_check");
    let path = scratch("cp-check.baseline");
    let wrote = run(bin, &["--write-baseline", path.to_str().unwrap()]);
    assert_eq!(wrote.status.code(), Some(0), "{wrote:?}");
    let gated = run(bin, &["--baseline", path.to_str().unwrap()]);
    assert_eq!(gated.status.code(), Some(0), "{gated:?}");
}

/// `--json` appends a machine-readable findings list and `--sarif-out`
/// writes a parseable SARIF 2.1.0 log; both carry the full code set.
#[test]
fn repro_check_emits_parseable_json_and_sarif() {
    let bin = env!("CARGO_BIN_EXE_repro_check");
    let sarif_path = scratch("cp-check.sarif");
    let out = run(
        bin,
        &["--json", "--sarif-out", sarif_path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    // The JSON document runs from the first `{` on its own line to the
    // matching top-level `}` (the verdict line follows it).
    let stdout = String::from_utf8_lossy(&out.stdout);
    let start = stdout.find("{\n").expect("a JSON document in stdout");
    let end = start + stdout[start..].find("\n}").expect("document closes") + 2;
    let doc = cp_trace::Json::parse(&stdout[start..end]).expect("stdout JSON parses");
    let findings = doc.get("findings").and_then(|f| f.as_arr()).unwrap();
    assert_eq!(findings.len(), 13, "{stdout}");
    let codes: Vec<&str> = findings
        .iter()
        .filter_map(|f| f.get("code").and_then(|c| c.as_str()))
        .collect();
    for code in ["CP001", "CP101", "CP201", "CP202", "CP203", "CP204"] {
        assert!(codes.contains(&code), "missing {code} in {codes:?}");
    }
    assert!(findings.iter().all(|f| {
        f.get("severity").and_then(|s| s.as_str()).is_some()
            && f.get("endpoints").and_then(|e| e.as_arr()).is_some()
    }));

    let sarif = cp_trace::Json::parse(&std::fs::read_to_string(&sarif_path).unwrap())
        .expect("SARIF parses");
    assert_eq!(
        sarif.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "{sarif:?}"
    );
    let results = sarif
        .get("runs")
        .and_then(|r| r.as_arr())
        .and_then(|r| r[0].get("results"))
        .and_then(|r| r.as_arr())
        .unwrap();
    assert_eq!(results.len(), 13);
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cp-bench-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fixture_json(scale: f64) -> String {
    use cp_trace::{BenchChannelType, BenchReport};
    let mut r = BenchReport::new("fixture", 5);
    r.channel_types = (1..=5u8)
        .map(|t| BenchChannelType {
            chan_type: t,
            latency_us_small: (50.0 + f64::from(t)) * scale,
            latency_us_large: (150.0 + f64::from(t)) * scale,
            throughput_mb_s: 9.25 / scale,
        })
        .collect();
    r.to_json_string()
}

#[test]
fn bench_gate_passes_within_tolerance_and_fails_beyond() {
    let bin = env!("CARGO_BIN_EXE_bench_gate");
    assert_usage_error(&run(bin, &[]), "missing flags");
    assert_usage_error(
        &run(
            bin,
            &["--baseline", "/nonexistent", "--candidate", "/nonexistent"],
        ),
        "unreadable files",
    );

    let base = scratch("base.json");
    let same = scratch("same.json");
    let slow = scratch("slow.json");
    std::fs::write(&base, fixture_json(1.0)).unwrap();
    std::fs::write(&same, fixture_json(1.05)).unwrap(); // +5% < 20%
    std::fs::write(&slow, fixture_json(1.5)).unwrap(); // +50% > 20%

    let ok = run(
        bin,
        &[
            "--baseline",
            base.to_str().unwrap(),
            "--candidate",
            same.to_str().unwrap(),
        ],
    );
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");

    let bad = run(
        bin,
        &[
            "--baseline",
            base.to_str().unwrap(),
            "--candidate",
            slow.to_str().unwrap(),
        ],
    );
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("gate FAILED"), "{stderr}");
    assert!(
        stderr.contains("refresh the baseline"),
        "failure must explain the refresh procedure: {stderr}"
    );
}

#[test]
fn repro_table2_writes_a_parseable_bench_report() {
    let bin = env!("CARGO_BIN_EXE_repro_table2");
    let path = scratch("BENCH_test.json");
    let out = run(
        bin,
        &[
            "--reps",
            "1",
            "--json",
            path.to_str().unwrap(),
            "--label",
            "test",
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let report = cp_trace::BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(report.label, "test");
    assert_eq!(report.channel_types.len(), 5);
    assert!(!report.pingpong_sweep.is_empty());
}
