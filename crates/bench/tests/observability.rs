//! Observability-layer integration tests: the metrics pin the paper's
//! routing claims (Table I), and the BENCH report schema is frozen by a
//! golden file.

use cellpilot::CellPilotOpts;
use cp_bench::cellpilot_pingpong_with;
use cp_bench::WARMUP;
use cp_trace::{BenchChannelType, BenchReport, MetricsSnapshot, Recorder, SweepRow};

fn traced_pingpong(chan_type: u8, bytes: usize, reps: usize) -> MetricsSnapshot {
    let rec = Recorder::enabled();
    let opts = CellPilotOpts::new().with_tracing(rec.clone());
    cellpilot_pingpong_with(chan_type, bytes, reps, opts);
    rec.snapshot()
}

/// Table I: a type-4 channel is a same-node SPE↔SPE pairing the Co-Pilot
/// serves with one local `memcpy` — nothing ever touches MPI, and no
/// proxy hop is recorded.
#[test]
fn type4_pingpong_moves_zero_mpi_payload_bytes() {
    let snap = traced_pingpong(4, 1600, 3);
    assert_eq!(
        snap.mpi.payload_bytes, 0,
        "a local type-4 run must not move any payload over MPI: {snap:?}"
    );
    let t4 = &snap.channel_types[3];
    assert_eq!(t4.chan_type, 4);
    let round_trips = (WARMUP + 3) as u64;
    assert_eq!(t4.writes, 2 * round_trips, "two writes per round trip");
    assert_eq!(t4.reads, 2 * round_trips);
    assert_eq!(t4.proxy_hops, 0, "type 4 is pure memcpy, no relay");
    assert!(t4.latency_us.median > 0.0);
}

/// Table I: a type-5 message is relayed by two Co-Pilots — the writer's
/// side forwards over MPI, the reader's side delivers into the local
/// store. Exactly two proxy hops per message.
#[test]
fn type5_pingpong_records_two_relay_hops_per_message() {
    let snap = traced_pingpong(5, 64, 3);
    let t5 = &snap.channel_types[4];
    assert_eq!(t5.chan_type, 5);
    let messages = 2 * (WARMUP + 3) as u64; // two messages per round trip
    assert_eq!(t5.writes, messages);
    assert_eq!(
        t5.proxy_hops,
        2 * messages,
        "every type-5 message crosses exactly two Co-Pilot hops: {snap:?}"
    );
    assert!(
        snap.mpi.payload_bytes > 0,
        "remote SPE↔SPE traffic rides MPI between the Co-Pilots"
    );
}

fn schema_fixture() -> BenchReport {
    let mut r = BenchReport::new("golden", 5);
    r.channel_types = (1..=5u8)
        .map(|t| BenchChannelType {
            chan_type: t,
            latency_us_small: 50.0 + f64::from(t) * 0.5,
            latency_us_large: 150.0 + f64::from(t),
            throughput_mb_s: 9.25,
        })
        .collect();
    r.pingpong_sweep = vec![
        SweepRow {
            bytes: 1,
            cellpilot_us: 51.5,
            dma_us: 15.0,
            copy_us: 14.5,
        },
        SweepRow {
            bytes: 1024,
            cellpilot_us: 120.25,
            dma_us: 40.0,
            copy_us: 75.5,
        },
    ];
    r.metrics = Some(MetricsSnapshot::default());
    r
}

/// The BENCH_*.json schema is a contract with the CI gate (and any
/// dashboards reading the artifacts): its rendering is pinned byte for
/// byte by a golden file. If this fails because of a deliberate schema
/// change, bump [`cp_trace::BENCH_SCHEMA`] and regenerate the golden with
/// `BLESS=1 cargo test -p cp-bench --test observability`.
#[test]
fn bench_json_schema_matches_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/bench_schema.json"
    );
    let rendered = schema_fixture().to_json_string();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect("golden file committed");
    assert_eq!(
        rendered, golden,
        "BENCH json schema drifted from tests/golden/bench_schema.json"
    );
}

#[test]
fn bench_json_round_trips() {
    let r = schema_fixture();
    let back = BenchReport::parse(&r.to_json_string()).unwrap();
    assert_eq!(back, r);
}
