//! The acceptance scenario behind `repro_faults`: a scripted link drop at
//! a fixed virtual time on a type-5 channel recovers through the retry
//! machinery, and replaying the identical plan yields a byte-identical
//! trace.

use cellpilot::{
    render_trace, CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, SpeProgram, CP_MAIN,
};
use cp_des::{SimDuration, SimReport, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId};
use std::sync::Arc;

fn run_scenario(plan: Option<Arc<FaultPlan>>) -> (SimReport, String) {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut opts = CellPilotOpts::new().with_trace();
    if let Some(p) = plan {
        opts = opts.with_faults(p);
    }
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let sender = SpeProgram::new("sender", 2048, |spe, _, _| {
        spe.ctx().advance(SimDuration::from_micros(300));
        spe.write_slice(CpChannel(0), &(0..100).collect::<Vec<i32>>())
            .unwrap();
    });
    let receiver = SpeProgram::new("receiver", 2048, |spe, _, _| {
        let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
        assert_eq!(v, (0..100).collect::<Vec<i32>>());
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let a = cfg.create_spe_process(&sender, CP_MAIN, 0).unwrap();
    let b = cfg.create_spe_process(&receiver, parent, 0).unwrap();
    let chan = cfg.channel(a, b).build().unwrap();
    assert_eq!(cfg.channel_kind(chan).unwrap(), ChannelKind::Type5);
    let (report, trace) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
    (report, render_trace(&trace))
}

fn drop_plan() -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new().drop_link(
        NodeId(0),
        NodeId(1),
        SimTime::ZERO + SimDuration::from_micros(200),
        SimTime(u64::MAX),
        2,
    ))
}

/// The drops engage (the faulted run is strictly slower than a healthy
/// one), yet the transfer succeeds — recovery is invisible to the
/// application.
#[test]
fn link_drops_recover_via_retry() {
    let (healthy, _) = run_scenario(None);
    let (faulted, _) = run_scenario(Some(drop_plan()));
    assert!(
        faulted.end_time > healthy.end_time,
        "retries must cost virtual time: faulted {} vs healthy {}",
        faulted.end_time,
        healthy.end_time
    );
}

/// Two runs of the same scripted scenario produce byte-identical rendered
/// traces and the same virtual end time.
#[test]
fn scripted_fault_replay_is_byte_identical() {
    let (report_a, trace_a) = run_scenario(Some(drop_plan()));
    let (report_b, trace_b) = run_scenario(Some(drop_plan()));
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b);
    assert_eq!(report_a.end_time, report_b.end_time);
    assert_eq!(report_a.incidents, report_b.incidents);
}
