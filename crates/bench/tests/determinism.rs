//! The experiment harness itself is deterministic: measuring twice gives
//! bit-identical virtual-time results for every cell of Table II, and the
//! ping-pong helpers agree with themselves.

use cp_bench::{cellpilot_pingpong, measure_table2};

#[test]
fn table2_reproduces_exactly() {
    let a = measure_table2(3);
    let b = measure_table2(3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.chan_type, y.chan_type);
        assert_eq!(x.bytes, y.bytes);
        assert_eq!(x.cellpilot_us.to_bits(), y.cellpilot_us.to_bits());
        assert_eq!(x.dma_us.to_bits(), y.dma_us.to_bits());
        assert_eq!(x.copy_us.to_bits(), y.copy_us.to_bits());
    }
}

#[test]
fn pingpong_latency_is_independent_of_reps() {
    // A deterministic simulator has zero variance: per-round latency must
    // not depend on how many timed rounds we average over.
    let short = cellpilot_pingpong(2, 1, 5).one_way_us;
    let long = cellpilot_pingpong(2, 1, 40).one_way_us;
    assert!(
        (short - long).abs() < 1e-6,
        "steady-state latency drifted: {short} vs {long}"
    );
}
