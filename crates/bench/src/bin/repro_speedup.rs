//! Case-study table (paper §VI): scatter-search speedup as SPE workers are
//! added, on the two-blade cluster. Parallel quality is bit-identical to
//! the sequential reference at every point.

use cp_scatter::{parallel_scatter_search, scatter_search, Knapsack, SsParams};
use cp_simnet::ClusterSpec;

fn main() {
    let problem = Knapsack::random(80, 2011);
    let params = SsParams {
        pool_size: 20,
        refset_size: 8,
        generations: 6,
        ..Default::default()
    };
    let seq = scatter_search(&problem, &params);
    let spec = ClusterSpec::two_cells_one_xeon();
    println!(
        "scatter search, 80-item knapsack, best value {}",
        seq.fitness
    );
    println!("{:>8} {:>14} {:>10}", "workers", "virtual time", "speedup");
    let mut base = 0.0;
    for workers in [1usize, 2, 4, 8, 12, 16] {
        let r = parallel_scatter_search(&problem, &params, workers, &spec);
        assert_eq!(r.best, seq, "quality must not depend on parallelism");
        if workers == 1 {
            base = r.virtual_us;
        }
        println!(
            "{:>8} {:>11.0} us {:>9.2}x",
            workers,
            r.virtual_us,
            base / r.virtual_us
        );
    }
}
