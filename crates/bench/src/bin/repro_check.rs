//! `cp-check` static-analysis repro: run the configure-time wiring
//! verifier over a graph seeded with one of every defect class, and the
//! happens-before race detector over an SPE program whose unfenced MFC
//! get/put pair overlaps in local store.
//!
//! Usage: `repro_check [--fenced]`
//!
//! Default mode demonstrates the catch: the seeded defects and the racy
//! program must both produce findings, printed one per line, and the
//! binary exits 3. With `--fenced` the repaired twin runs instead — the
//! clean graph and the properly fenced program must produce nothing, and
//! the binary exits 0. Any other outcome (a missed defect shows up as a
//! clean exit in default mode; a false positive as exit 3 under
//! `--fenced`) fails the CI smoke step. Usage errors exit 2.

use cp_bench::check::{clean_graph, dma_repro, seeded_defect_graph};
use cp_bench::cli::unknown_flag;
use cp_check::render;

const USAGE: &str = "repro_check [--fenced]";

fn main() {
    let mut fenced = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--fenced" => fenced = true,
            other => unknown_flag(USAGE, other),
        }
    }

    let mode = if fenced {
        "fenced/clean (expect no findings)"
    } else {
        "seeded defects (expect findings)"
    };
    println!("cp-check repro — {mode}\n");

    let graph = if fenced {
        clean_graph()
    } else {
        seeded_defect_graph()
    };
    let wiring = cp_check::verify(&graph);
    println!("wiring verifier: {} finding(s)", wiring.len());
    if !wiring.is_empty() {
        println!("{}", render(&wiring));
    }

    let races = dma_repro(fenced);
    println!("\nrace detector: {} finding(s)", races.len());
    if !races.is_empty() {
        println!("{}", render(&races));
    }

    if wiring.is_empty() && races.is_empty() {
        println!("\nverdict: clean");
        std::process::exit(0);
    }
    println!("\nverdict: findings reported");
    std::process::exit(3);
}
