//! `cp-check` static-analysis repro: run the configure-time wiring
//! verifier and progress analyzer over a graph seeded with one of every
//! defect class, and the happens-before race detector over an SPE
//! program whose unfenced MFC get/put pair overlaps in local store.
//!
//! Usage: `repro_check [--fenced] [--json] [--baseline PATH]
//! [--write-baseline PATH] [--sarif-out PATH]`
//!
//! Default mode demonstrates the catch: the seeded defects and the racy
//! program must both produce findings, printed one per line, and the
//! binary exits 3. With `--fenced` the repaired twin runs instead — the
//! clean graph and the properly fenced program must produce nothing, and
//! the binary exits 0. Any other outcome (a missed defect shows up as a
//! clean exit in default mode; a false positive as exit 3 under
//! `--fenced`) fails the CI smoke step. Usage errors exit 2.
//!
//! `--baseline PATH` loads a committed baseline file and drops every
//! finding whose fingerprint it lists before deciding the exit code — a
//! fully baselined run exits 0. `--write-baseline PATH` regenerates that
//! file from the current findings (and exits 0: recording debt is not a
//! failure). `--sarif-out PATH` writes the surviving findings as a SARIF
//! 2.1.0 log for code-scanning upload, and `--json` appends a
//! machine-readable findings list to stdout.

use cp_bench::check::{clean_graph, dma_repro, seeded_defect_graph};
use cp_bench::cli::{parse_str_flag, unknown_flag, usage_error};
use cp_check::{render, Diagnostic, LintConfig};
use cp_trace::Json;

const USAGE: &str =
    "repro_check [--fenced] [--json] [--baseline PATH] [--write-baseline PATH] [--sarif-out PATH]";

/// The machine-readable findings list behind `--json`: one object per
/// surviving finding, stably ordered the same way `render` orders them.
fn findings_json(diags: &[Diagnostic]) -> Json {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| {
        (a.code, &a.endpoints, &a.message).cmp(&(b.code, &b.endpoints, &b.message))
    });
    let arr: Vec<Json> = sorted
        .iter()
        .map(|d| {
            let mut o = Json::obj();
            o.set("code", d.code.as_str());
            o.set("severity", d.severity.to_string());
            o.set("message", d.message.as_str());
            o.set(
                "endpoints",
                d.endpoints
                    .iter()
                    .map(|e| Json::from(e.as_str()))
                    .collect::<Vec<Json>>(),
            );
            o
        })
        .collect();
    let mut root = Json::obj();
    root.set("findings", arr);
    root
}

fn main() {
    let mut fenced = false;
    let mut json = false;
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut sarif_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fenced" => fenced = true,
            "--json" => json = true,
            "--baseline" => baseline = Some(parse_str_flag(USAGE, "--baseline", args.next())),
            "--write-baseline" => {
                write_baseline = Some(parse_str_flag(USAGE, "--write-baseline", args.next()))
            }
            "--sarif-out" => sarif_out = Some(parse_str_flag(USAGE, "--sarif-out", args.next())),
            other => unknown_flag(USAGE, other),
        }
    }

    let mode = if fenced {
        "fenced/clean (expect no findings)"
    } else {
        "seeded defects (expect findings)"
    };
    println!("cp-check repro — {mode}\n");

    let graph = if fenced {
        clean_graph()
    } else {
        seeded_defect_graph()
    };
    let mut wiring = cp_check::verify(&graph);
    wiring.extend(cp_check::analyze(&graph));
    println!("wiring passes: {} finding(s)", wiring.len());
    if !wiring.is_empty() {
        println!("{}", render(&wiring));
    }

    let races = dma_repro(fenced);
    println!("\nrace detector: {} finding(s)", races.len());
    if !races.is_empty() {
        println!("{}", render(&races));
    }

    let mut all = wiring;
    all.extend(races);

    if let Some(path) = write_baseline {
        let text = LintConfig::baseline_text(&all);
        if let Err(e) = std::fs::write(&path, &text) {
            usage_error(USAGE, &format!("cannot write baseline {path:?}: {e}"));
        }
        println!(
            "\nbaseline written: {path} ({} fingerprint(s))",
            text.lines()
                .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
                .count()
        );
        std::process::exit(0);
    }

    let remaining = match baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => usage_error(USAGE, &format!("cannot read baseline {path:?}: {e}")),
            };
            let cfg = LintConfig::new().with_baseline(&text);
            let kept = cfg.apply(all.clone());
            println!(
                "\nbaseline {path}: {} finding(s) suppressed, {} remain",
                all.len() - kept.len(),
                kept.len()
            );
            kept
        }
        None => all,
    };

    if let Some(path) = sarif_out {
        if let Err(e) = std::fs::write(&path, cp_check::to_sarif(&remaining)) {
            usage_error(USAGE, &format!("cannot write SARIF {path:?}: {e}"));
        }
        println!("\nSARIF written: {path}");
    }

    if json {
        println!("{}", findings_json(&remaining).to_pretty());
    }

    if remaining.is_empty() {
        println!("\nverdict: clean");
        std::process::exit(0);
    }
    println!("\nverdict: findings reported");
    std::process::exit(3);
}
