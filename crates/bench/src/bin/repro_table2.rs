//! Regenerate the paper's Table II: one-way latency (µs) of the five
//! channel types under CellPilot, hand-coded DMA, and hand-coded copy,
//! for 1-byte (`%b`) and 1600-byte (`%100Lf`) payloads.
//!
//! With `--json PATH` the per-type medians (plus the type-2 PingPong
//! payload sweep) are also written as a machine-readable
//! `BENCH_<label>.json` report — the document the CI perf gate diffs
//! against the committed `BENCH_baseline.json` (see `bench_gate`).

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag};

const USAGE: &str = "repro_table2 [--reps N] [--json PATH] [--label L]";

fn main() {
    let mut reps: usize = 50;
    let mut json_path: Option<String> = None;
    let mut label = "local".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = parse_int_flag(USAGE, "--reps", args.next(), 1, 100_000) as usize,
            "--json" => json_path = Some(parse_str_flag(USAGE, "--json", args.next())),
            "--label" => label = parse_str_flag(USAGE, "--label", args.next()),
            other => unknown_flag(USAGE, other),
        }
    }

    println!("Reproducing Table II ({reps} timed repetitions per cell)...\n");
    let cells = cp_bench::measure_table2(reps);
    print!("{}", cp_bench::render_table2(&cells));
    println!();
    let mut worst: (f64, String) = (0.0, String::new());
    for c in &cells {
        let (p_cp, p_dma, p_copy) = c.paper();
        for (m, p, label) in [
            (c.cellpilot_us, p_cp, "CellPilot"),
            (c.dma_us, p_dma, "DMA"),
            (c.copy_us, p_copy, "Copy"),
        ] {
            let err = (m / p - 1.0).abs();
            if err > worst.0 {
                worst = (err, format!("type {} {}B {label}", c.chan_type, c.bytes));
            }
        }
    }
    println!(
        "Worst relative deviation from the paper: {:.0}% ({})",
        worst.0 * 100.0,
        worst.1
    );

    if let Some(path) = json_path {
        let report = cp_bench::bench_report(&label, reps);
        if let Err(e) = std::fs::write(&path, report.to_json_string()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote bench report '{label}' to {path}");
    }
}
