//! Regenerate the paper's Table II: one-way latency (µs) of the five
//! channel types under CellPilot, hand-coded DMA, and hand-coded copy,
//! for 1-byte (`%b`) and 1600-byte (`%100Lf`) payloads.
//!
//! With `--json PATH` the per-type medians (plus the type-2 PingPong
//! payload sweep) are also written as a machine-readable
//! `BENCH_<label>.json` report — the document the CI perf gate diffs
//! against the committed `BENCH_baseline.json` (see `bench_gate`).

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag};

const USAGE: &str = "repro_table2 [--reps N] [--json PATH] [--label L] [--ablate-one-sided]";

fn main() {
    let mut reps: usize = 50;
    let mut json_path: Option<String> = None;
    let mut label = "local".to_string();
    let mut ablate_one_sided = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = parse_int_flag(USAGE, "--reps", args.next(), 1, 100_000) as usize,
            "--json" => json_path = Some(parse_str_flag(USAGE, "--json", args.next())),
            "--label" => label = parse_str_flag(USAGE, "--label", args.next()),
            "--ablate-one-sided" => ablate_one_sided = true,
            other => unknown_flag(USAGE, other),
        }
    }

    println!("Reproducing Table II ({reps} timed repetitions per cell)...\n");
    let cells = cp_bench::measure_table2(reps);
    print!("{}", cp_bench::render_table2(&cells));
    println!();
    let mut worst: (f64, String) = (0.0, String::new());
    for c in &cells {
        let (p_cp, p_dma, p_copy) = c.paper();
        for (m, p, label) in [
            (c.cellpilot_us, p_cp, "CellPilot"),
            (c.dma_us, p_dma, "DMA"),
            (c.copy_us, p_copy, "Copy"),
        ] {
            let err = (m / p - 1.0).abs();
            if err > worst.0 {
                worst = (err, format!("type {} {}B {label}", c.chan_type, c.bytes));
            }
        }
    }
    println!(
        "Worst relative deviation from the paper: {:.0}% ({})",
        worst.0 * 100.0,
        worst.1
    );

    let one_sided = if ablate_one_sided {
        let rows = cp_bench::one_sided_rows(reps);
        println!("\nOne-sided (window fabric) vs relay, CellPilot medians:");
        println!("  type   1B relay  1B 1-sided  1600B relay  1600B 1-sided  speedup");
        for row in &rows {
            let relay = cells
                .iter()
                .find(|c| c.chan_type == row.chan_type && c.bytes == 1600)
                .expect("Table II covers every type at 1600 B");
            let relay_small = cells
                .iter()
                .find(|c| c.chan_type == row.chan_type && c.bytes == 1)
                .expect("Table II covers every type at 1 B");
            println!(
                "  {:>4} {:>9.2} {:>11.2} {:>12.2} {:>14.2} {:>7.2}x",
                row.chan_type,
                relay_small.cellpilot_us,
                row.latency_us_small,
                relay.cellpilot_us,
                row.latency_us_large,
                relay.cellpilot_us / row.latency_us_large,
            );
        }
        rows
    } else {
        Vec::new()
    };

    if let Some(path) = json_path {
        let mut report = cp_bench::bench_report(&label, reps);
        report.one_sided = one_sided;
        if let Err(e) = std::fs::write(&path, report.to_json_string()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote bench report '{label}' to {path}");
    }
}
