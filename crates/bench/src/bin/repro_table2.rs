//! Regenerate the paper's Table II: one-way latency (µs) of the five
//! channel types under CellPilot, hand-coded DMA, and hand-coded copy,
//! for 1-byte (`%b`) and 1600-byte (`%100Lf`) payloads.

fn main() {
    let reps = 50;
    println!("Reproducing Table II ({reps} timed repetitions per cell)...\n");
    let cells = cp_bench::measure_table2(reps);
    print!("{}", cp_bench::render_table2(&cells));
    println!();
    let mut worst: (f64, String) = (0.0, String::new());
    for c in &cells {
        let (p_cp, p_dma, p_copy) = c.paper();
        for (m, p, label) in [
            (c.cellpilot_us, p_cp, "CellPilot"),
            (c.dma_us, p_dma, "DMA"),
            (c.copy_us, p_copy, "Copy"),
        ] {
            let err = (m / p - 1.0).abs();
            if err > worst.0 {
                worst = (err, format!("type {} {}B {label}", c.chan_type, c.bytes));
            }
        }
    }
    println!(
        "Worst relative deviation from the paper: {:.0}% ({})",
        worst.0 * 100.0,
        worst.1
    );
}
