//! Heavy-traffic service workload: a non-Cell front tier fans seeded
//! request/response traffic at SPE worker pools over channel types 2–5
//! and judges the runtime by its tail latency.
//!
//! The default sweep runs every scenario (`type2-direct`,
//! `type4-local-hop`, `type5-remote-hop`, `chaos-failover`) over 4 seeds
//! at 65536 requests each — 1,048,576 requests total — and prints each
//! run's p50/p99/p999 latency and sustained request rate. Every reply is
//! checked at the front tier; a failed run is a complete bug report
//! (rerun with the same seed to replay it).
//!
//! Usage: `repro_service [--requests N] [--seeds N] [--ablate-eager]
//! [--bench-out PATH] [--trace-out PATH]`
//!
//! * `--ablate-eager` re-runs each fault-free scenario with eager
//!   inlining disabled and checks the median-latency speedup: at least
//!   2x on the local-hop route (where per-message Co-Pilot protocol cost
//!   dominates), and never a loss elsewhere.
//! * `--bench-out` writes the `service` BENCH section (seed-1 rows) the
//!   CI perf gate diffs against the committed baseline.
//! * `--trace-out` writes a Chrome `trace_event` export of a short
//!   chaos-failover run — the artifact CI uploads when the sweep or the
//!   gate finds something.
//!
//! Exit status: 0 when every run passes, 3 on findings, 2 on usage
//! errors.

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag};
use cp_bench::{ablation, service, service_traced, ServiceScenario};
use cp_trace::BenchReport;

const USAGE: &str =
    "repro_service [--requests N] [--seeds N] [--ablate-eager] [--bench-out PATH] [--trace-out PATH]";

fn main() {
    let mut requests: u64 = 65536;
    let mut n_seeds: u64 = 4;
    let mut ablate = false;
    let mut bench_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => {
                requests = parse_int_flag(USAGE, "--requests", args.next(), 1, 100_000_000)
            }
            "--seeds" => n_seeds = parse_int_flag(USAGE, "--seeds", args.next(), 1, 1_000_000),
            "--ablate-eager" => ablate = true,
            "--bench-out" => bench_out = Some(parse_str_flag(USAGE, "--bench-out", args.next())),
            "--trace-out" => trace_out = Some(parse_str_flag(USAGE, "--trace-out", args.next())),
            other => unknown_flag(USAGE, other),
        }
    }

    let scenarios = ServiceScenario::all();
    let total = requests * n_seeds * scenarios.len() as u64;
    println!(
        "service sweep: {} scenarios x {n_seeds} seeds x {requests} requests = {total} requests\n",
        scenarios.len()
    );
    let mut failures = 0u64;
    let mut rows = Vec::new();
    for &scenario in &scenarios {
        for seed in 1..=n_seeds {
            match service(scenario, seed, requests as usize, true) {
                Ok(r) => {
                    println!(
                        "  {scenario:>16} seed {seed:>2}: p50 {:>8.2} us  p99 {:>8.2} us  \
                         p999 {:>8.2} us  {:>9.0} req/s  end {}",
                        r.latency_us.p50,
                        r.latency_us.p99,
                        r.latency_us.p999,
                        r.sustained_req_s,
                        r.end_time
                    );
                    // The BENCH section carries the seed-1 rows — the same
                    // runs the sweep just did, not a separate measurement.
                    if seed == 1 {
                        rows.push(r.to_row());
                    }
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("  {scenario:>16} seed {seed:>2}: FAILED: {e}");
                }
            }
        }
    }

    if ablate {
        println!("\neager-inlining ablation (same seeded stream, eager off):");
        for scenario in [
            ServiceScenario::Type2Direct,
            ServiceScenario::Type4LocalHop,
            ServiceScenario::Type5RemoteHop,
        ] {
            match ablation(scenario, 1, 4096) {
                Ok(a) => {
                    // The local-hop route is dominated by per-message
                    // Co-Pilot protocol cost — the inline fast path must
                    // at least halve its median. The MPI-transit-bound
                    // routes share their wire and software fixed costs
                    // with the DMA path, so there eager merely must win.
                    let floor = if scenario == ServiceScenario::Type4LocalHop {
                        2.0
                    } else {
                        1.0
                    };
                    let verdict = if a.speedup >= floor { "ok" } else { "FAIL" };
                    println!(
                        "  {scenario:>16}: eager p50 {:>8.2} us  dma p50 {:>8.2} us  \
                         speedup {:.2}x (floor {floor:.1}x) {verdict}",
                        a.eager_p50_us, a.ablate_p50_us, a.speedup
                    );
                    if a.speedup < floor {
                        failures += 1;
                    }
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("  {scenario:>16}: ablation FAILED: {e}");
                }
            }
        }
    }

    // Artifacts are written even when the sweep found something — a
    // failing CI run uploads them as the replay evidence.
    let mut artifacts_failed = false;
    if let Some(path) = bench_out {
        let mut report = BenchReport::new("service", requests);
        report.service = rows;
        if let Err(e) = std::fs::write(&path, report.to_json_string()) {
            eprintln!("error: cannot write {path}: {e}");
            artifacts_failed = true;
        } else {
            println!("\nwrote service BENCH section to {path}");
        }
    }
    if let Some(path) = trace_out {
        // A short chaos run: the Co-Pilot death, the failover, and the
        // tail spike are all visible in a few hundred requests.
        match service_traced(ServiceScenario::ChaosFailover, 1, 512, true) {
            Ok((_, rec)) => {
                if let Err(e) = std::fs::write(&path, rec.chrome_trace()) {
                    eprintln!("error: cannot write {path}: {e}");
                    artifacts_failed = true;
                } else {
                    println!("wrote Chrome trace of a chaos-failover run to {path}");
                }
            }
            Err(e) => {
                eprintln!("traced run failed: {e}");
                artifacts_failed = true;
            }
        }
    }

    if failures > 0 {
        eprintln!("\n{failures} run(s) failed");
        std::process::exit(3);
    }
    if artifacts_failed {
        std::process::exit(3);
    }
    println!("\nall {total} requests answered correctly, exactly once, with the tail accounted ✓");
}
