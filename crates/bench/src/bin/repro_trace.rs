//! Observability demo: a traced type-5 transfer, printing every protocol
//! leg with its virtual timestamp — the measured counterpart of the
//! architecture guide's walkthrough (`cellpilot::guide`).

use cellpilot::{render_trace, CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

fn main() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = CellPilotOpts {
        trace: true,
        ..Default::default()
    };
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let sender = SpeProgram::new("sender", 2048, |spe, _, _| {
        spe.write(CpChannel(0), "%100d", &[PiValue::Int32((0..100).collect())])
            .unwrap();
    });
    let receiver = SpeProgram::new("receiver", 2048, |spe, _, _| {
        let _ = spe.read(CpChannel(0), "%100d").unwrap();
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let a = cfg.create_spe_process(&sender, CP_MAIN, 0).unwrap();
    let b = cfg.create_spe_process(&receiver, parent, 0).unwrap();
    let chan = cfg.channel(a, b).build().unwrap();
    println!(
        "one {} transfer of 400 bytes, traced:\n",
        cfg.channel_kind(chan).unwrap()
    );
    let (report, trace) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
    print!("{}", render_trace(&trace));
    println!(
        "\ncompleted at virtual t = {:.1} us",
        report.end_time.as_micros_f64()
    );
    println!("(spe-write completes only after its Co-Pilot's MPI send; spe-read only");
    println!("after the remote Co-Pilot deposits into the local store.)");
}
