//! Cross-backend conformance sweep for CI: run `--seeds N` seeded wiring
//! plans (see `cellpilot::conformance`) on the sim backend (the oracle)
//! and the native threads backend, diff every observable, and report the
//! native backend's wall-clock event/message rates as an informational
//! BENCH section.
//!
//! Usage: `repro_conformance [--seeds N] [--out DIR]`
//!
//! Exit contract (mirrors `repro_check`): 0 when every seed agrees, 3 on
//! any divergence — with a replayable artifact written per diverging seed
//! (`conformance_seed_<seed>.txt` under `--out`, default `.`) carrying the
//! plan and both observation dumps — and 2 on usage errors.

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag};
use cp_trace::{BenchReport, NativeRates, Recorder};

use cellpilot::conformance::{diff, run_plan, run_plan_traced, WiringPlan};
use cellpilot::Backend;

const USAGE: &str = "repro_conformance [--seeds N] [--out DIR]";

fn main() {
    let mut seeds = 8u64;
    let mut out_dir = ".".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => seeds = parse_int_flag(USAGE, "--seeds", args.next(), 1, 4096),
            "--out" => out_dir = parse_str_flag(USAGE, "--out", args.next()),
            other => unknown_flag(USAGE, other),
        }
    }

    println!("cross-backend conformance — {seeds} seeded wiring plans, sim is the oracle\n");

    let mut divergences = 0usize;
    let mut native_wall = std::time::Duration::ZERO;
    let mut native_events = 0u64;
    let mut native_msgs = 0u64;

    for seed in 0..seeds {
        let plan = WiringPlan::from_seed(seed);
        let oracle = run_plan(&plan, Backend::Sim);

        let recorder = Recorder::enabled();
        let t0 = std::time::Instant::now();
        let candidate = run_plan_traced(&plan, Backend::Native, recorder.clone());
        native_wall += t0.elapsed();
        let snap = recorder.snapshot();
        native_events += snap.des.dispatches;
        native_msgs += snap.channel_types.iter().map(|c| c.writes).sum::<u64>();

        match diff(&oracle, &candidate) {
            None => {
                let chans = oracle.payloads.len();
                println!(
                    "seed {seed:>4}: agree ({} targets, {chans} observed channels)",
                    plan.targets.len()
                );
            }
            Some(why) => {
                divergences += 1;
                println!("seed {seed:>4}: DIVERGED — {why}");
                let artifact = format!(
                    "replay: WiringPlan::from_seed({seed})\n\nplan: {plan:#?}\n\n\
                     --- sim (oracle) ---\n{oracle}\n--- native (candidate) ---\n{candidate}\n\
                     --- divergence ---\n{why}\n"
                );
                let path = format!("{out_dir}/conformance_seed_{seed}.txt");
                match std::fs::write(&path, artifact) {
                    Ok(()) => eprintln!("  artifact written to {path}"),
                    Err(e) => eprintln!("  could not write artifact {path}: {e}"),
                }
            }
        }
    }

    // Informational BENCH section: how fast the native backend replays the
    // sweep in wall-clock terms. The perf gate ignores it.
    let wall_s = native_wall.as_secs_f64().max(1e-9);
    let rates = NativeRates {
        wall_ms: native_wall.as_secs_f64() * 1e3,
        events_per_sec: native_events as f64 / wall_s,
        msgs_per_sec: native_msgs as f64 / wall_s,
    };
    println!("\nnative backend rates over the sweep:");
    println!("  wall time     : {:>10.2} ms", rates.wall_ms);
    println!("  events/sec    : {:>10.0}", rates.events_per_sec);
    println!("  messages/sec  : {:>10.0}", rates.msgs_per_sec);
    let mut report = BenchReport::new("conformance", seeds);
    report.native_rates = Some(rates);
    let path = format!("{out_dir}/BENCH_conformance.json");
    match std::fs::write(&path, report.to_json_string()) {
        Ok(()) => println!("  report        : {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }

    if divergences == 0 {
        println!("\nverdict: all {seeds} seeds agree");
        std::process::exit(0);
    }
    println!("\nverdict: {divergences} seed(s) diverged");
    std::process::exit(3);
}
