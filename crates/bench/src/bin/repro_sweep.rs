//! Extension experiment: message-size sweep over channel types 2 and 5,
//! exposing the copy/DMA crossover and how CellPilot's Co-Pilot overhead
//! amortizes with payload size.

use cp_bench::{dma_copy_crossover, render_sweep, sweep, DEFAULT_SIZES};

fn main() {
    for t in [2u8, 5] {
        let pts = sweep(t, &DEFAULT_SIZES, 20);
        print!("{}", render_sweep(t, &pts));
        match dma_copy_crossover(&pts) {
            Some(b) => println!("-> DMA overtakes copy at {b} bytes\n"),
            None => println!("-> copy never loses in this range\n"),
        }
    }
}
