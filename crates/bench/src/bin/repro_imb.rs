//! Extension: further IMB patterns over CellPilot channels — PingPing
//! (simultaneous bidirectional traffic) and the ring Exchange kernel.

use cp_bench::{cellpilot_pingpong, exchange, pingping};

fn main() {
    let reps = 30;
    println!("IMB PingPing over CellPilot channels (64B, per-message us):");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "type", "pingpong 1-way", "pingping", "ratio"
    );
    for t in 1..=3u8 {
        let one_way = cellpilot_pingpong(t, 64, reps).one_way_us;
        let pp = pingping(t, 64, reps);
        println!("{t:>6} {one_way:>12.1} {pp:>12.1} {:>7.2}x", pp / one_way);
    }
    println!("\n(types 4/5 cannot run PingPing: SPE<->SPE writes rendezvous at the");
    println!("Co-Pilot, so simultaneous sends deadlock — see cp-bench's tests.)\n");
    println!("IMB Exchange, 128B halos, per-iteration us at rank 0:");
    println!("{:>6} {:>12}", "ring", "time");
    for n in [3usize, 4, 6, 8] {
        println!("{n:>6} {:>12.1}", exchange(n, 128, reps));
    }
}
