//! Extension experiment: broadcast scaling on the paper's full 8-blade
//! cluster — one message to N SPE receivers spread across blades, with the
//! hierarchical multicast (one wire crossing per blade) against
//! channel-by-channel linear writes (one crossing per SPE).

use cellpilot::{
    CellPilotConfig, CellPilotOpts, CpBundleUsage, CpChannel, CpProcess, SpeProgram, CP_MAIN,
};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

/// Broadcast one 400-byte array to `n` SPEs spread round-robin over the 8
/// Cell blades; return the virtual completion time in µs.
fn broadcast_time(n: usize, linear: bool) -> f64 {
    let spec = ClusterSpec::paper();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let recv = SpeProgram::new("recv", 2048, |spe, _, _| {
        let _ = spe.read(CpChannel(spe.index() as usize), "%100d").unwrap();
    });
    // Hosts on blades 1..8 launch their local SPEs (blade 0 is CP_MAIN's).
    let mut hosts = vec![CP_MAIN];
    for b in 1..8 {
        hosts.push(
            cfg.create_process(&format!("host{b}"), b, |cp, _| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap(),
        );
    }
    let mut chans = Vec::new();
    for i in 0..n {
        let s = cfg
            .create_spe_process(&recv, hosts[i % hosts.len()], i as i32)
            .unwrap();
        chans.push(cfg.channel(CP_MAIN, s).build().unwrap());
    }
    let bundle = cfg.create_bundle(CpBundleUsage::Broadcast, &chans).unwrap();
    let report = cfg
        .run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            let data = PiValue::Int32((0..100).collect());
            if linear {
                for &c in &chans {
                    cp.write(c, "%100d", std::slice::from_ref(&data)).unwrap();
                }
            } else {
                cp.broadcast(bundle, "%100d", &[data]).unwrap();
            }
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .expect("scaling app");
    report.end_time.as_micros_f64()
}

fn main() {
    println!("Broadcast completion time on the paper's 8-blade cluster (400B payload)");
    println!(
        "{:>10} {:>16} {:>16} {:>10}",
        "SPEs", "hierarchical us", "linear us", "saving"
    );
    for n in [8usize, 16, 32, 64, 128] {
        let h = broadcast_time(n, false);
        let l = broadcast_time(n, true);
        println!("{n:>10} {h:>16.0} {l:>16.0} {:>9.2}x", l / h);
    }
    println!("\n(The hierarchical multicast crosses the gigabit wire once per blade;");
    println!("linear writes cross it once per SPE.)");
}
