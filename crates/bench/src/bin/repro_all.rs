//! Run every paper-reproduction artifact in sequence — the one-command
//! regeneration of EXPERIMENTS.md's data.

use std::process::Command;

fn main() {
    let bins = [
        "repro_table2",
        "repro_fig5",
        "repro_fig6",
        "repro_footprint",
        "repro_codesize",
        "repro_ablation",
        "repro_sweep",
        "repro_scaling",
        "repro_imb",
        "repro_datatypes",
        "repro_speedup",
        "repro_trace",
    ];
    // When invoked via `cargo run`, sibling binaries sit next to us.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("running {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
}
