//! Seeded chaos campaign: randomized-but-reproducible fault injection
//! against the self-healing runtime.
//!
//! Each seed deterministically draws a recoverable-only fault plan
//! (message drops within the retry budget, link delays, duplicate
//! deliveries, supervised SPE crashes, bounded Co-Pilot stalls, Co-Pilot
//! kills covered by standby failover) and runs a fixed workload spanning
//! all five Table-I channel types under it. Every seed must complete,
//! produce output byte-identical to the fault-free golden run, and report
//! only incidents its plan explains. A failing seed is a complete bug
//! report: rerun with the same seed and intensity to replay the exact
//! fault timeline.
//!
//! Usage: `repro_chaos [--seeds N] [--intensity K] [--trace-out PATH]`
//! (defaults: 32 seeds, intensity 6). `--trace-out` additionally runs one
//! instrumented campaign on the first seed whose plan schedules a Co-Pilot
//! kill and writes its Chrome `trace_event` export (openable in
//! about://tracing or Perfetto, one lane per rank/SPE/Co-Pilot, with the
//! failover incidents marked) to PATH — CI uploads it as the
//! failure-debugging artifact.

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag};
use cp_bench::{chaos, chaos_traced, golden_end_time, seed_with_failover};

const USAGE: &str = "repro_chaos [--seeds N] [--intensity K] [--trace-out PATH]";

fn main() {
    let mut n_seeds: u64 = 32;
    let mut intensity: u32 = 6;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => n_seeds = parse_int_flag(USAGE, "--seeds", args.next(), 1, 1_000_000),
            "--intensity" => {
                intensity = parse_int_flag(USAGE, "--intensity", args.next(), 0, 10_000) as u32
            }
            "--trace-out" => trace_out = Some(parse_str_flag(USAGE, "--trace-out", args.next())),
            other => unknown_flag(USAGE, other),
        }
    }

    println!(
        "chaos campaign: {n_seeds} seeds at intensity {intensity} \
         (golden run completes at {})\n",
        golden_end_time()
    );
    let mut failures = 0u64;
    for seed in 0..n_seeds {
        match chaos(seed, intensity) {
            Ok(r) => {
                let (drops, delays, dups, crashes, stalls, kills) = r.planned;
                let incidents: Vec<String> = r
                    .incidents
                    .iter()
                    .map(|(c, n)| format!("{c}x{n}"))
                    .collect();
                println!(
                    "  seed {seed:>3}: planned [drop {drops}, delay {delays}, dup {dups}, \
                     crash {crashes}, stall {stalls}, kill {kills}] \
                     incidents [{}] end {}",
                    incidents.join(", "),
                    r.end_time
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("  seed {seed:>3}: FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures}/{n_seeds} seeds violated a chaos invariant");
        std::process::exit(1);
    }
    println!(
        "\nall {n_seeds} seeds: completed, output byte-identical to the \
         fault-free run, every incident accounted for ✓"
    );

    if let Some(path) = trace_out {
        // Re-run one campaign instrumented, on a seed whose plan kills a
        // Co-Pilot so the trace shows the standby failover.
        let seed = seed_with_failover(intensity.max(1));
        match chaos_traced(seed, intensity.max(1)) {
            Ok((_, rec)) => {
                if let Err(e) = std::fs::write(&path, rec.chrome_trace()) {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote Chrome trace of seed {seed} to {path}");
            }
            Err(e) => {
                eprintln!("traced run of seed {seed} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
