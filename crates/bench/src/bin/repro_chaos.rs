//! Seeded chaos campaign: randomized-but-reproducible fault injection
//! against the self-healing runtime.
//!
//! Each seed deterministically draws a recoverable-only fault plan
//! (message drops within the retry budget, link delays, duplicate
//! deliveries, supervised SPE crashes, bounded Co-Pilot stalls, Co-Pilot
//! kills covered by standby failover) and runs a fixed workload spanning
//! all five Table-I channel types under it. Every seed must complete,
//! produce output byte-identical to the fault-free golden run, and report
//! only incidents its plan explains. A failing seed is a complete bug
//! report: rerun with the same seed and intensity to replay the exact
//! fault timeline.
//!
//! Usage: `repro_chaos [--seeds N] [--intensity K]` (defaults: 32 seeds,
//! intensity 6).

use cp_bench::{chaos, golden_end_time};

fn main() {
    let mut n_seeds: u64 = 32;
    let mut intensity: u32 = 6;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                n_seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a number");
            }
            "--intensity" => {
                intensity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--intensity takes a number");
            }
            other => {
                panic!("unknown argument {other} (usage: repro_chaos [--seeds N] [--intensity K])")
            }
        }
    }

    println!(
        "chaos campaign: {n_seeds} seeds at intensity {intensity} \
         (golden run completes at {})\n",
        golden_end_time()
    );
    let mut failures = 0u64;
    for seed in 0..n_seeds {
        match chaos(seed, intensity) {
            Ok(r) => {
                let (drops, delays, dups, crashes, stalls, kills) = r.planned;
                let incidents: Vec<String> = r
                    .incidents
                    .iter()
                    .map(|(c, n)| format!("{c}x{n}"))
                    .collect();
                println!(
                    "  seed {seed:>3}: planned [drop {drops}, delay {delays}, dup {dups}, \
                     crash {crashes}, stall {stalls}, kill {kills}] \
                     incidents [{}] end {}",
                    incidents.join(", "),
                    r.end_time
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("  seed {seed:>3}: FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures}/{n_seeds} seeds violated a chaos invariant");
        std::process::exit(1);
    }
    println!(
        "\nall {n_seeds} seeds: completed, output byte-identical to the \
         fault-free run, every incident accounted for ✓"
    );
}
