//! Regenerate the paper's Figure 6: throughput (MB/s) of the 1600-byte
//! array case across the five channel types and three implementations.

fn main() {
    let cells = cp_bench::measure_table2(50);
    print!("{}", cp_bench::render_fig6(&cells));
}
