//! Schedule-exploration demo: "it passed once" → "it passes under every
//! legal interleaving we tried".
//!
//! Runs the fault-replay scenario (a type-5 transfer riding out two
//! scripted link drops) under N distinct DES schedules — seed 0 is the
//! canonical FIFO tie-break, every other seed deterministically permutes
//! the dispatch order of same-timestamp events — and asserts the
//! application outcome is identical under all of them. Then demonstrates
//! that deadlock *detection* is schedule-independent too: a type-5
//! circular wait aborts with the same diagnostic under every seed.
//!
//! Usage: `repro_explore [--seeds N]` (default 8 exploration seeds on top
//! of the FIFO baseline).

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_bench::{explore, fault_replay_outcome};
use cp_des::SimError;
use cp_simnet::ClusterSpec;

/// A type-5 circular wait under one schedule seed; returns the detector's
/// abort diagnostic.
fn deadlock_diagnostic(seed: u64) -> String {
    let opts = CellPilotOpts::new()
        .with_deadlock_service()
        .with_schedule_seed(seed);
    let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
    let x = SpeProgram::new("x", 2048, |spe, _, _| {
        let _ = spe.read_vec::<i32>(CpChannel(1));
        spe.write_slice(CpChannel(0), &[1i32]).unwrap();
    });
    let y = SpeProgram::new("y", 2048, |spe, _, _| {
        let _ = spe.read_vec::<i32>(CpChannel(0));
        spe.write_slice(CpChannel(1), &[1i32]).unwrap();
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let px = cfg.create_spe_process(&x, CP_MAIN, 0).unwrap();
    let py = cfg.create_spe_process(&y, parent, 0).unwrap();
    let _xy = cfg.channel(px, py).build().unwrap();
    let _yx = cfg.channel(py, px).build().unwrap();
    match cfg.run(move |cp| cp.run_and_wait_my_spes()) {
        Err(SimError::Aborted { message, .. }) => message,
        other => panic!("seed {seed}: expected detector abort, got {other:?}"),
    }
}

fn main() {
    const USAGE: &str = "repro_explore [--seeds N]";
    let mut n_seeds: u64 = 8;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                n_seeds = cp_bench::cli::parse_int_flag(USAGE, "--seeds", args.next(), 1, 100_000)
            }
            other => cp_bench::cli::unknown_flag(USAGE, other),
        }
    }
    let seeds: Vec<u64> = (0..=n_seeds).collect();

    println!(
        "fault-replay scenario under {} schedules (FIFO baseline + {} permuted):\n",
        seeds.len(),
        n_seeds
    );
    match explore(&seeds, fault_replay_outcome) {
        Ok(outcomes) => {
            let (completed, sum) = outcomes[0].1;
            for (seed, outcome) in &outcomes {
                println!(
                    "  seed {seed:>3}: completed={} sum={}",
                    outcome.0, outcome.1
                );
            }
            assert!(completed && sum == 4950);
            println!(
                "\noutcome identical under all {} schedules: completed={completed}, sum={sum} ✓",
                outcomes.len()
            );
        }
        Err(div) => {
            eprintln!("{div}");
            std::process::exit(1);
        }
    }

    println!("\ntype-5 circular wait under the same schedules:\n");
    let baseline = deadlock_diagnostic(seeds[0]);
    for &seed in &seeds[1..] {
        let msg = deadlock_diagnostic(seed);
        assert_eq!(
            msg, baseline,
            "deadlock diagnostic must not depend on the schedule"
        );
    }
    println!("  every seed: {baseline}");
    println!(
        "\ndetector verdict identical under all {} schedules ✓",
        seeds.len()
    );
}
