//! CI perf gate: diff a candidate `BENCH_*.json` against a committed
//! baseline and fail (exit 1) when any channel-type median latency
//! regresses beyond the tolerance.
//!
//! Usage: `bench_gate --baseline PATH --candidate PATH [--tolerance PCT]`
//! (default tolerance: 20%). Getting *faster* never fails the gate; to
//! lock in a deliberate improvement (or an accepted slowdown), regenerate
//! the baseline with `repro_table2 --json BENCH_baseline.json --label
//! baseline` and commit it.

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag, usage_error};
use cp_trace::{gate, BenchReport};

const USAGE: &str = "bench_gate --baseline PATH --candidate PATH [--tolerance PCT]";

fn load(what: &str, path: &str) -> BenchReport {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => usage_error(USAGE, &format!("cannot read {what} {path}: {e}")),
    };
    match BenchReport::parse(&text) {
        Ok(r) => r,
        Err(e) => usage_error(USAGE, &format!("{what} {path}: {e}")),
    }
}

fn main() {
    let mut baseline: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut tolerance_pct: f64 = 20.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(parse_str_flag(USAGE, "--baseline", args.next())),
            "--candidate" => candidate = Some(parse_str_flag(USAGE, "--candidate", args.next())),
            "--tolerance" => {
                tolerance_pct = parse_int_flag(USAGE, "--tolerance", args.next(), 0, 1000) as f64
            }
            other => unknown_flag(USAGE, other),
        }
    }
    let Some(baseline) = baseline else {
        usage_error(USAGE, "--baseline is required");
    };
    let Some(candidate) = candidate else {
        usage_error(USAGE, "--candidate is required");
    };

    let base = load("baseline", &baseline);
    let cand = load("candidate", &candidate);
    println!(
        "perf gate: '{}' vs baseline '{}' (tolerance +{tolerance_pct:.0}%)\n",
        cand.label, base.label
    );
    let outcome = gate(&base, &cand, tolerance_pct);
    for line in &outcome.lines {
        println!("  {line}");
    }
    if outcome.passed() {
        println!("\ngate passed: every channel-type median within tolerance ✓");
    } else {
        eprintln!("\ngate FAILED:");
        for r in &outcome.regressions {
            eprintln!("  {r}");
        }
        eprintln!(
            "\nIf this slowdown is intended, refresh the baseline:\n  \
             cargo run --release -p cp-bench --bin repro_table2 -- \
             --json BENCH_baseline.json --label baseline"
        );
        std::process::exit(1);
    }
}
