//! Paper §V: "Each data type supported by CellPilot was sent across each
//! of the 5 channel types to measure communication latency." Table II
//! published only the extremes (%b and %100Lf); this prints the full
//! datatype sweep at count=100, where latency tracks the wire size of the
//! element type.

use cp_bench::cellpilot_pingpong;

fn main() {
    // (format letter, wire bytes per element)
    let dtypes: [(&str, usize); 9] = [
        ("b", 1),
        ("c", 1),
        ("hd", 2),
        ("d", 4),
        ("u", 4),
        ("f", 4),
        ("ld", 8),
        ("lf", 8),
        ("Lf", 16),
    ];
    let reps = 30;
    print!("{:>8} {:>8}", "dtype", "bytes");
    for t in 1..=5u8 {
        print!(" {:>9}", format!("type{t} us"));
    }
    println!();
    for (letter, sz) in dtypes {
        let bytes = 100 * sz;
        print!("{:>8} {:>8}", format!("%100{letter}"), bytes);
        for t in 1..=5u8 {
            // Latency depends only on wire bytes in the model, so measure
            // by equivalent byte payloads.
            let us = cellpilot_pingpong(t, bytes, reps).one_way_us;
            print!(" {us:>9.1}");
        }
        println!();
    }
    println!("\n(100 elements each; %b/%c share a row's cost, as do %d/%u/%f and %ld/%lf:");
    println!("latency is a function of the element's wire size.)");
}
