//! Regenerate the paper's Section IV.C code-size comparison: the 3-hop
//! relay application (SPE -> parent PPE -> remote PPE -> its SPE) written
//! with CellPilot, DaCS, and the raw SDK.

use cp_bench::codesize::{loc_comparison, relay_cellpilot, relay_dacs, relay_sdk, PAPER_LOC};

fn main() {
    println!("Running all three relay implementations...");
    let a = relay_cellpilot::run();
    let b = relay_dacs::run();
    let c = relay_sdk::run();
    assert_eq!(a, b);
    assert_eq!(b, c);
    println!("All three produce identical output ({} ints).\n", a.len());
    println!("Lines of code (effective, non-blank non-comment):");
    println!("{:<12} {:>10} {:>12}", "version", "measured", "paper (C)");
    for ((name, loc), (pname, ploc)) in loc_comparison().iter().zip(PAPER_LOC.iter()) {
        assert_eq!(name, pname);
        println!("{name:<12} {loc:>10} {ploc:>12}");
    }
    let [(_, cp), (_, dacs), (_, sdk)] = loc_comparison();
    println!(
        "\nRatios: SDK/CellPilot = {:.2} (paper 2.33), DaCS/CellPilot = {:.2} (paper 1.43)",
        sdk as f64 / cp as f64,
        dacs as f64 / cp as f64
    );
}
