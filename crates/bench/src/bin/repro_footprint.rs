//! Regenerate the paper's Section V footprint comparison: bytes of the
//! 256 KB SPE local store consumed by the resident communication library.
//! Measured live by loading the same program under both runtimes and
//! inspecting the local-store reservation ledger.

use cellpilot::{CellPilotConfig, CellPilotOpts, SpeProgram, CP_MAIN, SPE_RUNTIME_FOOTPRINT};
use cp_cellsim::{CellCosts, CellNode, LS_SIZE};
use cp_dacs::{DacsHost, SPE_LIB_FOOTPRINT};
use cp_des::Simulation;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let image = 4096;
    // CellPilot: observe the reservation while an SPE program runs.
    let observed_cp = Arc::new(Mutex::new(0usize));
    let obs = observed_cp.clone();
    let mut cfg = CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::default(),
    );
    let prog = SpeProgram::new("probe", image, move |spe, _, _| {
        *obs.lock() = LS_SIZE - spe.local_store_free();
    });
    let p = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(p, 0, 0).unwrap();
        cp.wait_spe(t);
    })
    .unwrap();

    // DaCS: same probe under the DaCS runtime.
    let observed_dacs = Arc::new(Mutex::new(0usize));
    let obs2 = observed_dacs.clone();
    let mut sim = Simulation::new();
    let cell = CellNode::new(0, 8, 1 << 20, CellCosts::default());
    sim.spawn("he", move |ctx| {
        let dacs = DacsHost::init(cell.clone());
        let cell2 = cell.clone();
        let pid = dacs
            .de_start(ctx, 0, "probe", image, move |_ae| {
                *obs2.lock() = LS_SIZE - cell2.spes[0].ls.free_bytes();
            })
            .unwrap();
        ctx.join(pid);
    });
    sim.run().unwrap();

    let cp_total = *observed_cp.lock();
    let dacs_total = *observed_dacs.lock();
    println!("SPE local-store occupancy while running a {image}-byte program image:");
    println!(
        "{:<22} {:>10} {:>22}",
        "runtime", "measured", "paper (library only)"
    );
    println!(
        "{:<22} {:>10} {:>22}",
        "CellPilot",
        cp_total - image,
        format!("{SPE_RUNTIME_FOOTPRINT} (cellpilot.o)")
    );
    println!(
        "{:<22} {:>10} {:>22}",
        "DaCS",
        dacs_total - image,
        format!("{SPE_LIB_FOOTPRINT} (libdacs.a)")
    );
    println!(
        "\nDaCS/CellPilot footprint ratio: {:.2} (paper: {:.2})",
        (dacs_total - image) as f64 / (cp_total - image) as f64,
        SPE_LIB_FOOTPRINT as f64 / SPE_RUNTIME_FOOTPRINT as f64
    );
}
