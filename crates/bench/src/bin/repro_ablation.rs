//! Ablation of the Co-Pilot's overhead (the paper's Section V analysis:
//! "all SPE-connected channel types are paying some overhead for the
//! Co-Pilot process... it is likely that Co-Pilot processing can be sped
//! up in the future"). Zeroing each cost constant shows how much of each
//! channel type's latency it explains, i.e. what an optimized Co-Pilot
//! could recover.

use cellpilot::{CellPilotCosts, CellPilotOpts};
use cp_bench::cellpilot_pingpong_with;

fn opts(costs: CellPilotCosts) -> CellPilotOpts {
    CellPilotOpts {
        costs,
        ..Default::default()
    }
}

fn main() {
    let reps = 50;
    println!("Co-Pilot overhead ablation (1-byte one-way latency, us):\n");
    println!(
        "{:<6} {:>10} {:>16} {:>16} {:>14}",
        "type", "default", "dispatch=0", "pair_poll=0", "both=0"
    );
    for t in 2..=5u8 {
        let base = cellpilot_pingpong_with(t, 1, reps, opts(CellPilotCosts::default())).one_way_us;
        let no_dispatch = cellpilot_pingpong_with(
            t,
            1,
            reps,
            opts(CellPilotCosts {
                copilot_dispatch_us: 0.0,
                ..Default::default()
            }),
        )
        .one_way_us;
        let no_pair = cellpilot_pingpong_with(
            t,
            1,
            reps,
            opts(CellPilotCosts {
                copilot_pair_poll_us: 0.0,
                ..Default::default()
            }),
        )
        .one_way_us;
        let neither = cellpilot_pingpong_with(
            t,
            1,
            reps,
            opts(CellPilotCosts {
                copilot_dispatch_us: 0.0,
                copilot_pair_poll_us: 0.0,
                ..Default::default()
            }),
        )
        .one_way_us;
        println!("{t:<6} {base:>10.1} {no_dispatch:>16.1} {no_pair:>16.1} {neither:>14.1}");
    }
    println!("\nReading: type 4 pays the pairing poll; types 2/3/5 pay per-request dispatch");
    println!("(type 5 twice, once per Co-Pilot). The residual is mailboxes + MPI + copies,");
    println!("i.e. the hand-coded floor of Table II.");
}
