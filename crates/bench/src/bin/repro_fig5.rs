//! Regenerate the paper's Figure 5: latency bars per channel type (solid =
//! 1-byte, hatched = 1600-byte) for CellPilot vs hand-coded transfers.

fn main() {
    let cells = cp_bench::measure_table2(50);
    print!("{}", cp_bench::render_fig5(&cells));
}
