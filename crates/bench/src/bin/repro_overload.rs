//! Seeded overload campaign: saturate bounded channels and check that
//! credit-based flow control degrades the run gracefully.
//!
//! Each seed deterministically draws a capacity, a burst three times that
//! capacity, and an overload policy (seeds rotate Block → Shed →
//! DeadlineDrop), then drives the fixed two-Cells-one-Xeon workload
//! through it. Every seed must complete, keep every bounded channel's
//! queue-depth high watermark at or below its capacity, shed exactly the
//! writes its policy promises (each surfacing as a distinct
//! `ErrorKind::Backpressure` with matching `Overload`/`MessageShed`
//! incidents), and deliver everything it accepted, in order. A failing
//! seed is a complete bug report: rerun with the same seed to replay it.
//!
//! Usage: `repro_overload [--seeds N] [--bench-out PATH] [--trace-out PATH]`
//! (default: 32 seeds). `--bench-out` writes a `BENCH_overload.json`
//! whose overload section the CI gate checks (a high watermark above
//! capacity fails the gate). `--trace-out` writes the Chrome
//! `trace_event` export of one shedding run — the artifact CI uploads
//! when the campaign finds something.
//!
//! Exit status: 0 when every seed passes, 3 when any invariant is
//! violated (findings), 2 on usage errors.

use cp_bench::cli::{parse_int_flag, parse_str_flag, unknown_flag};
use cp_bench::{overload, overload_bench_rows, overload_traced};
use cp_trace::BenchReport;

const USAGE: &str = "repro_overload [--seeds N] [--bench-out PATH] [--trace-out PATH]";

fn main() {
    let mut n_seeds: u64 = 32;
    let mut bench_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => n_seeds = parse_int_flag(USAGE, "--seeds", args.next(), 1, 1_000_000),
            "--bench-out" => bench_out = Some(parse_str_flag(USAGE, "--bench-out", args.next())),
            "--trace-out" => trace_out = Some(parse_str_flag(USAGE, "--trace-out", args.next())),
            other => unknown_flag(USAGE, other),
        }
    }

    println!("overload campaign: {n_seeds} seeds (burst = 3x capacity on every bounded channel)\n");
    let mut failures = 0u64;
    for seed in 0..n_seeds {
        match overload(seed) {
            Ok(r) => {
                let incidents: Vec<String> = r
                    .incidents
                    .iter()
                    .map(|(c, n)| format!("{c}x{n}"))
                    .collect();
                println!(
                    "  seed {seed:>3}: {:>16} cap {} burst {:>2} accepted {:>2} \
                     hwm [data {}, spe {}] waits {:>3} incidents [{}] end {}",
                    format!("{:?}", r.policy),
                    r.capacity,
                    r.burst,
                    r.accepted,
                    r.data_high_watermark,
                    r.spe_high_watermark,
                    r.backpressure_waits,
                    incidents.join(", "),
                    r.end_time
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("  seed {seed:>3}: FAILED: {e}");
            }
        }
    }
    // Artifacts are written even when the campaign found something — a
    // failing CI run uploads them as the replay evidence.
    let mut artifacts_failed = false;
    if let Some(path) = bench_out {
        match overload_bench_rows() {
            Ok(rows) => {
                let mut report = BenchReport::new("overload", 1);
                report.overload = rows;
                if let Err(e) = std::fs::write(&path, report.to_json_string()) {
                    eprintln!("error: cannot write {path}: {e}");
                    artifacts_failed = true;
                } else {
                    println!("wrote overload BENCH section to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: bench rows failed: {e}");
                artifacts_failed = true;
            }
        }
    }
    if let Some(path) = trace_out {
        // Seed 1 rotates onto Shed: the interesting trace, with the
        // backpressure waits and shed incidents marked.
        match overload_traced(1) {
            Ok((_, rec)) => {
                if let Err(e) = std::fs::write(&path, rec.chrome_trace()) {
                    eprintln!("error: cannot write {path}: {e}");
                    artifacts_failed = true;
                } else {
                    println!("wrote Chrome trace of shedding seed 1 to {path}");
                }
            }
            Err(e) => {
                eprintln!("traced run failed: {e}");
                artifacts_failed = true;
            }
        }
    }

    if failures > 0 {
        eprintln!("\n{failures}/{n_seeds} seeds violated an overload invariant");
        std::process::exit(3);
    }
    if artifacts_failed {
        std::process::exit(3);
    }
    println!(
        "\nall {n_seeds} seeds: completed, queues bounded by their capacity, \
         sheds exact and accounted, accepted messages delivered ✓"
    );
}
