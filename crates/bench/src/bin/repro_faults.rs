//! Fault-replay demo: a type-5 (SPE → remote SPE) transfer under a
//! scripted [`FaultPlan`] that drops the first two Co-Pilot relay messages
//! on the node0 → node1 link. The channel-level retry/backoff machinery
//! rides out the drops transparently; the run is executed twice and the
//! traces are asserted byte-identical — the whole point of scripting
//! faults against the virtual clock instead of wall time.

use cellpilot::{
    render_trace, CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, SpeProgram, CP_MAIN,
};
use cp_des::{SimDuration, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId};
use std::sync::Arc;

/// The scripted scenario: drop the first two messages leaving node 0 for
/// node 1 from t = 200 µs on (the data relay's send attempts), well inside
/// the default four-retry budget.
fn plan() -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new().drop_link(
        NodeId(0),
        NodeId(1),
        SimTime::ZERO + SimDuration::from_micros(200),
        SimTime(u64::MAX),
        2,
    ))
}

fn run_once() -> (cp_des::SimReport, String) {
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = CellPilotOpts::new().with_trace().with_faults(plan());
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let sender = SpeProgram::new("sender", 2048, |spe, _, _| {
        // Model some compute so the write lands inside the fault window.
        spe.ctx().advance(SimDuration::from_micros(300));
        spe.write_slice(CpChannel(0), &(0..100).collect::<Vec<i32>>())
            .unwrap();
    });
    let receiver = SpeProgram::new("receiver", 2048, |spe, _, _| {
        let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
        assert_eq!(v, (0..100).collect::<Vec<i32>>());
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let a = cfg.create_spe_process(&sender, CP_MAIN, 0).unwrap();
    let b = cfg.create_spe_process(&receiver, parent, 0).unwrap();
    let chan = cfg.channel(a, b).build().unwrap();
    assert_eq!(
        cfg.channel_kind(chan).unwrap(),
        ChannelKind::Type5,
        "the scenario must exercise the Co-Pilot → Co-Pilot relay"
    );
    let (report, trace) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
    (report, render_trace(&trace))
}

fn main() {
    println!("type-5 transfer with the first two relay messages dropped:\n");
    let (report_a, trace_a) = run_once();
    let (report_b, trace_b) = run_once();
    print!("{trace_a}");
    println!(
        "\ncompleted at virtual t = {:.1} us (healthy relay takes one attempt;",
        report_a.end_time.as_micros_f64()
    );
    println!("the drops cost two retry backoffs, visible in the timestamps above).");
    assert_eq!(trace_a, trace_b, "fault replay must be deterministic");
    assert_eq!(report_a.end_time, report_b.end_time);
    println!("\nreplayed: second run is byte-identical to the first ✓");
}
