//! The IMB-style PingPong harness over CellPilot channels — "the classical
//! pattern used for measuring startup and throughput of a single message
//! sent between two processes". Together with `cellpilot::baseline` this
//! regenerates every cell of the paper's Table II.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Rounds run before the timed window opens (covers SPE loading, Co-Pilot
/// spawn-up and first-touch effects).
pub const WARMUP: usize = 2;

/// One measured latency.
#[derive(Debug, Clone, Copy)]
pub struct PingPong {
    /// Average one-way latency, µs.
    pub one_way_us: f64,
    /// Payload bytes.
    pub bytes: usize,
}

fn fmt_for(bytes: usize) -> String {
    // Table II uses "%b" (1 byte) and "%100Lf" (1600 bytes). Any payload
    // size measures identically as a fixed byte array of the same wire
    // length.
    match bytes {
        1 => "%b".to_string(),
        1600 => "%100Lf".to_string(),
        n => format!("%{n}b"),
    }
}

fn payload_for(bytes: usize) -> PiValue {
    match bytes {
        1600 => PiValue::LongDouble((0..100).map(|i| cp_mpisim::LongDouble(i as f64)).collect()),
        n => PiValue::Byte((0..n).map(|i| i as u8).collect()),
    }
}

/// Measure a CellPilot channel of the given Table-I type.
///
/// The initiating endpoint runs `WARMUP + reps` exchange rounds and times
/// the last `reps`; one-way latency is `elapsed / (2 * reps)`.
pub fn cellpilot_pingpong(chan_type: u8, bytes: usize, reps: usize) -> PingPong {
    cellpilot_pingpong_with(chan_type, bytes, reps, CellPilotOpts::default())
}

/// Type-1/3 ping-pong with the *initiating* endpoint on the Xeon node
/// instead of a PPE. The paper notes its Table II "times given are for PPE
/// endpoints only, which were slower than for the Xeon nodes" — this
/// measures the faster variant.
pub fn cellpilot_pingpong_xeon_initiator(chan_type: u8, bytes: usize, reps: usize) -> PingPong {
    assert!(
        chan_type == 1 || chan_type == 3,
        "only types 1 and 3 admit a non-Cell endpoint"
    );
    let spec = ClusterSpec::two_cells_one_xeon();
    // main on the Xeon (node 2); the peer rank on Cell node 0's PPE.
    let placement = vec![cp_simnet::NodeId(2), cp_simnet::NodeId(0)];
    let mut cfg = CellPilotConfig::new(spec, placement, CellPilotOpts::default());
    let total = WARMUP + reps;
    let fmt = fmt_for(bytes);
    let data = payload_for(bytes);
    let elapsed: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    let c0 = CpChannel(0);
    let c1 = CpChannel(1);
    match chan_type {
        1 => {
            let fmt_e = fmt.clone();
            let peer = cfg
                .create_process("echo-ppe", 0, move |cp, _| {
                    for _ in 0..total {
                        let v = cp.read(c0, &fmt_e).unwrap();
                        cp.write(c1, &fmt_e, &v).unwrap();
                    }
                })
                .unwrap();
            cfg.channel(CP_MAIN, peer).build().unwrap();
            cfg.channel(peer, CP_MAIN).build().unwrap();
        }
        3 => {
            let fmt_se = fmt.clone();
            let spe_echo = SpeProgram::new("echo", 2048, move |spe, _, _| {
                for _ in 0..total {
                    let v = spe.read(c0, &fmt_se).unwrap();
                    spe.write(c1, &fmt_se, &v).unwrap();
                }
            });
            let parent = cfg
                .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
                .unwrap();
            let spe = cfg.create_spe_process(&spe_echo, parent, 0).unwrap();
            cfg.channel(CP_MAIN, spe).build().unwrap();
            cfg.channel(spe, CP_MAIN).build().unwrap();
        }
        _ => unreachable!(),
    }
    let el3 = elapsed.clone();
    cfg.run(move |cp| run_main_loop(cp, total, &fmt, &data, &el3))
        .expect("xeon pingpong app");
    let total_us = *elapsed.lock();
    PingPong {
        one_way_us: total_us / (2.0 * reps as f64),
        bytes,
    }
}

/// [`cellpilot_pingpong`] over one-sided (window-fabric) channels: every
/// SPE-read channel is built with [`ChannelBuilder::one_sided`], so the
/// writer's data lands directly in the reader's local-store window
/// instead of being relayed through the Co-Pilots. Only types 2–5 have
/// an SPE reader somewhere in the round trip; type 1 is rank↔rank and
/// has no window to target.
///
/// [`ChannelBuilder::one_sided`]: cellpilot::ChannelBuilder::one_sided
pub fn cellpilot_pingpong_one_sided(chan_type: u8, bytes: usize, reps: usize) -> PingPong {
    assert!(
        (2..=5).contains(&chan_type),
        "one-sided needs an SPE reader; type {chan_type} has none"
    );
    pingpong_impl(chan_type, bytes, reps, CellPilotOpts::default(), true)
}

/// [`cellpilot_pingpong`] with explicit cost options — used by the
/// ablation study to decompose the Co-Pilot's overhead.
pub fn cellpilot_pingpong_with(
    chan_type: u8,
    bytes: usize,
    reps: usize,
    opts: CellPilotOpts,
) -> PingPong {
    pingpong_impl(chan_type, bytes, reps, opts, false)
}

fn pingpong_impl(
    chan_type: u8,
    bytes: usize,
    reps: usize,
    opts: CellPilotOpts,
    one_sided: bool,
) -> PingPong {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let total = WARMUP + reps;
    let fmt = fmt_for(bytes);
    let data = payload_for(bytes);
    let elapsed: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));

    // Channel 0 carries initiator -> echoer; channel 1 the way back.
    let c0 = CpChannel(0);
    let c1 = CpChannel(1);

    // Rank-side echo body (types 1 and SPE-initiated 2/3 are not needed:
    // the paper's type-1/3 rows use PPE endpoints as initiators).
    let fmt_e = fmt.clone();
    let rank_echo = move |cp: &cellpilot::CellPilot, _idx: i32| {
        for _ in 0..total {
            let v = cp.read(c0, &fmt_e).unwrap();
            cp.write(c1, &fmt_e, &v).unwrap();
        }
    };
    let fmt_se = fmt.clone();
    let spe_echo = SpeProgram::new("echo", 2048, move |spe, _, _| {
        for _ in 0..total {
            let v = spe.read(c0, &fmt_se).unwrap();
            spe.write(c1, &fmt_se, &v).unwrap();
        }
    });
    let fmt_si = fmt.clone();
    let el2 = elapsed.clone();
    let data2 = data.clone();
    let spe_init = SpeProgram::new("ping", 2048, move |spe, _, _| {
        let mut t0 = spe.ctx().now();
        for r in 0..total {
            if r == WARMUP {
                t0 = spe.ctx().now();
            }
            spe.write(c0, &fmt_si, std::slice::from_ref(&data2))
                .unwrap();
            let v = spe.read(c1, &fmt_si).unwrap();
            assert_eq!(v[0], data2);
        }
        *el2.lock() = (spe.ctx().now() - t0).as_micros_f64();
    });

    // Build a channel, one-sided when the ablation asks for it and the
    // reader is an SPE (rank readers have no local-store window).
    let chan = |cfg: &mut CellPilotConfig, from, to, spe_reader: bool| {
        let b = cfg.channel(from, to);
        let b = if one_sided && spe_reader {
            b.one_sided()
        } else {
            b
        };
        b.build().unwrap();
    };

    // Main initiates for types 1-3 (PPE endpoint); an SPE initiates for
    // types 4 and 5.
    let main_initiates = chan_type <= 3;
    match chan_type {
        1 => {
            let peer = cfg.create_process("echo-ppe", 0, rank_echo).unwrap();
            chan(&mut cfg, CP_MAIN, peer, false);
            chan(&mut cfg, peer, CP_MAIN, false);
        }
        2 => {
            let spe = cfg.create_spe_process(&spe_echo, CP_MAIN, 0).unwrap();
            chan(&mut cfg, CP_MAIN, spe, true);
            chan(&mut cfg, spe, CP_MAIN, false);
        }
        3 => {
            // The echo SPE lives on the *other* Cell node, parented by a
            // PPE process there that launches it and waits.
            let parent = cfg
                .create_process("remote-parent", 0, move |cp, _| {
                    let t = cp.run_spe(cellpilot::CpProcess(2), 0, 0).unwrap();
                    cp.wait_spe(t);
                })
                .unwrap();
            let spe = cfg.create_spe_process(&spe_echo, parent, 0).unwrap();
            chan(&mut cfg, CP_MAIN, spe, true);
            chan(&mut cfg, spe, CP_MAIN, false);
        }
        4 => {
            let a = cfg.create_spe_process(&spe_init, CP_MAIN, 0).unwrap();
            let b = cfg.create_spe_process(&spe_echo, CP_MAIN, 1).unwrap();
            chan(&mut cfg, a, b, true);
            chan(&mut cfg, b, a, true);
        }
        5 => {
            let parent = cfg
                .create_process("remote-parent", 0, move |cp, _| {
                    let t = cp.run_spe(cellpilot::CpProcess(3), 0, 0).unwrap();
                    cp.wait_spe(t);
                })
                .unwrap();
            let a = cfg.create_spe_process(&spe_init, CP_MAIN, 0).unwrap();
            let b = cfg.create_spe_process(&spe_echo, parent, 0).unwrap();
            chan(&mut cfg, a, b, true);
            chan(&mut cfg, b, a, true);
        }
        other => panic!("no such channel type {other}"),
    }

    let el3 = elapsed.clone();
    cfg.run(move |cp| {
        if main_initiates {
            match chan_type {
                2 => {
                    let t = cp.run_spe(cellpilot::CpProcess(1), 0, 0).unwrap();
                    run_main_loop(cp, total, &fmt, &data, &el3);
                    cp.wait_spe(t);
                }
                _ => run_main_loop(cp, total, &fmt, &data, &el3),
            }
        } else {
            // Types 4/5: main only launches its SPE children.
            let mut tasks = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                    tasks.push(t);
                }
            }
            for t in tasks {
                cp.wait_spe(t);
            }
        }
    })
    .expect("pingpong app");
    let total_us = *elapsed.lock();
    PingPong {
        one_way_us: total_us / (2.0 * reps as f64),
        bytes,
    }
}

fn run_main_loop(
    cp: &cellpilot::CellPilot,
    total: usize,
    fmt: &str,
    data: &PiValue,
    elapsed: &Arc<Mutex<f64>>,
) {
    let c0 = CpChannel(0);
    let c1 = CpChannel(1);
    let mut t0 = cp.ctx().now();
    for r in 0..total {
        if r == WARMUP {
            t0 = cp.ctx().now();
        }
        cp.write(c0, fmt, std::slice::from_ref(data)).unwrap();
        let v = cp.read(c1, fmt).unwrap();
        assert_eq!(&v[0], data);
    }
    *elapsed.lock() = (cp.ctx().now() - t0).as_micros_f64();
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPS: usize = 10;

    #[test]
    fn all_types_return_positive_latency() {
        for t in 1..=5u8 {
            let p = cellpilot_pingpong(t, 1, 3);
            assert!(p.one_way_us > 1.0, "type {t}: {}", p.one_way_us);
        }
    }

    #[test]
    fn cellpilot_always_slower_than_handcoded() {
        // The paper's headline shape: Co-Pilot generality costs latency on
        // every SPE-connected type.
        use cellpilot::baseline::{pingpong as base, BaselineImpl};
        for t in 2..=5u8 {
            let cp = cellpilot_pingpong(t, 1, REPS).one_way_us;
            let dma = base(t, BaselineImpl::Dma, 1, REPS).one_way_us;
            let copy = base(t, BaselineImpl::Copy, 1, REPS).one_way_us;
            assert!(cp > dma, "type {t}: cellpilot {cp} <= dma {dma}");
            assert!(cp > copy, "type {t}: cellpilot {cp} <= copy {copy}");
        }
    }

    #[test]
    fn type_ordering_matches_paper() {
        // Paper 1-byte CellPilot column: t2(59) < t1(105) < t4(112) <
        // t3(140) < t5(189).
        let t: Vec<f64> = (1..=5u8)
            .map(|k| cellpilot_pingpong(k, 1, REPS).one_way_us)
            .collect();
        let (t1, t2, t3, t4, t5) = (t[0], t[1], t[2], t[3], t[4]);
        assert!(t2 < t1, "t2={t2} t1={t1}");
        assert!(t1 < t4, "t1={t1} t4={t4}");
        assert!(t4 < t3, "t4={t4} t3={t3}");
        assert!(t3 < t5, "t3={t3} t5={t5}");
    }

    #[test]
    fn xeon_endpoints_are_faster_than_ppe_endpoints() {
        // The paper: Table II's type-1/3 times "are for PPE endpoints
        // only, which were slower than for the Xeon nodes."
        for t in [1u8, 3] {
            let ppe = cellpilot_pingpong(t, 1, REPS).one_way_us;
            let xeon = cellpilot_pingpong_xeon_initiator(t, 1, REPS).one_way_us;
            assert!(
                xeon < ppe - 5.0,
                "type {t}: xeon {xeon} should beat ppe {ppe} clearly"
            );
        }
    }

    #[test]
    fn one_sided_type5_halves_the_relay_latency() {
        // The headline number of the window fabric: a 1600-byte type-5
        // message lands in one hop instead of two Co-Pilot relays.
        let relay = cellpilot_pingpong(5, 1600, REPS).one_way_us;
        let os = cellpilot_pingpong_one_sided(5, 1600, REPS).one_way_us;
        assert!(os <= 125.0, "one-sided type-5 1600B: {os}us > 125us");
        assert!(
            os * 2.0 <= relay,
            "one-sided {os}us not 2x better than relay {relay}us"
        );
    }

    #[test]
    fn one_sided_beats_relay_on_every_spe_read_type() {
        for t in 2..=5u8 {
            for bytes in [1usize, 1600] {
                let relay = cellpilot_pingpong(t, bytes, REPS).one_way_us;
                let os = cellpilot_pingpong_one_sided(t, bytes, REPS).one_way_us;
                assert!(
                    os < relay,
                    "type {t} {bytes}B: one-sided {os} >= relay {relay}"
                );
            }
        }
    }

    #[test]
    fn array_case_costs_more_than_single_byte() {
        for t in [2u8, 5] {
            let small = cellpilot_pingpong(t, 1, REPS).one_way_us;
            let big = cellpilot_pingpong(t, 1600, REPS).one_way_us;
            assert!(big > small, "type {t}: {big} <= {small}");
        }
    }
}
