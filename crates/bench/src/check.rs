//! Repro scenarios for the `cp-check` static passes: a wiring graph
//! seeded with one of every defect class the verifier must catch, its
//! well-formed twin, and a raw-MFC SPE program whose unfenced DMA pair
//! the race detector must flag (and whose fenced variant must pass
//! clean). The `repro_check` binary drives both; the exit-code contract
//! (0 clean, 3 findings, 2 usage error) makes it a CI smoke step.

use cp_cellsim::{CellCosts, CellNode, DmaDir};
use cp_check::{Diagnostic, GraphBundleUsage, RelayCostModel, WiringGraph};
use cp_des::Simulation;
use cp_trace::Recorder;

/// A wiring graph carrying the seeded defect catalogue: an orphan channel
/// (CP001/CP002), a gather member pointing away from the common endpoint
/// (CP003), SPE slot oversubscription (CP006), SPE channels routed
/// through a node with no Co-Pilot (CP007), plus one of every
/// progress-analyzer defect — a Block-bounded credit cycle (CP201), a
/// Co-Pilot saturated past its service budget by static fan-in (CP202),
/// an always-small channel left non-eager (CP203), and one-sided
/// channels whose fence placement coalescing/eager delivery makes
/// unsatisfiable (CP204).
pub fn seeded_defect_graph() -> WiringGraph {
    let mut g = WiringGraph::new(2);
    g.add_cell_node(0, 8);
    g.add_copilot(0);
    // A two-SPE Cell node nobody deployed a Co-Pilot on.
    g.add_cell_node(1, 2);
    let main = g.add_rank_process("main", 0, 0);
    let worker = g.add_rank_process("worker", 1, 0);
    // CP001 + CP002: a channel nobody writes and nobody reads.
    g.add_half_channel(None, None);
    // CP006: three SPE processes on the two-SPE node.
    let s0 = g.add_spe_process("farm#0", 1, 0);
    let s1 = g.add_spe_process("farm#1", 1, 1);
    let s2 = g.add_spe_process("farm#2", 1, 2);
    // CP007: type-3 traffic into a Co-Pilot-less node.
    g.add_channel(main, s0);
    // CP003: a gather bundle whose second member delivers to `main`, not
    // to the bundle's common reader.
    let c1 = g.add_channel(s1, worker);
    let c2 = g.add_channel(s2, main);
    g.add_bundle(GraphBundleUsage::Gather, &[c1, c2], worker);

    // CP202: an eight-SPE pipeline on node 0 whose static fan-in
    // (8 type-4 ring hops at 57 µs + 16 type-2 feeds/drains at 37 µs =
    // 1048 µs) exceeds the 1000 µs default service budget.
    let ring: Vec<usize> = (0..8)
        .map(|i| g.add_spe_process(&format!("ring#{i}"), 0, i))
        .collect();
    for i in 0..8 {
        g.add_channel(ring[i], ring[(i + 1) % 8]);
    }
    let feeds: Vec<usize> = ring.iter().map(|&r| g.add_channel(main, r)).collect();
    for &r in &ring {
        g.add_channel(r, worker);
    }
    g.set_relay_costs(RelayCostModel {
        dispatch_us: 37.0,
        pair_poll_us: 20.0,
        eager_dispatch_us: 5.0,
        service_budget_us: 1_000.0,
    });
    // CP203: the first feed promises 8-byte payloads — one mailbox
    // exchange would inline them — yet declares no eager threshold.
    g.set_channel_max_payload(feeds[0], 8);
    // CP201: a two-hop credit cycle of Block-policy bounded channels
    // between the two ranks.
    let fwd = g.add_channel(main, worker);
    let back = g.add_channel(worker, main);
    g.set_channel_flow(fwd, Some(1), true);
    g.set_channel_flow(back, Some(4), true);
    // CP204 (both shapes): a coalesced broadcast bundle over a one-sided
    // channel, and a second one-sided channel with an eager threshold.
    let os_bundled = g.add_channel(main, ring[0]);
    g.mark_one_sided(os_bundled);
    g.add_window(os_bundled, 0, 0, 0x1000, 256);
    let bb = g.add_bundle(GraphBundleUsage::Broadcast, &[os_bundled], main);
    g.set_bundle_coalesce(bb, 4);
    let os_eager = g.add_channel(main, ring[1]);
    g.mark_one_sided(os_eager);
    g.add_window(os_eager, 0, 1, 0x1000, 256);
    g.set_channel_eager(os_eager, 8);
    g
}

/// The well-formed twin of [`seeded_defect_graph`]: same shape of
/// application (ranks, SPE farm, channels, gather), every defect
/// repaired. Both [`fn@cp_check::verify`] and [`fn@cp_check::analyze`]
/// must return nothing for it (the relay cost model is attached so the
/// CP202 saturation estimate actually runs — and clears — here).
pub fn clean_graph() -> WiringGraph {
    let mut g = WiringGraph::new(2);
    g.add_cell_node(0, 8);
    g.add_copilot(0);
    let main = g.add_rank_process("main", 0, 0);
    let worker = g.add_rank_process("worker", 1, 1);
    let s0 = g.add_spe_process("farm#0", 0, 0);
    let s1 = g.add_spe_process("farm#1", 0, 1);
    g.add_channel(main, s0);
    let c1 = g.add_channel(s0, worker);
    let c2 = g.add_channel(s1, worker);
    g.add_bundle(GraphBundleUsage::Gather, &[c1, c2], worker);
    g.set_relay_costs(RelayCostModel {
        dispatch_us: 37.0,
        pair_poll_us: 20.0,
        eager_dispatch_us: 5.0,
        service_budget_us: 1_000.0,
    });
    g
}

/// Run the DMA repro and return what the race detector found.
///
/// The program stages a buffer in from main memory with an MFC get, then
/// immediately puts the same local-store range back out. Unfenced, the
/// two transfers are concurrent — the MFC orders nothing within or
/// across tag groups until a `dma_wait` covers them — so the put can
/// read bytes the get is still landing (CP101). The fenced variant waits
/// on the get's tag group first and must analyze clean.
pub fn dma_repro(fenced: bool) -> Vec<Diagnostic> {
    let rec = Recorder::enabled();
    let node = CellNode::new(0, 1, 1 << 20, CellCosts::default());
    node.set_recorder(rec.clone());
    let mut sim = Simulation::new();
    let n = node.clone();
    sim.spawn("spu0", move |ctx| {
        let ea = n.mem.alloc(256, 16).unwrap();
        let buf = n.spes[0].ls.alloc(256, 16).unwrap();
        n.dma(ctx, 0, DmaDir::Get, 0, buf, ea, 256).unwrap();
        if fenced {
            n.dma_wait(ctx, 0, 1 << 0);
        }
        n.dma(ctx, 0, DmaDir::Put, 1, buf, ea, 256).unwrap();
        n.dma_wait(ctx, 0, (1 << 0) | (1 << 1));
    });
    sim.run().expect("the repro program completes either way");
    cp_check::detect_races(&rec.hb_events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_check::CheckCode;

    #[test]
    fn seeded_graph_draws_the_full_catalogue() {
        let g = seeded_defect_graph();
        let mut d = cp_check::verify(&g);
        d.extend(cp_check::analyze(&g));
        let codes: Vec<CheckCode> = d.iter().map(|x| x.code).collect();
        for want in [
            CheckCode::Cp001,
            CheckCode::Cp002,
            CheckCode::Cp003,
            CheckCode::Cp006,
            CheckCode::Cp007,
            CheckCode::Cp201,
            CheckCode::Cp202,
            CheckCode::Cp203,
            CheckCode::Cp204,
        ] {
            assert!(codes.contains(&want), "missing {want:?} in {codes:?}");
        }
    }

    #[test]
    fn clean_graph_verifies_clean() {
        let g = clean_graph();
        assert_eq!(cp_check::verify(&g), Vec::new());
        assert_eq!(cp_check::analyze(&g), Vec::new());
    }

    #[test]
    fn unfenced_repro_races_and_fenced_is_clean() {
        let racy = dma_repro(false);
        assert!(!racy.is_empty());
        assert!(racy.iter().all(|d| d.code == CheckCode::Cp101));
        assert_eq!(dma_repro(true), Vec::new());
    }
}
