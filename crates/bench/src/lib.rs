#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-bench — experiment harness for the CellPilot reproduction
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! * [`table2::measure_table2`] — Table II (latency of 5 channel types ×
//!   CellPilot / hand-coded DMA / hand-coded copy × 1 B / 1600 B), plus
//!   the Figure 5 (latency bars) and Figure 6 (throughput) renderings of
//!   the same data;
//! * the `repro_*` binaries print each artifact with the paper's numbers
//!   side by side;
//! * the Criterion benches in `benches/` track the wall-clock cost of the
//!   simulator itself.

pub mod chaos;
pub mod check;
pub mod cli;
pub mod codesize;
pub mod explore;
pub mod imb;
pub mod overload;
pub mod pingpong;
pub mod report;
pub mod service;
pub mod sweep;
pub mod table2;

pub use chaos::{
    chaos, chaos_plan, chaos_traced, checked_run_matches_golden, golden_end_time,
    seed_with_failover, ChaosFailure, ChaosOutcome, ChaosReport,
};
pub use explore::{explore, fault_replay_outcome, FaultReplayOutcome, ScheduleDivergence};
pub use imb::{exchange, pingping};
pub use overload::{
    overload, overload_bench_rows, overload_plan, overload_traced, OverloadFailure, OverloadReport,
};
pub use pingpong::{
    cellpilot_pingpong, cellpilot_pingpong_one_sided, cellpilot_pingpong_with,
    cellpilot_pingpong_xeon_initiator, PingPong, WARMUP,
};
pub use report::{bench_report, one_sided_rows};
pub use service::{
    ablation, service, service_bench_rows, service_mpi_costs, service_spec, service_traced,
    AblationReport, ServiceFailure, ServiceReport, ServiceScenario, POOL_WORKERS,
};
pub use sweep::{dma_copy_crossover, render_sweep, sweep, SweepPoint, DEFAULT_SIZES};
pub use table2::{
    measure_table2, render_fig5, render_fig6, render_table2, Cell, PAPER_TABLE2, SIZES,
};
