//! The same 3-hop relay recoded with DaCS + DaCSH — remote memory
//! regions, `put`/`wait`, mailboxes, and hierarchy-conformant messaging
//! between the two PPEs. The paper measured its C equivalent at 114 lines
//! ("and called dacs_remote_mem_create, dacs_remote_mem_query, dacs_put,
//! dacs_wait, dacs_remote_mem_release, and so on").

use cp_dacs::{DacsHost, HybridElement, MemPerm};
use cp_des::Simulation;
use cp_mpisim::{MpiCosts, MpiWorld};
use cp_simnet::{ClusterSpec, NodeId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Number of integers relayed.
pub const N: usize = 64;

fn encode(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_be_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_be_bytes(c.try_into().unwrap()))
        .collect()
}

/// Run the relay; returns the array as received by the final SPE.
pub fn run() -> Vec<i32> {
    let out: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let result = out.clone();
    let bytes = N * 4;

    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let cell0 = cluster.cell(NodeId(0)).clone();
    let cell1 = cluster.cell(NodeId(1)).clone();
    let world = MpiWorld::new(cluster, vec![NodeId(0), NodeId(1)], MpiCosts::default());
    let mut sim = Simulation::new();
    let w2 = world.clone();

    // Rank 0: near PPE — local HE for the source SPE, hybrid AE of rank 1.
    world.launch(&mut sim, 0, "nearPPE", move |comm| {
        let ctx = comm.ctx().clone();
        let dacs = DacsHost::init(cell0.clone());
        let stage = cell0.mem.alloc(bytes, 16).unwrap();
        let mem = dacs.remote_mem_create(stage, bytes, MemPerm::ReadWrite);
        let pid = dacs
            .de_start(&ctx, 0, "source", 4096, move |ae| {
                let len = ae.remote_mem_query(mem).unwrap();
                let ls = ae.local_store().alloc(len, 16).unwrap();
                let data: Vec<i32> = (0..N as i32).map(|i| i * 3).collect();
                ae.local_store().write(ls, &encode(&data)).unwrap();
                ae.put(mem, 0, ls, len, 0).unwrap();
                ae.wait(0);
                ae.mailbox_write(1);
                ae.local_store().free(ls).unwrap();
            })
            .unwrap();
        assert_eq!(dacs.mailbox_read(&ctx, 0), 1);
        let data = cell0.mem.read(stage.0 as usize, bytes).unwrap();
        dacs.remote_mem_release(mem).unwrap();
        // Hop 2: hierarchy-conformant transfer to the peer PPE. DaCS
        // itself has no sibling path, so the two PPEs pair up as a
        // two-element hybrid group (rank 0 acting as host).
        let he = HybridElement::host(&comm, vec![1]);
        he.send_v(1, data).unwrap();
        ctx.join(pid);
    });

    // Rank 1: far PPE — hybrid child of rank 0, local HE for the sink SPE.
    w2.launch(&mut sim, 1, "farPPE", move |comm| {
        let ctx = comm.ctx().clone();
        let ae_of_host = HybridElement::accelerator(&comm, 0);
        let data = ae_of_host.recv_v(0).unwrap();
        let dacs = DacsHost::init(cell1.clone());
        let stage = cell1.mem.alloc(bytes, 16).unwrap();
        cell1.mem.write(stage.0 as usize, &data).unwrap();
        let mem = dacs.remote_mem_create(stage, bytes, MemPerm::ReadOnly);
        let out2 = out.clone();
        let pid = dacs
            .de_start(&ctx, 0, "sink", 4096, move |ae| {
                let len = ae.remote_mem_query(mem).unwrap();
                let ls = ae.local_store().alloc(len, 16).unwrap();
                ae.get(mem, 0, ls, len, 0).unwrap();
                ae.wait(0);
                *out2.lock() = decode(&ae.local_store().read(ls, len).unwrap());
                ae.mailbox_write(1);
                ae.local_store().free(ls).unwrap();
            })
            .unwrap();
        assert_eq!(dacs.mailbox_read(&ctx, 0), 1);
        dacs.remote_mem_release(mem).unwrap();
        ctx.join(pid);
    });

    sim.run().unwrap();
    let v = result.lock().clone();
    v
}
