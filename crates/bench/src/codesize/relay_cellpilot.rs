//! The paper's "longer example", CellPilot version: an array travels from
//! an SPE process to its parent PPE, from there to another node's PPE, and
//! from there to that node's SPE — three channel transfers, one API.
//! (The paper's C version of this program is 80 lines; the SDK recode 186,
//! the DaCS recode 114.)

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Number of integers relayed.
pub const N: usize = 64;

/// Run the relay; returns the array as received by the final SPE.
pub fn run() -> Vec<i32> {
    let out: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let result = out.clone();

    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());

    let source = SpeProgram::new("source", 2048, |spe, _, _| {
        let data: Vec<i32> = (0..N as i32).map(|i| i * 3).collect();
        spe.write(CpChannel(0), "%64d", &[PiValue::Int32(data)])
            .unwrap();
    });
    let sink = SpeProgram::new("sink", 2048, move |spe, _, _| {
        let vals = spe.read(CpChannel(2), "%64d").unwrap();
        let PiValue::Int32(v) = &vals[0] else {
            unreachable!()
        };
        *out.lock() = v.clone();
    });

    let far_ppe = cfg
        .create_process("farPPE", 0, |cp, _| {
            let t = cp.run_spe(cellpilot::CpProcess(3), 0, 0).unwrap();
            let vals = cp.read(CpChannel(1), "%64d").unwrap();
            cp.write(CpChannel(2), "%64d", &vals).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    let src_spe = cfg.create_spe_process(&source, CP_MAIN, 0).unwrap();
    let sink_spe = cfg.create_spe_process(&sink, far_ppe, 0).unwrap();

    cfg.channel(src_spe, CP_MAIN).build().unwrap(); // hop 1: SPE -> parent PPE
    cfg.channel(CP_MAIN, far_ppe).build().unwrap(); // hop 2: PPE -> remote PPE
    cfg.channel(far_ppe, sink_spe).build().unwrap(); // hop 3: PPE -> its SPE

    cfg.run(move |cp| {
        let t = cp.run_spe(src_spe, 0, 0).unwrap();
        let vals = cp.read(CpChannel(0), "%64d").unwrap();
        cp.write(CpChannel(1), "%64d", &vals).unwrap();
        cp.wait_spe(t);
    })
    .unwrap();

    let v = result.lock().clone();
    v
}
