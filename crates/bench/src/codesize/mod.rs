//! Code-size experiment (paper Section IV.C): the same 3-hop relay
//! application — SPE → parent PPE → remote PPE → its SPE — written three
//! ways. The paper's C versions measured 80 lines (CellPilot), 114 (DaCS)
//! and 186 (raw SDK); the Rust reimplementations are counted the same way
//! (non-blank, non-comment lines) by [`loc_comparison`].

pub mod relay_cellpilot;
pub mod relay_dacs;
pub mod relay_sdk;

/// Paper-reported line counts for the three versions.
pub const PAPER_LOC: [(&str, usize); 3] = [("CellPilot", 80), ("DaCS", 114), ("SDK", 186)];

/// Count effective lines of code: non-blank lines that are not pure
/// comments (the convention used for the paper's C counts).
pub fn effective_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Measured line counts of the three Rust implementations, in the paper's
/// order (CellPilot, DaCS, SDK).
pub fn loc_comparison() -> [(&'static str, usize); 3] {
    [
        (
            "CellPilot",
            effective_loc(include_str!("relay_cellpilot.rs")),
        ),
        ("DaCS", effective_loc(include_str!("relay_dacs.rs"))),
        ("SDK", effective_loc(include_str!("relay_sdk.rs"))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expected() -> Vec<i32> {
        (0..64).map(|i| i * 3).collect()
    }

    #[test]
    fn all_three_relays_produce_identical_output() {
        assert_eq!(relay_cellpilot::run(), expected());
        assert_eq!(relay_sdk::run(), expected());
        assert_eq!(relay_dacs::run(), expected());
    }

    #[test]
    fn loc_ordering_matches_paper() {
        let [(_, cp), (_, dacs), (_, sdk)] = loc_comparison();
        assert!(
            cp < dacs,
            "CellPilot ({cp}) should be tersest (DaCS {dacs})"
        );
        assert!(dacs < sdk, "DaCS ({dacs}) should beat raw SDK ({sdk})");
        // The paper's ratio SDK/CellPilot is 186/80 ≈ 2.3; ours should be
        // clearly above 1.5.
        assert!(sdk as f64 / cp as f64 > 1.5, "sdk={sdk} cp={cp}");
    }

    #[test]
    fn effective_loc_ignores_comments_and_blanks() {
        let src = "// comment\n\nlet x = 1; // trailing is counted\n   \n//! doc\n";
        assert_eq!(effective_loc(src), 1);
    }
}
