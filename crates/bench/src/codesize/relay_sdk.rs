//! The same 3-hop relay hand-coded against the raw SDK layers — explicit
//! SPE contexts, local-store allocation, DMA tag management, mailbox
//! handshakes, and MPI calls. This is the style of program the paper
//! measured at 186 lines of C ("and called functions such as mfc_put,
//! mfc_write_tag_mask, mfc_read_tag_status, spu_write_out_mbox,
//! spe_in_mbox_status, and so on").

use cp_cellsim::{DmaDir, Ea};
use cp_des::Simulation;
use cp_mpisim::{Datatype, MpiCosts, MpiWorld};
use cp_simnet::{ClusterSpec, NodeId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Number of integers relayed.
pub const N: usize = 64;

const MSG_READY: u32 = 1;
const MSG_TAKEN: u32 = 2;

fn encode(vals: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

fn decode(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_be_bytes(c.try_into().unwrap()))
        .collect()
}

/// Run the relay; returns the array as received by the final SPE.
pub fn run() -> Vec<i32> {
    let out: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let result = out.clone();
    let bytes = N * 4;

    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let cell0 = cluster.cell(NodeId(0)).clone();
    let cell1 = cluster.cell(NodeId(1)).clone();
    let world = MpiWorld::new(cluster, vec![NodeId(0), NodeId(1)], MpiCosts::default());
    let mut sim = Simulation::new();
    let w2 = world.clone();

    // Rank 0: near PPE. Allocates a staging buffer, starts the source SPE,
    // waits for its DMA'd data, forwards it over MPI.
    world.launch(&mut sim, 0, "nearPPE", move |comm| {
        let ctx = comm.ctx().clone();
        let costs = cell0.costs.clone();
        let stage: Ea = cell0.mem.alloc(bytes, 16).unwrap();
        let cell = cell0.clone();
        let pid = cell0
            .start_spe(&ctx, 0, "source", 4096, move |sctx| {
                let costs = cell.costs.clone();
                // Build the array in local store.
                let ls = cell.spes[0].ls.alloc(bytes, 16).unwrap();
                let data: Vec<i32> = (0..N as i32).map(|i| i * 3).collect();
                cell.spes[0].ls.write(ls, &encode(&data)).unwrap();
                // Learn the staging EA from the PPE (as two mailbox words).
                let hi = cell.spes[0].mbox.spu_read_inbox(sctx, &costs) as u64;
                let lo = cell.spes[0].mbox.spu_read_inbox(sctx, &costs) as u64;
                let stage = Ea((hi << 32) | lo);
                // mfc_put + tag wait, then notify the PPE.
                cell.dma(sctx, 0, DmaDir::Put, 0, ls, stage, bytes).unwrap();
                cell.dma_wait(sctx, 0, 1 << 0);
                cell.spes[0].mbox.spu_write_outbox(sctx, &costs, MSG_READY);
                // Wait for the PPE to take the buffer before exiting.
                assert_eq!(cell.spes[0].mbox.spu_read_inbox(sctx, &costs), MSG_TAKEN);
                cell.spes[0].ls.free(ls).unwrap();
            })
            .unwrap();
        // Hand the staging address to the SPE.
        cell0.spes[0]
            .mbox
            .ppe_write_inbox(&ctx, &costs, (stage.0 >> 32) as u32);
        cell0.spes[0]
            .mbox
            .ppe_write_inbox(&ctx, &costs, stage.0 as u32);
        // Hop 1 complete when the SPE signals READY.
        assert_eq!(cell0.spes[0].mbox.ppe_read_outbox(&ctx, &costs), MSG_READY);
        let data = cell0.mem.read(stage.0 as usize, bytes).unwrap();
        cell0.spes[0].mbox.ppe_write_inbox(&ctx, &costs, MSG_TAKEN);
        // Hop 2: MPI to the far PPE.
        comm.send_bytes(1, 0, Datatype::Byte, bytes, data);
        ctx.join(pid);
    });

    // Rank 1: far PPE. Receives the MPI message, starts the sink SPE,
    // which DMAs the data in from the staging buffer.
    w2.launch(&mut sim, 1, "farPPE", move |comm| {
        let ctx = comm.ctx().clone();
        let costs = cell1.costs.clone();
        let msg = comm.recv(Some(0), Some(0));
        let stage: Ea = cell1.mem.alloc(bytes, 16).unwrap();
        cell1.mem.write(stage.0 as usize, &msg.data).unwrap();
        let cell = cell1.clone();
        let out2 = out.clone();
        let pid = cell1
            .start_spe(&ctx, 0, "sink", 4096, move |sctx| {
                let costs = cell.costs.clone();
                let ls = cell.spes[0].ls.alloc(bytes, 16).unwrap();
                let hi = cell.spes[0].mbox.spu_read_inbox(sctx, &costs) as u64;
                let lo = cell.spes[0].mbox.spu_read_inbox(sctx, &costs) as u64;
                let stage = Ea((hi << 32) | lo);
                // Hop 3: mfc_get from the staging buffer.
                cell.dma(sctx, 0, DmaDir::Get, 0, ls, stage, bytes).unwrap();
                cell.dma_wait(sctx, 0, 1 << 0);
                let data = decode(&cell.spes[0].ls.read(ls, bytes).unwrap());
                *out2.lock() = data;
                cell.spes[0].mbox.spu_write_outbox(sctx, &costs, MSG_READY);
                cell.spes[0].ls.free(ls).unwrap();
            })
            .unwrap();
        cell1.spes[0]
            .mbox
            .ppe_write_inbox(&ctx, &costs, (stage.0 >> 32) as u32);
        cell1.spes[0]
            .mbox
            .ppe_write_inbox(&ctx, &costs, stage.0 as u32);
        assert_eq!(cell1.spes[0].mbox.ppe_read_outbox(&ctx, &costs), MSG_READY);
        ctx.join(pid);
    });

    sim.run().unwrap();
    let v = result.lock().clone();
    v
}
