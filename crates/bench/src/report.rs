//! Builders for the machine-readable `BENCH_<label>.json` reports the CI
//! perf gate diffs (see [`cp_trace::BenchReport`] for the schema).

use crate::pingpong::cellpilot_pingpong_one_sided;
use crate::sweep::{sweep, DEFAULT_SIZES};
use crate::table2::measure_table2;
use cp_trace::{BenchChannelType, BenchReport, SweepRow};

/// Re-measure the SPE-read channel scenarios (types 2–5) over one-sided
/// window-fabric channels — the ablation rows of the `one_sided` section
/// in `BENCH_*.json`. Type 1 is rank↔rank and has no window to target.
pub fn one_sided_rows(reps: usize) -> Vec<BenchChannelType> {
    (2..=5u8)
        .map(|ty| {
            let small = cellpilot_pingpong_one_sided(ty, 1, reps);
            let large = cellpilot_pingpong_one_sided(ty, 1600, reps);
            BenchChannelType {
                chan_type: ty,
                latency_us_small: small.one_way_us,
                latency_us_large: large.one_way_us,
                throughput_mb_s: large.bytes as f64 / large.one_way_us,
            }
        })
        .collect()
}

/// Measure Table II plus the type-2 PingPong payload sweep and package the
/// medians as a [`BenchReport`]. The simulator is deterministic, so the
/// report depends only on the cost models — which is exactly what the CI
/// gate is meant to catch drifting.
pub fn bench_report(label: &str, reps: usize) -> BenchReport {
    let cells = measure_table2(reps);
    let mut report = BenchReport::new(label, reps as u64);
    for ty in 1..=5u8 {
        let cell_for = |bytes: usize| {
            cells
                .iter()
                .find(|c| c.chan_type == ty && c.bytes == bytes)
                .unwrap_or_else(|| panic!("Table II measures type {ty} at {bytes} B"))
        };
        let small = cell_for(1);
        let large = cell_for(1600);
        report.channel_types.push(BenchChannelType {
            chan_type: ty,
            latency_us_small: small.cellpilot_us,
            latency_us_large: large.cellpilot_us,
            throughput_mb_s: large.cellpilot_mb_per_s(),
        });
    }
    report.pingpong_sweep = sweep(2, &DEFAULT_SIZES, reps)
        .into_iter()
        .map(|p| SweepRow {
            bytes: p.bytes as u64,
            cellpilot_us: p.cellpilot_us,
            dma_us: p.dma_us,
            copy_us: p.copy_us,
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_types_and_round_trips() {
        let r = bench_report("test", 3);
        assert_eq!(r.channel_types.len(), 5);
        assert_eq!(r.pingpong_sweep.len(), DEFAULT_SIZES.len());
        assert!(r.channel_types.iter().all(|c| c.latency_us_small > 0.0
            && c.latency_us_large > c.latency_us_small
            && c.throughput_mb_s > 0.0));
        let back = BenchReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }
}
