//! Regeneration of the paper's Table II / Figure 5 / Figure 6 data:
//! one-way latency of every channel type under CellPilot and the two
//! hand-coded baselines, for 1-byte and 1600-byte payloads.

use crate::pingpong::cellpilot_pingpong;
use cellpilot::baseline::{pingpong as baseline_pingpong, BaselineImpl};

/// The paper's published Table II values (µs), for side-by-side reporting.
/// Index: `(type-1, bytes)` → `(cellpilot, dma, copy)`.
pub const PAPER_TABLE2: [[(f64, f64, f64); 2]; 5] = [
    [(105.0, 98.0, 98.0), (173.0, 160.0, 160.0)],
    [(59.0, 15.0, 15.0), (76.0, 15.0, 30.0)],
    [(140.0, 114.0, 107.0), (219.0, 181.0, 175.0)],
    [(112.0, 30.0, 30.0), (123.0, 30.0, 60.0)],
    [(189.0, 131.0, 117.0), (263.0, 195.0, 194.0)],
];

/// The two payload sizes of Table II: `%b` and `%100Lf`.
pub const SIZES: [usize; 2] = [1, 1600];

/// One measured row-cell of Table II.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Channel type 1..=5.
    pub chan_type: u8,
    /// Payload bytes (1 or 1600).
    pub bytes: usize,
    /// Measured CellPilot one-way latency, µs.
    pub cellpilot_us: f64,
    /// Measured hand-coded DMA latency, µs.
    pub dma_us: f64,
    /// Measured hand-coded copy latency, µs.
    pub copy_us: f64,
}

impl Cell {
    /// The paper's published values for this cell.
    pub fn paper(&self) -> (f64, f64, f64) {
        let size_idx = usize::from(self.bytes == 1600);
        PAPER_TABLE2[(self.chan_type - 1) as usize][size_idx]
    }

    /// Throughput in MB/s for the CellPilot measurement (Figure 6's
    /// quantity, for the array case).
    pub fn cellpilot_mb_per_s(&self) -> f64 {
        self.bytes as f64 / self.cellpilot_us
    }

    /// Throughput in MB/s for the DMA baseline.
    pub fn dma_mb_per_s(&self) -> f64 {
        self.bytes as f64 / self.dma_us
    }

    /// Throughput in MB/s for the copy baseline.
    pub fn copy_mb_per_s(&self) -> f64 {
        self.bytes as f64 / self.copy_us
    }
}

/// Measure the full table. `reps` is the timed repetition count per cell
/// (the paper used 1000; 50 is plenty in a deterministic simulator — the
/// variance is exactly zero).
pub fn measure_table2(reps: usize) -> Vec<Cell> {
    let mut out = Vec::with_capacity(10);
    for chan_type in 1..=5u8 {
        for &bytes in &SIZES {
            let cp = cellpilot_pingpong(chan_type, bytes, reps).one_way_us;
            let dma = baseline_pingpong(chan_type, BaselineImpl::Dma, bytes, reps).one_way_us;
            let copy = baseline_pingpong(chan_type, BaselineImpl::Copy, bytes, reps).one_way_us;
            out.push(Cell {
                chan_type,
                bytes,
                cellpilot_us: cp,
                dma_us: dma,
                copy_us: copy,
            });
        }
    }
    out
}

/// Render the measured table next to the paper's numbers, in the layout of
/// Table II.
pub fn render_table2(cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("TABLE II. CELLPILOT VS HAND-CODED TIMING (us), measured | paper\n");
    s.push_str("Type  Bytes   CellPilot            DMA                  Copy\n");
    for c in cells {
        let (p_cp, p_dma, p_copy) = c.paper();
        s.push_str(&format!(
            "{:>4} {:>6}   {:>7.1} | {:>5.0}      {:>7.1} | {:>5.0}      {:>7.1} | {:>5.0}\n",
            c.chan_type, c.bytes, c.cellpilot_us, p_cp, c.dma_us, p_dma, c.copy_us, p_copy
        ));
    }
    s
}

/// Render Figure 5: grouped latency bars per channel type; the solid part
/// is the 1-byte latency and the hatched extension the 1600-byte latency
/// (exactly the paper's encoding).
pub fn render_fig5(cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("Figure 5. Latencies for CellPilot vs hand-coded transfers\n");
    s.push_str("(# = 1-byte latency, - = additional 1600-byte latency; 1 char = 4 us)\n\n");
    let scale = 4.0;
    for t in 1..=5u8 {
        let small = cells
            .iter()
            .find(|c| c.chan_type == t && c.bytes == 1)
            .expect("1B cell");
        let big = cells
            .iter()
            .find(|c| c.chan_type == t && c.bytes == 1600)
            .expect("1600B cell");
        s.push_str(&format!("type {t}\n"));
        for (label, v1, v1600) in [
            ("CellPilot", small.cellpilot_us, big.cellpilot_us),
            ("DMA      ", small.dma_us, big.dma_us),
            ("Copy     ", small.copy_us, big.copy_us),
        ] {
            let solid = (v1 / scale).round() as usize;
            let hatch = ((v1600 - v1).max(0.0) / scale).round() as usize;
            s.push_str(&format!(
                "  {label} {}{} {:.0}/{:.0}\n",
                "#".repeat(solid),
                "-".repeat(hatch),
                v1,
                v1600
            ));
        }
    }
    s
}

/// Render Figure 6: throughput of the 1600-byte array case, MB/s.
pub fn render_fig6(cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("Figure 6. Throughput for CellPilot vs hand-coded transfers (MB/s, 1600B array)\n");
    s.push_str("(1 char = 2 MB/s)\n\n");
    let scale = 2.0;
    for t in 1..=5u8 {
        let big = cells
            .iter()
            .find(|c| c.chan_type == t && c.bytes == 1600)
            .expect("1600B cell");
        s.push_str(&format!("type {t}\n"));
        for (label, v) in [
            ("CellPilot", big.cellpilot_mb_per_s()),
            ("DMA      ", big.dma_mb_per_s()),
            ("Copy     ", big.copy_mb_per_s()),
        ] {
            s.push_str(&format!(
                "  {label} {} {v:.1}\n",
                "#".repeat((v / scale).round() as usize)
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_ten_cells_and_sane_shape() {
        let cells = measure_table2(5);
        assert_eq!(cells.len(), 10);
        for c in &cells {
            // CellPilot never beats hand-coded transfers (types 2-5); for
            // type 1 it adds the Pilot-layer overhead over raw MPI.
            assert!(
                c.cellpilot_us > c.dma_us.min(c.copy_us),
                "type {} {}B: cp={} dma={} copy={}",
                c.chan_type,
                c.bytes,
                c.cellpilot_us,
                c.dma_us,
                c.copy_us
            );
        }
    }

    #[test]
    fn measured_within_40_percent_of_paper() {
        // Shape-fidelity guard: every measured cell stays within a broad
        // band of the paper's value (the substrate is a model, not the
        // authors' testbed — EXPERIMENTS.md records exact deltas).
        let cells = measure_table2(10);
        for c in &cells {
            let (p_cp, p_dma, p_copy) = c.paper();
            for (m, p, label) in [
                (c.cellpilot_us, p_cp, "cellpilot"),
                (c.dma_us, p_dma, "dma"),
                (c.copy_us, p_copy, "copy"),
            ] {
                let ratio = m / p;
                assert!(
                    (0.55..=1.45).contains(&ratio),
                    "type {} {}B {label}: measured {m:.1} vs paper {p:.0} (ratio {ratio:.2})",
                    c.chan_type,
                    c.bytes
                );
            }
        }
    }

    #[test]
    fn fig6_throughput_ranking_matches_paper() {
        // DMA dominates the array case; CellPilot is the slowest.
        let cells = measure_table2(5);
        for t in 2..=5u8 {
            let c = cells
                .iter()
                .find(|c| c.chan_type == t && c.bytes == 1600)
                .unwrap();
            assert!(c.dma_mb_per_s() >= c.copy_mb_per_s() * 0.95, "type {t}");
            assert!(c.dma_mb_per_s() > c.cellpilot_mb_per_s(), "type {t}");
        }
    }

    #[test]
    fn renders_are_nonempty_and_complete() {
        let cells = measure_table2(3);
        let t = render_table2(&cells);
        assert_eq!(t.lines().count(), 12);
        let f5 = render_fig5(&cells);
        assert!(f5.contains("type 5") && f5.contains("#"));
        let f6 = render_fig6(&cells);
        assert!(f6.contains("MB/s"));
    }
}
