//! Message-size sweep (extension experiment X-3): Table II samples only
//! 1 B and 1600 B; sweeping the payload exposes the two crossovers the
//! paper's discussion implies — where DMA's flat cost overtakes the
//! per-byte copy path, and how CellPilot's fixed Co-Pilot overhead
//! amortizes with message size.

use crate::pingpong::cellpilot_pingpong;
use cellpilot::baseline::{pingpong as baseline_pingpong, BaselineImpl};

/// Default sweep sizes (bytes). Capped at 8 KiB so every transfer stays
/// within the MPI eager limit and a single MFC command.
pub const DEFAULT_SIZES: [usize; 8] = [1, 16, 64, 256, 1024, 2048, 4096, 8192];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Payload bytes.
    pub bytes: usize,
    /// CellPilot one-way latency, µs.
    pub cellpilot_us: f64,
    /// Hand-coded DMA one-way latency, µs.
    pub dma_us: f64,
    /// Hand-coded copy one-way latency, µs.
    pub copy_us: f64,
}

impl SweepPoint {
    /// CellPilot's overhead relative to the best hand-coded mechanism.
    pub fn overhead_factor(&self) -> f64 {
        self.cellpilot_us / self.dma_us.min(self.copy_us)
    }
}

/// Sweep one channel type over the given sizes.
pub fn sweep(chan_type: u8, sizes: &[usize], reps: usize) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&bytes| SweepPoint {
            bytes,
            cellpilot_us: cellpilot_pingpong(chan_type, bytes, reps).one_way_us,
            dma_us: baseline_pingpong(chan_type, BaselineImpl::Dma, bytes, reps).one_way_us,
            copy_us: baseline_pingpong(chan_type, BaselineImpl::Copy, bytes, reps).one_way_us,
        })
        .collect()
}

/// The smallest swept size at which DMA is strictly faster than copy
/// (`None` if it never is): the copy/DMA crossover.
pub fn dma_copy_crossover(points: &[SweepPoint]) -> Option<usize> {
    points
        .iter()
        .find(|p| p.dma_us < p.copy_us)
        .map(|p| p.bytes)
}

/// Render a sweep as an aligned table.
pub fn render_sweep(chan_type: u8, points: &[SweepPoint]) -> String {
    let mut s = format!(
        "Message-size sweep, channel type {chan_type} (one-way us)\n{:>8} {:>12} {:>10} {:>10} {:>12}\n",
        "bytes", "CellPilot", "DMA", "Copy", "CP overhead"
    );
    for p in points {
        s.push_str(&format!(
            "{:>8} {:>12.1} {:>10.1} {:>10.1} {:>11.2}x\n",
            p.bytes,
            p.cellpilot_us,
            p.dma_us,
            p.copy_us,
            p.overhead_factor()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_grows_dma_stays_flat() {
        let pts = sweep(2, &[16, 8192], 6);
        assert!(
            pts[1].copy_us > pts[0].copy_us * 2.0,
            "copy scales per-byte"
        );
        assert!(
            pts[1].dma_us < pts[0].dma_us * 1.2,
            "DMA flat: {} -> {}",
            pts[0].dma_us,
            pts[1].dma_us
        );
    }

    #[test]
    fn dma_overtakes_copy_at_moderate_sizes() {
        let pts = sweep(2, &DEFAULT_SIZES, 6);
        let cross = dma_copy_crossover(&pts);
        assert!(cross.is_some(), "DMA must win eventually");
        assert!(cross.unwrap() <= 2048, "crossover too late: {cross:?}");
    }

    #[test]
    fn cellpilot_overhead_amortizes_against_copy() {
        // CellPilot's transfers use the memory-mapped copy mechanism, so
        // the fair amortization comparison is against the copy baseline
        // (against flat DMA the *relative* overhead grows with size — both
        // facts are visible in repro_sweep's output).
        let pts = sweep(2, &[1, 8192], 6);
        let at_1b = pts[0].cellpilot_us / pts[0].copy_us;
        let at_8k = pts[1].cellpilot_us / pts[1].copy_us;
        assert!(
            at_8k < at_1b,
            "overhead {at_1b:.2}x at 1B should shrink to {at_8k:.2}x at 8KB"
        );
    }

    #[test]
    fn remote_type_keeps_wire_floor() {
        let pts = sweep(5, &[1, 4096], 4);
        for p in &pts {
            assert!(p.dma_us > 90.0, "type 5 always pays the wire: {}", p.dma_us);
        }
    }
}
