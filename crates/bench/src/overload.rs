//! Seeded overload campaigns: drive a bounded channel well past its
//! capacity and check that credit-based flow control degrades the run
//! gracefully instead of letting queues grow without limit.
//!
//! Each seed deterministically draws a channel capacity, a burst size and
//! (for the deadline policy) a shed deadline, then runs a fixed workload
//! on the two-Cells-one-Xeon cluster: a rank writer bursts messages at a
//! reader that is either draining concurrently (`Block`) or gated behind
//! a control message (`Shed` / `DeadlineDrop`), plus a Co-Pilot-relayed
//! SPE leg saturating a second bounded channel. Four invariants must hold
//! for every seed:
//!
//! 1. **Completion** — the run finishes; backpressure never deadlocks.
//! 2. **Bounded queues** — every bounded channel's queue-depth high
//!    watermark (from the trace flow metrics) stays at or below its
//!    configured capacity.
//! 3. **Exact shedding** — under `Shed` and `DeadlineDrop` with the
//!    reader gated, exactly `burst - capacity` writes fail, each with
//!    [`ErrorKind::Backpressure`] and a `source()` chain, and the run
//!    reports matching `Overload` / `MessageShed` incidents; under
//!    `Block` nothing sheds and nothing is lost.
//! 4. **Delivery** — every message the writer's `write` accepted is read
//!    back intact, in order.
//!
//! The `repro_overload` binary sweeps seeds; [`overload`] runs one.

use std::error::Error as _;
use std::fmt;
use std::sync::{Arc, Mutex};

use cellpilot::{
    CellPilotConfig, CellPilotOpts, CpChannel, ErrorKind, OverloadPolicy, SpeProgram, CP_MAIN,
};
use cp_des::{IncidentCategory, SimDuration, SimTime};
use cp_simnet::ClusterSpec;
use cp_trace::OverloadChannel;

/// How an overload run failed its invariants.
#[derive(Debug, Clone)]
pub enum OverloadFailure {
    /// The run aborted or deadlocked instead of completing.
    Sunk {
        /// The generating seed.
        seed: u64,
        /// The simulator's error rendering.
        error: String,
    },
    /// A bounded channel's queue grew past its configured capacity.
    QueueOverflow {
        /// The generating seed.
        seed: u64,
        /// The offending channel.
        chan: u32,
        /// Observed queue-depth high watermark.
        high_watermark: u64,
        /// The capacity it was supposed to respect.
        capacity: u64,
    },
    /// A policy- or delivery-invariant did not hold.
    Invariant {
        /// The generating seed.
        seed: u64,
        /// What was expected and what happened.
        detail: String,
    },
}

impl fmt::Display for OverloadFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverloadFailure::Sunk { seed, error } => {
                write!(f, "seed {seed}: run sank: {error}")
            }
            OverloadFailure::QueueOverflow {
                seed,
                chan,
                high_watermark,
                capacity,
            } => write!(
                f,
                "seed {seed}: channel {chan} queue grew to {high_watermark}, \
                 capacity {capacity}: flow control failed to bound it"
            ),
            OverloadFailure::Invariant { seed, detail } => {
                write!(f, "seed {seed}: {detail}")
            }
        }
    }
}

impl std::error::Error for OverloadFailure {}

/// What one passing overload run did, for campaign logs.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// The generating seed.
    pub seed: u64,
    /// The policy the data channel ran under.
    pub policy: OverloadPolicy,
    /// Capacity of each bounded channel.
    pub capacity: usize,
    /// Write attempts the writer made on the data channel.
    pub burst: usize,
    /// Writes the data channel accepted (the rest shed).
    pub accepted: usize,
    /// Queue-depth high watermark of the data channel.
    pub data_high_watermark: u64,
    /// Queue-depth high watermark of the SPE-leg channel.
    pub spe_high_watermark: u64,
    /// Writes that entered a credit wait, across all channels.
    pub backpressure_waits: u64,
    /// Incidents the run reported (category, count), in category order.
    pub incidents: Vec<(IncidentCategory, usize)>,
    /// Virtual completion time.
    pub end_time: SimTime,
}

/// splitmix64, as in the chaos module: tiny, dependency-free, and
/// deterministic across platforms.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The seed's drawn scenario: capacity, burst and policy. Seeds rotate
/// through the three policies so any contiguous window of three covers
/// them all.
pub fn overload_plan(seed: u64) -> (usize, usize, OverloadPolicy) {
    let mut rng = SplitMix64(seed ^ 0x0F10_3C01_u64);
    let capacity = 2 + rng.below(4) as usize; // 2..=5
    let burst = capacity * 3;
    let policy = match seed % 3 {
        0 => OverloadPolicy::Block,
        1 => OverloadPolicy::Shed,
        _ => OverloadPolicy::DeadlineDrop(SimDuration::from_micros(40 + rng.below(200))),
    };
    (capacity, burst, policy)
}

struct RunOutcome {
    accepted: usize,
    shed_errors: Vec<String>,
    xeon_got: Vec<Vec<i32>>,
    spe_sum: i32,
    report: cp_des::SimReport,
    flow: cp_trace::FlowMetrics,
}

/// Channel indices of the fixed workload, in creation order.
const DATA: usize = 0;
const COUNT: usize = 1;
const SPE_IN: usize = 2;
const SPE_OUT: usize = 3;

/// Messages the SPE leg pushes through its bounded channel.
fn spe_burst(capacity: usize) -> usize {
    capacity * 2 + 1
}

fn run_workload(
    capacity: usize,
    burst: usize,
    policy: OverloadPolicy,
    recorder: cp_trace::Recorder,
) -> Result<RunOutcome, String> {
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = CellPilotOpts::new().with_tracing(recorder.clone());
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    let accepted: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let shed_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let xeon_out: Arc<Mutex<Vec<Vec<i32>>>> = Arc::new(Mutex::new(Vec::new()));
    let spe_sum: Arc<Mutex<i32>> = Arc::new(Mutex::new(0));

    let n_spe = spe_burst(capacity) as i32;
    let s0a_prog = SpeProgram::new("drain", 2048, move |spe, _, _| {
        let mut acc = 0i32;
        for _ in 0..n_spe {
            let v = spe.read_vec::<i32>(CpChannel(SPE_IN)).unwrap();
            acc += v.iter().sum::<i32>();
        }
        spe.write_slice(CpChannel(SPE_OUT), &[acc]).unwrap();
    });

    // Under Block the reader drains the burst concurrently (the writer
    // stalls at capacity and resumes as credits return); under the
    // shedding policies it is gated behind the count message, so nothing
    // drains during the burst and the shed count is exact.
    let gated = policy != OverloadPolicy::Block;
    let xeon_sink = xeon_out.clone();
    let xeon = cfg
        .create_process("xeon", 0, move |cp, _| {
            let expect = if gated {
                let n = cp.read_vec::<i32>(CpChannel(COUNT)).unwrap();
                n[0] as usize
            } else {
                burst
            };
            for _ in 0..expect {
                let v = cp.read_vec::<i32>(CpChannel(DATA)).unwrap();
                xeon_sink.lock().unwrap().push(v);
            }
            if !gated {
                let n = cp.read_vec::<i32>(CpChannel(COUNT)).unwrap();
                assert_eq!(n[0] as usize, expect, "writer and reader disagree");
            }
        })
        .unwrap();
    let s0a = cfg.create_spe_process(&s0a_prog, CP_MAIN, 0).unwrap();

    let data = cfg
        .channel(CP_MAIN, xeon)
        .capacity(capacity)
        .overload_policy(policy)
        .build()
        .unwrap();
    let count = cfg.channel(CP_MAIN, xeon).build().unwrap();
    let spe_in = cfg
        .channel(CP_MAIN, s0a)
        .capacity(capacity)
        .build()
        .unwrap();
    let spe_out = cfg.channel(s0a, CP_MAIN).build().unwrap();
    assert_eq!(
        (data.0, count.0, spe_in.0, spe_out.0),
        (DATA, COUNT, SPE_IN, SPE_OUT),
        "the SPE program names these channel ids"
    );

    let ok_count = accepted.clone();
    let errs = shed_errors.clone();
    let sum_sink = spe_sum.clone();
    let report = cfg
        .run(move |cp| {
            let _tasks = cp.run_my_spes();
            for i in 0..burst as i32 {
                match cp.write_slice(data, &[i, i * 2]) {
                    Ok(()) => *ok_count.lock().unwrap() += 1,
                    Err(e) => {
                        // Graceful degradation: a shed is an error the
                        // writer sees and can act on, not a lost run.
                        assert_eq!(e.kind(), ErrorKind::Backpressure, "shed kind: {e}");
                        assert!(e.source().is_some(), "Backpressure must carry its cause");
                        errs.lock().unwrap().push(e.to_string());
                    }
                }
            }
            let sent = *ok_count.lock().unwrap() as i32;
            cp.write_slice(count, &[sent]).unwrap();
            for i in 0..spe_burst(capacity) as i32 {
                cp.write_slice(spe_in, &[i, 1]).unwrap();
            }
            let v = cp.read_vec::<i32>(spe_out).unwrap();
            *sum_sink.lock().unwrap() = v[0];
        })
        .map_err(|e| e.to_string())?;
    let flow = recorder.snapshot().flow;
    let accepted = *accepted.lock().unwrap();
    let shed_errors = std::mem::take(&mut *shed_errors.lock().unwrap());
    let xeon_got = std::mem::take(&mut *xeon_out.lock().unwrap());
    let spe_sum = *spe_sum.lock().unwrap();
    Ok(RunOutcome {
        accepted,
        shed_errors,
        xeon_got,
        spe_sum,
        report,
        flow,
    })
}

/// Run one seeded overload campaign and check the four invariants.
/// Deterministic: the same seed replays the same capacities, burst and
/// policy, timestamp for timestamp.
pub fn overload(seed: u64) -> Result<OverloadReport, OverloadFailure> {
    overload_traced(seed).map(|(r, _)| r)
}

/// [`overload`] with the run's recorder returned, for Chrome-trace export
/// of a saturated run.
pub fn overload_traced(seed: u64) -> Result<(OverloadReport, cp_trace::Recorder), OverloadFailure> {
    let (capacity, burst, policy) = overload_plan(seed);
    let rec = cp_trace::Recorder::enabled();
    let out = run_workload(capacity, burst, policy, rec.clone())
        .map_err(|error| OverloadFailure::Sunk { seed, error })?;

    // Invariant 2: every bounded queue stayed within its capacity.
    for (&chan, &hwm) in &out.flow.queue_high_watermark {
        if hwm > capacity as u64 {
            return Err(OverloadFailure::QueueOverflow {
                seed,
                chan,
                high_watermark: hwm,
                capacity: capacity as u64,
            });
        }
    }

    // Invariant 3: policy-exact shedding (and incident accounting).
    let expected_shed = match policy {
        OverloadPolicy::Block => 0,
        // The reader is gated, so everything past the first `capacity`
        // writes must shed.
        OverloadPolicy::Shed | OverloadPolicy::DeadlineDrop(_) => burst - capacity,
    };
    let invariant = |detail: String| OverloadFailure::Invariant { seed, detail };
    if out.shed_errors.len() != expected_shed {
        return Err(invariant(format!(
            "policy {policy:?} shed {} writes, expected {expected_shed}",
            out.shed_errors.len()
        )));
    }
    let overloads = count_of(&out.report, IncidentCategory::Overload);
    let sheds = count_of(&out.report, IncidentCategory::MessageShed);
    if overloads != expected_shed || sheds != expected_shed {
        return Err(invariant(format!(
            "expected {expected_shed} Overload and MessageShed incidents, \
             got {overloads} and {sheds}"
        )));
    }
    if policy == OverloadPolicy::Block && !out.report.incidents.is_empty() {
        return Err(invariant(format!(
            "Block policy must not report incidents: {:?}",
            out.report.incidents
        )));
    }

    // Invariant 4: everything accepted was delivered, in order, intact.
    if out.accepted != burst - expected_shed || out.xeon_got.len() != out.accepted {
        return Err(invariant(format!(
            "accepted {} of {burst}, reader saw {} (expected {})",
            out.accepted,
            out.xeon_got.len(),
            burst - expected_shed
        )));
    }
    for (i, v) in out.xeon_got.iter().enumerate() {
        let i = i as i32;
        if v != &[i, i * 2] {
            return Err(invariant(format!("message {i} corrupted: {v:?}")));
        }
    }
    let n = spe_burst(capacity) as i32;
    let want = (0..n).sum::<i32>() + n;
    if out.spe_sum != want {
        return Err(invariant(format!(
            "SPE leg summed {}, expected {want}",
            out.spe_sum
        )));
    }

    let mut tally: Vec<(IncidentCategory, usize)> = Vec::new();
    for inc in &out.report.incidents {
        match tally.iter_mut().find(|(c, _)| *c == inc.category) {
            Some((_, k)) => *k += 1,
            None => tally.push((inc.category, 1)),
        }
    }
    let hwm = |c: usize| {
        out.flow
            .queue_high_watermark
            .get(&(c as u32))
            .copied()
            .unwrap_or(0)
    };
    Ok((
        OverloadReport {
            seed,
            policy,
            capacity,
            burst,
            accepted: out.accepted,
            data_high_watermark: hwm(DATA),
            spe_high_watermark: hwm(SPE_IN),
            backpressure_waits: out.flow.backpressure_waits.values().sum(),
            incidents: tally,
            end_time: out.report.end_time,
        },
        rec,
    ))
}

fn count_of(report: &cp_des::SimReport, cat: IncidentCategory) -> usize {
    report
        .incidents
        .iter()
        .filter(|i| i.category == cat)
        .count()
}

/// The per-channel rows the `BENCH_overload.json` artifact carries: two
/// representative saturation runs (one blocking, one shedding) re-run at
/// fixed capacities, reported straight from the trace flow metrics. The
/// CI gate fails any row whose high watermark exceeds its capacity.
pub fn overload_bench_rows() -> Result<Vec<OverloadChannel>, OverloadFailure> {
    let mut rows = Vec::new();
    // Seeds 0 and 1 rotate onto Block and Shed respectively.
    for seed in [0u64, 1] {
        let (r, _) = overload_traced(seed)?;
        let sheds = (r.burst - r.accepted) as u64;
        rows.push(OverloadChannel {
            chan: DATA as u32,
            capacity: r.capacity as u64,
            queue_high_watermark: r.data_high_watermark,
            sheds,
            backpressure_waits: r.backpressure_waits,
        });
        rows.push(OverloadChannel {
            chan: SPE_IN as u32,
            capacity: r.capacity as u64,
            queue_high_watermark: r.spe_high_watermark,
            sheds: 0,
            backpressure_waits: 0,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_all_three_policies() {
        let policies: Vec<OverloadPolicy> = (0..3).map(|s| overload_plan(s).2).collect();
        assert_eq!(policies[0], OverloadPolicy::Block);
        assert_eq!(policies[1], OverloadPolicy::Shed);
        assert!(matches!(policies[2], OverloadPolicy::DeadlineDrop(_)));
        let (c, b, _) = overload_plan(5);
        assert_eq!(b, c * 3, "burst always overruns capacity");
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let a = overload(1).expect("shed run passes");
        let b = overload(1).expect("shed run passes");
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.data_high_watermark, b.data_high_watermark);
    }

    /// A window of seeds covering every policy as a unit-level smoke; the
    /// `repro_overload` binary sweeps the full campaign.
    #[test]
    fn smoke_campaign_holds_invariants() {
        for seed in 0..3 {
            match overload(seed) {
                Ok(r) => assert!(
                    r.data_high_watermark <= r.capacity as u64,
                    "watermark above capacity slipped through"
                ),
                Err(e) => panic!("overload invariant violated: {e}"),
            }
        }
    }

    #[test]
    fn incidents_come_out_sorted() {
        // Satellite contract: SimReport incidents are deterministically
        // ordered by (time, category, process, detail), whatever order
        // the shed reports arrived in.
        let (capacity, burst, _) = overload_plan(1);
        let out = run_workload(
            capacity,
            burst,
            OverloadPolicy::Shed,
            cp_trace::Recorder::disabled(),
        )
        .expect("shed workload completes");
        let keys: Vec<_> = out
            .report
            .incidents
            .iter()
            .map(|i| {
                (
                    i.at,
                    i.category.as_str(),
                    i.process.clone(),
                    i.detail.clone(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "incidents must arrive pre-sorted");
        assert!(!keys.is_empty(), "the shed run reports incidents");
    }
}
