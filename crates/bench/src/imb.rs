//! Further IMB patterns beyond the paper's PingPong: **PingPing** (both
//! endpoints send simultaneously — measures how much of the fabric is
//! full-duplex) and **Exchange** (every process trades with both ring
//! neighbours — the halo-exchange kernel's communication core).
//!
//! One CSP-flavoured finding falls out for free: PingPing is *not
//! expressible* on a type-4/5 SPE↔SPE channel pair, because those writes
//! rendezvous at the Co-Pilot — both SPEs would block in their sends.
//! `tests::type4_pingping_deadlocks` pins that behaviour down.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Measured per-message latency of a PingPing exchange, µs.
pub fn pingping(chan_type: u8, bytes: usize, reps: usize) -> f64 {
    assert!(
        (1..=3).contains(&chan_type),
        "PingPing needs buffered writes: rank-connected types only"
    );
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let fmt = format!("%{bytes}b");
    let data = PiValue::Byte((0..bytes).map(|i| i as u8).collect());
    let elapsed = Arc::new(Mutex::new(0.0f64));
    let c0 = CpChannel(0);
    let c1 = CpChannel(1);

    // Peer side: simultaneous write-then-read loop, mirrored.
    let data_p = data.clone();
    let peer_loop = move |write: &dyn Fn(&PiValue), read: &dyn Fn() -> PiValue| {
        for _ in 0..reps {
            write(&data_p);
            let v = read();
            assert_eq!(v.len(), data_p.len());
        }
    };
    match chan_type {
        1 => {
            let fmt2 = fmt.clone();
            let peer = cfg
                .create_process("peer", 0, move |cp, _| {
                    peer_loop(
                        &|d| cp.write(c1, &fmt2, std::slice::from_ref(d)).unwrap(),
                        &|| cp.read(c0, &fmt2).unwrap().remove(0),
                    );
                })
                .unwrap();
            cfg.channel(CP_MAIN, peer).build().unwrap();
            cfg.channel(peer, CP_MAIN).build().unwrap();
        }
        2 | 3 => {
            let fmt2 = fmt.clone();
            let spe_peer = SpeProgram::new("peer", 2048, move |spe, _, _| {
                for _ in 0..reps {
                    spe.write(c1, &fmt2, std::slice::from_ref(&spe_payload(bytes)))
                        .unwrap();
                    let _ = spe.read(c0, &fmt2).unwrap();
                }
            });
            let parent = if chan_type == 2 {
                CP_MAIN
            } else {
                cfg.create_process("parent", 0, |cp, _| {
                    let t = cp.run_spe(cellpilot::CpProcess(2), 0, 0).unwrap();
                    cp.wait_spe(t);
                })
                .unwrap()
            };
            let s = cfg.create_spe_process(&spe_peer, parent, 0).unwrap();
            cfg.channel(CP_MAIN, s).build().unwrap();
            cfg.channel(s, CP_MAIN).build().unwrap();
        }
        _ => unreachable!(),
    }
    let el = elapsed.clone();
    cfg.run(move |cp| {
        let mut ts = Vec::new();
        for p in 0..cp.process_count() {
            if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                ts.push(t);
            }
        }
        let t0 = cp.ctx().now();
        for _ in 0..reps {
            cp.write(c0, &fmt, std::slice::from_ref(&data)).unwrap();
            let _ = cp.read(c1, &fmt).unwrap();
        }
        *el.lock() = (cp.ctx().now() - t0).as_micros_f64() / reps as f64;
        for t in ts {
            cp.wait_spe(t);
        }
    })
    .expect("pingping app");
    let v = *elapsed.lock();
    v
}

fn spe_payload(bytes: usize) -> PiValue {
    PiValue::Byte((0..bytes).map(|i| i as u8).collect())
}

/// IMB Exchange over a ring of `n` rank processes (main plus `n-1`
/// workers): per iteration every process sends to both neighbours and
/// receives from both. Returns the per-iteration time at main, µs.
pub fn exchange(n: usize, bytes: usize, reps: usize) -> f64 {
    assert!(n >= 3, "a ring exchange needs at least 3 processes");
    let spec = ClusterSpec {
        nodes: vec![cp_simnet::NodeKind::Commodity { cores: 4 }; n],
        ..ClusterSpec::two_cells_one_xeon()
    };
    let placement = (0..n).map(cp_simnet::NodeId).collect();
    let mut cfg = CellPilotConfig::new(spec, placement, CellPilotOpts::default());
    // Channels: for each process i, i -> i+1 (tag 2i) and i -> i-1
    // (tag 2i+1), indices mod n.
    let elapsed = Arc::new(Mutex::new(0.0f64));
    let body = move |cp: &cellpilot::CellPilot, _i: i32, el: Option<Arc<Mutex<f64>>>| {
        let me = cp.process().0;
        let right_out = CpChannel(2 * me);
        let left_out = CpChannel(2 * me + 1);
        let left = (me + n - 1) % n;
        let right = (me + 1) % n;
        let from_left = CpChannel(2 * left); // left's right-out
        let from_right = CpChannel(2 * right + 1); // right's left-out
        let fmt = format!("%{bytes}b");
        let data = PiValue::Byte(vec![me as u8; bytes]);
        let t0 = cp.ctx().now();
        for _ in 0..reps {
            cp.write(right_out, &fmt, std::slice::from_ref(&data))
                .unwrap();
            cp.write(left_out, &fmt, std::slice::from_ref(&data))
                .unwrap();
            let l = cp.read(from_left, &fmt).unwrap();
            let r = cp.read(from_right, &fmt).unwrap();
            assert_eq!(l[0], PiValue::Byte(vec![left as u8; bytes]));
            assert_eq!(r[0], PiValue::Byte(vec![right as u8; bytes]));
        }
        if let Some(el) = el {
            *el.lock() = (cp.ctx().now() - t0).as_micros_f64() / reps as f64;
        }
    };
    let mut procs = vec![CP_MAIN];
    for i in 1..n {
        let b = body;
        procs.push(
            cfg.create_process(&format!("p{i}"), i as i32, move |cp, idx| b(cp, idx, None))
                .unwrap(),
        );
    }
    for i in 0..n {
        let right = (i + 1) % n;
        let left = (i + n - 1) % n;
        let c_right = cfg.channel(procs[i], procs[right]).build().unwrap();
        let c_left = cfg.channel(procs[i], procs[left]).build().unwrap();
        assert_eq!((c_right.0, c_left.0), (2 * i, 2 * i + 1));
    }
    let el = elapsed.clone();
    cfg.run(move |cp| body(cp, 0, Some(el)))
        .expect("exchange app");
    let v = *elapsed.lock();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pingpong::cellpilot_pingpong;

    #[test]
    fn pingping_between_one_way_and_round_trip() {
        for t in 1..=3u8 {
            let one_way = cellpilot_pingpong(t, 64, 10).one_way_us;
            let pp = pingping(t, 64, 10);
            assert!(
                pp >= one_way * 0.9,
                "type {t}: pingping {pp} below one-way {one_way}"
            );
            assert!(
                pp <= one_way * 2.2,
                "type {t}: pingping {pp} worse than a full round trip {one_way}"
            );
        }
    }

    #[test]
    fn exchange_scales_with_ring_size_modestly() {
        let t4 = exchange(4, 128, 5);
        let t8 = exchange(8, 128, 5);
        assert!(t4 > 0.0 && t8 > 0.0);
        // Neighbours only: per-iteration cost must not grow linearly.
        assert!(
            t8 < t4 * 1.5,
            "ring exchange is O(1) per process: {t4} vs {t8}"
        );
    }

    #[test]
    fn type4_pingping_deadlocks() {
        // Both SPEs write first on their type-4 channels: the writes
        // rendezvous at the Co-Pilot and no read is ever posted — the
        // simulator reports the deadlock instead of hanging.
        use cellpilot::SpeProgram;
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
        let prog = SpeProgram::new("pp", 2048, |spe, _, _| {
            let me = spe.index() as usize;
            let my_out = CpChannel(me); // 0: a->b, 1: b->a
            let my_in = CpChannel(1 - me);
            spe.write(my_out, "%b", &[PiValue::Byte(vec![1])]).unwrap();
            let _ = spe.read(my_in, "%b").unwrap();
        });
        let a = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let b = cfg.create_spe_process(&prog, CP_MAIN, 1).unwrap();
        cfg.channel(a, b).build().unwrap();
        cfg.channel(b, a).build().unwrap();
        match cfg.run(move |cp| {
            let t1 = cp.run_spe(a, 0, 0).unwrap();
            let t2 = cp.run_spe(b, 0, 0).unwrap();
            cp.wait_spe(t1);
            cp.wait_spe(t2);
        }) {
            Err(cp_des::SimError::Deadlock { blocked, .. }) => {
                let spe_waits = blocked.iter().filter(|(_, n, _)| n.contains(":pp")).count();
                assert_eq!(spe_waits, 2, "both SPEs stuck in their writes");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
