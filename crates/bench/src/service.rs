//! Heavy-traffic service workload: a non-Cell front tier fans seeded
//! request/response traffic at SPE worker pools and judges the runtime by
//! its tail latency.
//!
//! The front tier is a rank on the commodity (Xeon) node of the
//! two-Cells-one-Xeon cluster. Each request is a single word `x` drawn
//! from a splitmix64 stream and routed to a seeded-random member of a
//! fixed SPE worker pool; the worker answers `x ^ REPLY_SALT` and the
//! front tier checks every reply. (One i32 packs to 13 bytes on the
//! wire — within the 16-byte mailbox-word budget; two would be 17 and
//! fall off the inline path.) Three routes cover channel types 2–5:
//!
//! * **`type2-direct`** — front → SPE (type 2) and SPE → front (type 3);
//! * **`type4-local-hop`** — front → gateway SPE (type 2), gateway →
//!   worker SPE on the same Cell (type 4), worker → front (type 3);
//! * **`type5-remote-hop`** — as above but the worker lives on the *other*
//!   Cell node, so the middle hop is a type-5 two-Co-Pilot relay;
//! * **`chaos-failover`** — the direct route with a scripted Co-Pilot
//!   kill mid-sweep: the standby adopts the node and the run's tail
//!   (p999) absorbs the failover pause while every request still
//!   completes exactly once.
//!
//! Per-request end-to-end latency is recorded through
//! [`cp_trace::Recorder::record_service_request`]; the snapshot's
//! `service` section supplies the p50/p99/p999 percentiles and the
//! sustained request rate that the `repro_service` binary prints and the
//! CI perf gate diffs against the committed baseline.
//!
//! All request payloads sit at or below the 16-byte mailbox-word budget,
//! so with eager inlining enabled (the default here) every hop rides the
//! mailbox fast path; [`ablation`] re-runs a scenario with eager disabled
//! and reports the median-latency speedup. On the local-hop route —
//! where per-message Co-Pilot protocol cost, not MPI transit, dominates
//! the round trip — the `--ablate-eager` mode of `repro_service` asserts
//! the speedup to be at least 2x.

use std::fmt;
use std::sync::Arc;

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_des::{IncidentCategory, SimDuration, SimTime};
use cp_mpisim::MpiCosts;
use cp_simnet::{ClusterSpec, FaultPlan, NodeId, RetryPolicy};
use cp_trace::{PercentileStats, ServiceRow};

/// Workers in each scenario's SPE pool. Hop routes pair every worker
/// with a gateway SPE, so 4 keeps the busiest layout (8 SPEs) within one
/// Cell node's complement.
pub const POOL_WORKERS: usize = 4;

/// splitmix64, as in the chaos and overload modules: tiny,
/// dependency-free, deterministic across platforms.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The four service scenarios the sweep and the BENCH artifact cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceScenario {
    /// Front rank ↔ SPE pool directly (channel types 2 and 3).
    Type2Direct,
    /// Requests relayed through a same-node gateway SPE (adds type 4).
    Type4LocalHop,
    /// Requests relayed to workers on the *other* Cell node (adds type 5).
    Type5RemoteHop,
    /// [`ServiceScenario::Type2Direct`] with a scripted Co-Pilot kill
    /// mid-sweep, served through the standby failover.
    ChaosFailover,
}

impl ServiceScenario {
    /// Every scenario, in sweep (and BENCH row) order.
    pub fn all() -> [ServiceScenario; 4] {
        [
            ServiceScenario::Type2Direct,
            ServiceScenario::Type4LocalHop,
            ServiceScenario::Type5RemoteHop,
            ServiceScenario::ChaosFailover,
        ]
    }

    /// The stable name used in BENCH rows and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ServiceScenario::Type2Direct => "type2-direct",
            ServiceScenario::Type4LocalHop => "type4-local-hop",
            ServiceScenario::Type5RemoteHop => "type5-remote-hop",
            ServiceScenario::ChaosFailover => "chaos-failover",
        }
    }

    /// Parse a CLI scenario name.
    pub fn from_name(name: &str) -> Option<ServiceScenario> {
        ServiceScenario::all()
            .into_iter()
            .find(|s| s.name() == name)
    }
}

impl fmt::Display for ServiceScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a service run failed its invariants.
#[derive(Debug, Clone)]
pub enum ServiceFailure {
    /// The run aborted or deadlocked instead of completing.
    Sunk {
        /// The failing scenario.
        scenario: &'static str,
        /// The generating seed.
        seed: u64,
        /// The simulator's error rendering.
        error: String,
    },
    /// A delivery-, accounting- or failover-invariant did not hold.
    Invariant {
        /// The failing scenario.
        scenario: &'static str,
        /// The generating seed.
        seed: u64,
        /// What was expected and what happened.
        detail: String,
    },
}

impl fmt::Display for ServiceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceFailure::Sunk {
                scenario,
                seed,
                error,
            } => write!(f, "{scenario} seed {seed}: run sank: {error}"),
            ServiceFailure::Invariant {
                scenario,
                seed,
                detail,
            } => write!(f, "{scenario} seed {seed}: {detail}"),
        }
    }
}

impl std::error::Error for ServiceFailure {}

/// What one passing service run measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The scenario that ran.
    pub scenario: ServiceScenario,
    /// The generating seed.
    pub seed: u64,
    /// Whether eager inlining was enabled on the request path.
    pub eager: bool,
    /// Completed end-to-end requests.
    pub requests: u64,
    /// Request-latency percentiles, µs.
    pub latency_us: PercentileStats,
    /// Completed requests over the completion window, req/s.
    pub sustained_req_s: f64,
    /// Virtual completion time.
    pub end_time: SimTime,
}

impl ServiceReport {
    /// The BENCH-artifact row for this run.
    pub fn to_row(&self) -> ServiceRow {
        ServiceRow {
            scenario: self.scenario.name().to_string(),
            requests: self.requests,
            p50_us: self.latency_us.p50,
            p99_us: self.latency_us.p99,
            p999_us: self.latency_us.p999,
            sustained_req_s: self.sustained_req_s,
        }
    }
}

/// Eager-vs-DMA ablation of one scenario: the same seeded sweep run
/// twice, once with eager inlining and once forced onto the staging-DMA
/// path. All payloads are at or below the 16-byte inline budget, so the
/// median speedup isolates exactly what eager inlining buys.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// The ablated scenario.
    pub scenario: ServiceScenario,
    /// The generating seed.
    pub seed: u64,
    /// Requests per run.
    pub requests: u64,
    /// Median latency with eager inlining, µs.
    pub eager_p50_us: f64,
    /// Median latency over the staging-DMA path, µs.
    pub ablate_p50_us: f64,
    /// `ablate_p50_us / eager_p50_us` — how much eager inlining wins.
    pub speedup: f64,
}

/// Workers answer `x` with `x ^ REPLY_SALT` — cheap to verify at the
/// front tier, impossible to fake with an echo.
const REPLY_SALT: i32 = 0x2A5A_5A5A;

/// Channels per worker on the direct route (request, response).
const DIRECT_STRIDE: usize = 2;
/// Channels per worker on the hop routes (request, hop, response).
const HOP_STRIDE: usize = 3;

/// The service deployment: the paper's two-Cells-one-Xeon layout on a
/// 10GbE-class datacenter fabric (3 µs wire latency, 1250 B/µs) instead
/// of the paper-era GigE the repro benches keep. A heavy-traffic service
/// tier behind 60 µs wire hops would be wire-bound whatever the
/// protocol does; on a modern fabric the per-message protocol cost this
/// workload studies is what dominates.
pub fn service_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::two_cells_one_xeon();
    spec.net.wire_latency_us = 3.0;
    spec.net.wire_bytes_per_us = 1250.0;
    spec
}

/// The service fabric's MPI stack: a kernel-bypass messaging layer to
/// match the [`service_spec`] interconnect. Per-message software latency
/// drops to the shared-memory path's figure on PPEs (no packetization or
/// NIC driver in the way) and to user-space-NIC cost on commodity nodes;
/// everything else keeps the calibrated defaults.
pub fn service_mpi_costs() -> MpiCosts {
    MpiCosts {
        ppe_sw_latency_us: 6.0,
        commodity_sw_latency_us: 3.0,
        ..MpiCosts::default()
    }
}

fn run_workload(
    scenario: ServiceScenario,
    seed: u64,
    requests: usize,
    eager: bool,
    recorder: cp_trace::Recorder,
) -> Result<cp_des::SimReport, String> {
    let spec = service_spec();
    let mut opts = CellPilotOpts::new().with_tracing(recorder.clone());
    opts.mpi_costs = service_mpi_costs();
    if scenario == ServiceScenario::ChaosFailover {
        // Kill the primary Co-Pilot roughly a quarter of the way through
        // the sweep (an eager round trip is ~44 µs of virtual time), so
        // the failover lands while requests are in flight. The runtime
        // provisions the standby automatically.
        let kill_at = SimTime::ZERO + SimDuration::from_micros((requests as u64 * 10).max(200));
        opts = opts
            .with_faults(Arc::new(FaultPlan::new().kill_copilot(NodeId(0), kill_at)))
            .with_retry(RetryPolicy::default());
    }
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    // Rank placement follows creation order: CP_MAIN is rank 0 on Cell
    // node 0, "ppe1" rank 1 on Cell node 1, and "front" rank 2 on the
    // commodity node — the non-Cell front tier the workload is about.
    let ppe1 = cfg
        .create_process("ppe1", 1, |cp, _| cp.run_and_wait_my_spes())
        .map_err(|e| e.to_string())?;

    let stride = match scenario {
        ServiceScenario::Type2Direct | ServiceScenario::ChaosFailover => DIRECT_STRIDE,
        ServiceScenario::Type4LocalHop | ServiceScenario::Type5RemoteHop => HOP_STRIDE,
    };
    let rec = recorder.clone();
    let front = cfg
        .create_process("front", 2, move |cp, _| {
            let mut rng = SplitMix64(seed ^ 0x5EC7_1CE5_u64);
            for _ in 0..requests {
                let base = stride * rng.below(POOL_WORKERS as u64) as usize;
                let x = (rng.next() & 0x3FFF_FFFF) as i32;
                let t0 = cp.ctx().now();
                cp.write_slice(CpChannel(base), &[x]).unwrap();
                let v = cp.read_vec::<i32>(CpChannel(base + stride - 1)).unwrap();
                let t1 = cp.ctx().now();
                assert_eq!(v, [x ^ REPLY_SALT], "worker reply corrupted");
                rec.record_service_request(t1.as_nanos(), (t1 - t0).as_nanos());
            }
            // A negative request retires each pool member.
            for w in 0..POOL_WORKERS {
                cp.write_slice(CpChannel(stride * w), &[-1]).unwrap();
            }
        })
        .map_err(|e| e.to_string())?;

    // SPE programs receive their first channel id as `arg` (the process
    // index, forwarded by `run_my_spes`).
    let direct_worker = SpeProgram::new("svc-worker", 2048, |spe, arg, _| {
        let (req, rsp) = (CpChannel(arg as usize), CpChannel(arg as usize + 1));
        loop {
            let v = spe.read_vec::<i32>(req).unwrap();
            if v[0] < 0 {
                break;
            }
            spe.write_slice(rsp, &[v[0] ^ REPLY_SALT]).unwrap();
        }
    });
    let gateway = SpeProgram::new("svc-gateway", 2048, |spe, arg, _| {
        let (req, hop) = (CpChannel(arg as usize), CpChannel(arg as usize + 1));
        loop {
            let v = spe.read_vec::<i32>(req).unwrap();
            let stop = v[0] < 0;
            spe.write_slice(hop, &v).unwrap();
            if stop {
                break;
            }
        }
    });
    let hop_worker = SpeProgram::new("svc-worker", 2048, |spe, arg, _| {
        let (hop, rsp) = (CpChannel(arg as usize + 1), CpChannel(arg as usize + 2));
        loop {
            let v = spe.read_vec::<i32>(hop).unwrap();
            if v[0] < 0 {
                break;
            }
            spe.write_slice(rsp, &[v[0] ^ REPLY_SALT]).unwrap();
        }
    });

    let build = |cfg: &mut CellPilotConfig, from, to| {
        let b = cfg.channel(from, to);
        let b = if eager { b.eager() } else { b };
        b.build().map_err(|e| e.to_string())
    };
    for w in 0..POOL_WORKERS {
        let base = (stride * w) as i32;
        match scenario {
            ServiceScenario::Type2Direct | ServiceScenario::ChaosFailover => {
                let wk = cfg
                    .create_spe_process(&direct_worker, CP_MAIN, base)
                    .map_err(|e| e.to_string())?;
                let req = build(&mut cfg, front, wk)?;
                let rsp = build(&mut cfg, wk, front)?;
                assert_eq!((req.0, rsp.0), (stride * w, stride * w + 1));
            }
            ServiceScenario::Type4LocalHop | ServiceScenario::Type5RemoteHop => {
                let wk_parent = if scenario == ServiceScenario::Type4LocalHop {
                    CP_MAIN
                } else {
                    ppe1
                };
                let gw = cfg
                    .create_spe_process(&gateway, CP_MAIN, base)
                    .map_err(|e| e.to_string())?;
                let wk = cfg
                    .create_spe_process(&hop_worker, wk_parent, base)
                    .map_err(|e| e.to_string())?;
                let req = build(&mut cfg, front, gw)?;
                let hop = build(&mut cfg, gw, wk)?;
                let rsp = build(&mut cfg, wk, front)?;
                assert_eq!(
                    (req.0, hop.0, rsp.0),
                    (stride * w, stride * w + 1, stride * w + 2)
                );
            }
        }
    }
    let _ = front;

    cfg.run(|cp| cp.run_and_wait_my_spes())
        .map_err(|e| e.to_string())
}

/// Run one seeded service sweep and check its invariants: every request
/// answered correctly (asserted in-line), every latency sample recorded,
/// and the incident log clean (or showing exactly a Co-Pilot death plus
/// failover for the chaos scenario). Deterministic: the same
/// `(scenario, seed, requests, eager)` replays timestamp for timestamp.
pub fn service(
    scenario: ServiceScenario,
    seed: u64,
    requests: usize,
    eager: bool,
) -> Result<ServiceReport, ServiceFailure> {
    service_traced(scenario, seed, requests, eager).map(|(r, _)| r)
}

/// [`service`] with the run's recorder returned, for Chrome-trace export.
pub fn service_traced(
    scenario: ServiceScenario,
    seed: u64,
    requests: usize,
    eager: bool,
) -> Result<(ServiceReport, cp_trace::Recorder), ServiceFailure> {
    let rec = cp_trace::Recorder::enabled();
    let name = scenario.name();
    let report = run_workload(scenario, seed, requests, eager, rec.clone()).map_err(|error| {
        ServiceFailure::Sunk {
            scenario: name,
            seed,
            error,
        }
    })?;
    let invariant = |detail: String| ServiceFailure::Invariant {
        scenario: name,
        seed,
        detail,
    };

    let service = rec.snapshot().service;
    if service.requests != requests as u64 {
        return Err(invariant(format!(
            "recorded {} latency samples for {requests} requests",
            service.requests
        )));
    }
    if scenario == ServiceScenario::ChaosFailover {
        // The scripted kill must actually exercise the failover path, and
        // nothing beyond it may go wrong.
        for cat in [
            IncidentCategory::CopilotDeath,
            IncidentCategory::CopilotFailover,
        ] {
            if !report.incidents.iter().any(|i| i.category == cat) {
                return Err(invariant(format!("expected a {cat:?} incident")));
            }
        }
        if let Some(stray) = report.incidents.iter().find(|i| {
            i.category != IncidentCategory::CopilotDeath
                && i.category != IncidentCategory::CopilotFailover
        }) {
            return Err(invariant(format!(
                "unplanned {:?} incident: {}",
                stray.category, stray.detail
            )));
        }
    } else if let Some(inc) = report.incidents.first() {
        return Err(invariant(format!(
            "fault-free run reported {:?}: {}",
            inc.category, inc.detail
        )));
    }

    Ok((
        ServiceReport {
            scenario,
            seed,
            eager,
            requests: service.requests,
            latency_us: service.latency_us,
            sustained_req_s: service.sustained_req_s,
            end_time: report.end_time,
        },
        rec,
    ))
}

/// Run one scenario twice — eager inlining on, then off — over the same
/// seeded request stream and report the median-latency speedup.
pub fn ablation(
    scenario: ServiceScenario,
    seed: u64,
    requests: usize,
) -> Result<AblationReport, ServiceFailure> {
    let eager = service(scenario, seed, requests, true)?;
    let ablate = service(scenario, seed, requests, false)?;
    let speedup = if eager.latency_us.p50 > 0.0 {
        ablate.latency_us.p50 / eager.latency_us.p50
    } else {
        0.0
    };
    Ok(AblationReport {
        scenario,
        seed,
        requests: eager.requests,
        eager_p50_us: eager.latency_us.p50,
        ablate_p50_us: ablate.latency_us.p50,
        speedup,
    })
}

/// The `service` rows of the `BENCH_<label>.json` artifact: every
/// scenario at a fixed seed with eager inlining on, `requests` requests
/// each. The CI gate fails any row whose p99 regresses more than the
/// tolerance against the committed baseline.
pub fn service_bench_rows(requests: usize) -> Result<Vec<ServiceRow>, ServiceFailure> {
    ServiceScenario::all()
        .into_iter()
        .map(|s| service(s, 1, requests, true).map(|r| r.to_row()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in ServiceScenario::all() {
            assert_eq!(ServiceScenario::from_name(s.name()), Some(s));
        }
        assert_eq!(ServiceScenario::from_name("type9-warp"), None);
    }

    #[test]
    fn direct_route_is_seed_deterministic() {
        let a = service(ServiceScenario::Type2Direct, 7, 64, true).expect("run passes");
        let b = service(ServiceScenario::Type2Direct, 7, 64, true).expect("run passes");
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.latency_us.p99, b.latency_us.p99);
        assert!(a.sustained_req_s > 0.0);
    }

    #[test]
    fn hop_routes_answer_every_request() {
        for s in [
            ServiceScenario::Type4LocalHop,
            ServiceScenario::Type5RemoteHop,
        ] {
            let r = service(s, 3, 48, true).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(r.requests, 48);
            assert!(r.latency_us.p50 > 0.0);
        }
    }

    #[test]
    fn failover_spikes_the_tail_but_loses_nothing() {
        let r =
            service(ServiceScenario::ChaosFailover, 2, 96, true).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.requests, 96, "failover must not lose requests");
        assert!(
            r.latency_us.max >= r.latency_us.p50,
            "the failover pause shows up in the tail"
        );
    }

    #[test]
    fn eager_halves_small_message_median() {
        // The local-hop route is the one whose round trip is dominated by
        // per-message Co-Pilot protocol cost (the ISSUE's premise); there
        // the mailbox fast path must at least halve the ≤16 B median.
        let hop = ablation(ServiceScenario::Type4LocalHop, 1, 64).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            hop.speedup >= 2.0,
            "eager inlining must at least halve the ≤16 B local-hop median: {hop:?}"
        );
        // On the MPI-transit-bound routes eager still has to win, just
        // not by the full 2x (the wire and MPI-software fixed costs are
        // shared by both paths).
        for s in [
            ServiceScenario::Type2Direct,
            ServiceScenario::Type5RemoteHop,
        ] {
            let a = ablation(s, 1, 64).unwrap_or_else(|e| panic!("{e}"));
            assert!(a.speedup > 1.0, "eager inlining must never lose: {a:?}");
        }
    }
}
