//! Schedule exploration: run one scenario under many legal DES schedules
//! and assert result-equivalence.
//!
//! The DES kernel's schedule seed (see
//! [`cp_des::Simulation::set_schedule_seed`]) permutes the dispatch order
//! of same-timestamp events — every permutation is a schedule that could
//! legally occur, so *traces* may differ between seeds but application
//! *outcomes* must not. [`explore`] is the driver: it runs a scenario
//! closure once per seed and fails with a [`ScheduleDivergence`] naming the
//! first seed whose outcome disagrees with the baseline. Pick outcome types
//! deliberately: application-visible results (data received, completion)
//! are schedule-invariant; virtual end times and incident counts are not.

use std::fmt;
use std::sync::{Arc, Mutex};

use cellpilot::{CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, SpeProgram, CP_MAIN};
use cp_des::{SimDuration, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId};

/// Two schedule seeds produced different application outcomes — an
/// ordering-dependent bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleDivergence {
    /// The seed whose outcome was taken as the baseline (the first seed).
    pub baseline_seed: u64,
    /// The first seed that disagreed.
    pub divergent_seed: u64,
    /// Debug rendering of both outcomes.
    pub detail: String,
}

impl fmt::Display for ScheduleDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule divergence: seed {} disagrees with baseline seed {}: {}",
            self.divergent_seed, self.baseline_seed, self.detail
        )
    }
}

impl std::error::Error for ScheduleDivergence {}

/// Run `scenario` once per seed and require every outcome to equal the
/// first seed's. On success returns each `(seed, outcome)` pair (callers
/// may want to log or further compare them); on the first disagreement
/// returns a [`ScheduleDivergence`].
pub fn explore<T, F>(seeds: &[u64], scenario: F) -> Result<Vec<(u64, T)>, ScheduleDivergence>
where
    T: PartialEq + fmt::Debug,
    F: Fn(u64) -> T,
{
    assert!(!seeds.is_empty(), "explore needs at least one seed");
    let mut out: Vec<(u64, T)> = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let outcome = scenario(seed);
        if let Some((base_seed, baseline)) = out.first() {
            if *baseline != outcome {
                return Err(ScheduleDivergence {
                    baseline_seed: *base_seed,
                    divergent_seed: seed,
                    detail: format!("baseline {baseline:?} vs {outcome:?}"),
                });
            }
        }
        out.push((seed, outcome));
    }
    Ok(out)
}

/// The application-visible outcome of the fault-replay scenario: did the
/// receiver get the payload, and what did it sum to. Deliberately excludes
/// virtual end time and incident details — those legitimately vary with the
/// schedule (retries may interleave differently); the delivered data must
/// not.
pub type FaultReplayOutcome = (bool, i64);

/// The `repro_faults` scenario — a type-5 transfer riding out two scripted
/// link drops — run under one schedule seed, returning its
/// [`FaultReplayOutcome`].
pub fn fault_replay_outcome(seed: u64) -> FaultReplayOutcome {
    let plan = Arc::new(FaultPlan::new().drop_link(
        NodeId(0),
        NodeId(1),
        SimTime::ZERO + SimDuration::from_micros(200),
        SimTime(u64::MAX),
        2,
    ));
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = CellPilotOpts::new()
        .with_faults(plan)
        .with_schedule_seed(seed);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let received: Arc<Mutex<Option<i64>>> = Arc::new(Mutex::new(None));
    let sink = received.clone();
    let sender = SpeProgram::new("sender", 2048, |spe, _, _| {
        spe.ctx().advance(SimDuration::from_micros(300));
        spe.write_slice(CpChannel(0), &(0..100).collect::<Vec<i32>>())
            .unwrap();
    });
    let receiver = SpeProgram::new("receiver", 2048, move |spe, _, _| {
        let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
        *sink.lock().unwrap() = Some(v.iter().map(|&x| i64::from(x)).sum());
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let a = cfg.create_spe_process(&sender, CP_MAIN, 0).unwrap();
    let b = cfg.create_spe_process(&receiver, parent, 0).unwrap();
    let chan = cfg.channel(a, b).build().unwrap();
    assert_eq!(cfg.channel_kind(chan).unwrap(), ChannelKind::Type5);
    let completed = cfg.run(move |cp| cp.run_and_wait_my_spes()).is_ok();
    let sum = received.lock().unwrap().unwrap_or(-1);
    (completed, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_passes_on_equal_outcomes() {
        let r = explore(&[0, 1, 2], |_seed| 42).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn explore_reports_first_divergence() {
        let err = explore(&[0, 1, 2, 3], |seed| if seed == 2 { 1 } else { 0 }).unwrap_err();
        assert_eq!(err.baseline_seed, 0);
        assert_eq!(err.divergent_seed, 2);
    }

    /// The acceptance criterion: the fault-replay scenario must produce an
    /// identical application outcome under at least 8 distinct schedule
    /// seeds (seed 0 is the canonical FIFO schedule).
    #[test]
    fn fault_replay_outcome_is_schedule_invariant() {
        let seeds: Vec<u64> = (0..=8).collect();
        let outcomes = explore(&seeds, fault_replay_outcome).expect("no divergence");
        assert_eq!(outcomes.len(), 9);
        assert_eq!(outcomes[0].1, (true, 4950)); // sum 0..100
    }
}
