//! Strict, dependency-free argument parsing shared by the `repro_*` and
//! `bench_gate` binaries.
//!
//! Every flag error prints the binary's usage line to stderr and exits
//! with status 2 (the conventional "usage error" code, distinct from the
//! status-1 "experiment failed its invariant" exit) — a CI step can never
//! silently no-op on a typo like `--seeds 0` or `--sedes 8` again.

/// Print `msg` and the usage line to stderr, then exit with status 2.
pub fn usage_error(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Parse the value following a flag as an integer in `[min, max]`.
/// Missing, unparsable or out-of-range values are usage errors.
pub fn parse_int_flag(usage: &str, flag: &str, value: Option<String>, min: u64, max: u64) -> u64 {
    let Some(raw) = value else {
        usage_error(usage, &format!("{flag} requires a value"));
    };
    match raw.parse::<u64>() {
        Ok(n) if (min..=max).contains(&n) => n,
        Ok(n) => usage_error(
            usage,
            &format!("{flag} {n} is out of range (expected {min}..={max})"),
        ),
        Err(_) => usage_error(usage, &format!("{flag} takes a number, got {raw:?}")),
    }
}

/// Parse the value following a flag as a non-empty string (a path or a
/// label). A missing value is a usage error.
pub fn parse_str_flag(usage: &str, flag: &str, value: Option<String>) -> String {
    match value {
        Some(v) if !v.is_empty() => v,
        _ => usage_error(usage, &format!("{flag} requires a value")),
    }
}

/// Reject an unrecognized argument.
pub fn unknown_flag(usage: &str, arg: &str) -> ! {
    usage_error(usage, &format!("unknown argument {arg:?}"))
}
