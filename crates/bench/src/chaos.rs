//! Seeded chaos campaigns: reproducible randomized fault injection with
//! invariant checking.
//!
//! A campaign draws a [`FaultPlan`] from a deterministic PRNG (splitmix64,
//! so a seed is a complete bug report) restricted to **recoverable** faults
//! — message drops within the sender's retry budget, link delays,
//! duplicate deliveries (absorbed by the exactly-once wire contract), SPE
//! crashes within the supervision budget, bounded Co-Pilot stalls, and at
//! most one Co-Pilot kill per node (covered by the standby failover) — and
//! runs a fixed workload exercising all five channel types of the paper's
//! Table I under it. Three invariants must hold for every seed:
//!
//! 1. **Completion** — the run finishes; no deadlock, no abort.
//! 2. **Byte-identity** — the application output (every rank-side read, in
//!    order) equals the fault-free golden run's: recovery is seamless, the
//!    application cannot tell it happened.
//! 3. **Accounted incidents** — every incident category in the
//!    [`cp_des::SimReport`] traces back to a fault the plan scheduled;
//!    nothing degrades (no `PeerLost`, no abandonment) and nothing fires
//!    that was not injected.
//!
//! The `repro_chaos` binary sweeps seeds; [`chaos`] runs one.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use cellpilot::{
    CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, SpeProgram, SupervisionPolicy, CP_MAIN,
};
use cp_des::{IncidentCategory, SimDuration, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId, RetryPolicy};

/// Per-SPE-process crash budget a campaign may spend — the supervision
/// policy grants one more restart than this, so a chaos run can never
/// exhaust it into abandonment.
const CRASH_BUDGET: u32 = 2;

/// Maximum messages a generated drop fault may eat on one ordered link,
/// kept below the retry budget so every payload still gets through.
const DROP_BUDGET: u32 = 2;

/// The application-visible output of the chaos workload: the messages
/// collected by `main` and by the `xeon` rank, in read order.
pub type ChaosOutcome = (Vec<Vec<i32>>, Vec<Vec<i32>>);

/// Why a chaos run failed its invariants.
#[derive(Debug, Clone)]
pub enum ChaosFailure {
    /// The run aborted or deadlocked instead of completing.
    Sunk {
        /// The generating seed.
        seed: u64,
        /// The simulator's error rendering.
        error: String,
    },
    /// The run completed but its output differs from the golden run.
    OutputDivergence {
        /// The generating seed.
        seed: u64,
        /// Debug rendering of golden vs observed.
        detail: String,
    },
    /// An incident fired whose category no planned fault explains.
    UnplannedIncident {
        /// The generating seed.
        seed: u64,
        /// The offending category.
        category: IncidentCategory,
        /// The incident's own description.
        detail: String,
    },
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosFailure::Sunk { seed, error } => {
                write!(f, "seed {seed}: run sank: {error}")
            }
            ChaosFailure::OutputDivergence { seed, detail } => {
                write!(f, "seed {seed}: output diverged from golden run: {detail}")
            }
            ChaosFailure::UnplannedIncident {
                seed,
                category,
                detail,
            } => {
                write!(f, "seed {seed}: unplanned '{category}' incident: {detail}")
            }
        }
    }
}

impl std::error::Error for ChaosFailure {}

/// What one passing chaos run did, for campaign logs.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The generating seed.
    pub seed: u64,
    /// Faults the plan scheduled: `(drops, delays, duplicates, spe
    /// crashes, copilot stalls, copilot kills)`.
    pub planned: (u32, u32, u32, u32, u32, u32),
    /// Incidents the run reported (category, count), in category order.
    pub incidents: Vec<(IncidentCategory, usize)>,
    /// Virtual completion time (the golden run took
    /// [`golden_end_time`]).
    pub end_time: SimTime,
}

/// splitmix64: the canonical 64-bit mixing PRNG — tiny, dependency-free,
/// and deterministic across platforms, which is all a seeded campaign
/// needs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[0, n)`; modulo bias is irrelevant here.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The fixed chaos workload: three nodes (two Cells, one Xeon), three
/// ranks, three SPE processes, and one channel of every Table-I type
/// carrying three messages each. Data flows
/// `xeon → s1a → s0b → s0a → main` with `main → s0a` and `main → xeon`
/// feeding the ends, so every payload crosses several channel types before
/// it is collected.
fn run_workload(opts: CellPilotOpts) -> Result<(ChaosOutcome, SimTime, cp_des::SimReport), String> {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    let main_out: Arc<Mutex<Vec<Vec<i32>>>> = Arc::new(Mutex::new(Vec::new()));
    let xeon_out: Arc<Mutex<Vec<Vec<i32>>>> = Arc::new(Mutex::new(Vec::new()));

    let s0a_prog = SpeProgram::new("s0a", 2048, |spe, _, _| {
        for _ in 0..3 {
            let a = spe.read_vec::<i32>(CpChannel(1)).unwrap();
            let b = spe.read_vec::<i32>(CpChannel(4)).unwrap();
            let mut reply = a;
            reply.extend(b);
            spe.write_slice(CpChannel(2), &reply).unwrap();
        }
    });
    let s0b_prog = SpeProgram::new("s0b", 2048, |spe, _, _| {
        for r in 0..3i32 {
            let v = spe.read_vec::<i32>(CpChannel(5)).unwrap();
            let sum: i32 = v.iter().sum();
            spe.write_slice(CpChannel(4), &[sum, r]).unwrap();
        }
    });
    let s1a_prog = SpeProgram::new("s1a", 2048, |spe, _, _| {
        for r in 0..3i32 {
            let v = spe.read_vec::<i32>(CpChannel(3)).unwrap();
            spe.write_slice(CpChannel(5), &[v[0] + v[1], r]).unwrap();
        }
    });

    let xeon_sink = xeon_out.clone();
    let ppe1 = cfg
        .create_process("ppe1", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let xeon = cfg
        .create_process("xeon", 0, move |cp, _| {
            for _ in 0..3 {
                let v = cp.read_vec::<i32>(CpChannel(0)).unwrap();
                xeon_sink.lock().unwrap().push(v);
            }
            for i in 0..3i32 {
                cp.write_slice(CpChannel(3), &[i * 3, 1000 + i]).unwrap();
            }
        })
        .unwrap();
    let s0a = cfg.create_spe_process(&s0a_prog, CP_MAIN, 0).unwrap();
    let s0b = cfg.create_spe_process(&s0b_prog, CP_MAIN, 1).unwrap();
    let s1a = cfg.create_spe_process(&s1a_prog, ppe1, 0).unwrap();
    assert_eq!(
        (s0a.0, s0b.0, s1a.0),
        (3, 4, 5),
        "chaos plans target these process ids"
    );

    let t1 = cfg.channel(CP_MAIN, xeon).build().unwrap();
    let t2 = cfg.channel(CP_MAIN, s0a).build().unwrap();
    let t2b = cfg.channel(s0a, CP_MAIN).build().unwrap();
    let t3 = cfg.channel(xeon, s1a).build().unwrap();
    let t4 = cfg.channel(s0b, s0a).build().unwrap();
    let t5 = cfg.channel(s1a, s0b).build().unwrap();
    for (c, kind) in [
        (t1, ChannelKind::Type1),
        (t2, ChannelKind::Type2),
        (t2b, ChannelKind::Type2),
        (t3, ChannelKind::Type3),
        (t4, ChannelKind::Type4),
        (t5, ChannelKind::Type5),
    ] {
        assert_eq!(cfg.channel_kind(c), Some(kind), "workload covers Table I");
    }

    let main_sink = main_out.clone();
    let report = cfg
        .run(move |cp| {
            let _tasks = cp.run_my_spes();
            for i in 0..3i32 {
                cp.write_slice(t1, &[i * 7, i]).unwrap();
                cp.write_slice(t2, &[i, i + 10]).unwrap();
            }
            for _ in 0..3 {
                let v = cp.read_vec::<i32>(t2b).unwrap();
                main_sink.lock().unwrap().push(v);
            }
        })
        .map_err(|e| e.to_string())?;
    let out = (
        std::mem::take(&mut *main_out.lock().unwrap()),
        std::mem::take(&mut *xeon_out.lock().unwrap()),
    );
    Ok((out, report.end_time, report))
}

/// The golden (fault-free) outcome and end time, computed once per
/// process; every chaos run is compared against it.
fn golden() -> &'static (ChaosOutcome, SimTime) {
    static GOLDEN: OnceLock<(ChaosOutcome, SimTime)> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let (out, end, report) =
            run_workload(base_opts()).expect("the fault-free workload completes");
        assert!(
            report.incidents.is_empty(),
            "golden run must be incident-free: {:?}",
            report.incidents
        );
        (out, end)
    })
}

/// Virtual end time of the fault-free workload — the horizon chaos fault
/// times are drawn from.
pub fn golden_end_time() -> SimTime {
    golden().1
}

fn base_opts() -> CellPilotOpts {
    CellPilotOpts::new().with_supervision(SupervisionPolicy {
        max_restarts: CRASH_BUDGET + 1,
        restart_delay: SimDuration::from_micros(50),
    })
}

/// Draw a recoverable-only [`FaultPlan`] for `seed` with roughly
/// `intensity` fault entries, bounded so every fault is one the runtime is
/// expected to absorb. Returns the plan and the per-kind counts
/// `(drops, delays, duplicates, crashes, stalls, kills)`.
pub fn chaos_plan(seed: u64, intensity: u32) -> (FaultPlan, (u32, u32, u32, u32, u32, u32)) {
    let mut rng = SplitMix64(seed ^ 0x00C4_A05C_4A05_u64);
    let horizon = golden_end_time().as_nanos().max(1);
    let nodes = [NodeId(0), NodeId(1), NodeId(2)];
    let spe_procs = [3usize, 4, 5];
    let cell_nodes = [NodeId(0), NodeId(1)];

    let mut plan = FaultPlan::new();
    let mut counts = (0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
    // Budgets that keep every draw recoverable.
    let mut dropped_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut crashes_per_proc = [0u32; 6];
    let mut stalled: Vec<NodeId> = Vec::new();
    let mut killed: Vec<NodeId> = Vec::new();

    for _ in 0..intensity {
        let at = SimTime(rng.below(horizon));
        let until = SimTime(at.as_nanos().saturating_add(rng.below(horizon)).max(1));
        match rng.below(6) {
            // Drop: at most one drop window per ordered link, eating fewer
            // messages than the sender retries.
            0 => {
                let from = nodes[rng.below(3) as usize];
                let to = nodes[rng.below(3) as usize];
                if from != to && !dropped_pairs.contains(&(from, to)) {
                    dropped_pairs.push((from, to));
                    let n = 1 + rng.below(u64::from(DROP_BUDGET)) as u32;
                    plan = plan.drop_link(from, to, at, until, n);
                    counts.0 += 1;
                }
            }
            // Delay: pure latency, always recoverable. Open-ended window:
            // a delay that switches off mid-stream would let a later
            // message overtake a delayed earlier one on the same link,
            // violating the non-overtaking order MPI guarantees (and the
            // channel abstraction relies on). With no trailing edge every
            // subsequent message is delayed at least as much, so per-link
            // FIFO order is preserved.
            1 => {
                let from = nodes[rng.below(3) as usize];
                let to = nodes[rng.below(3) as usize];
                if from != to {
                    let extra = SimDuration::from_micros(10 + rng.below(490));
                    plan = plan.delay_link(from, to, at, SimTime(u64::MAX), extra);
                    counts.1 += 1;
                }
            }
            // Duplicate: absorbed by the wire-level dedup.
            2 => {
                let from = nodes[rng.below(3) as usize];
                let to = nodes[rng.below(3) as usize];
                if from != to {
                    let n = 1 + rng.below(3) as u32;
                    plan = plan.duplicate_link(from, to, at, until, n);
                    counts.2 += 1;
                }
            }
            // SPE crash: within the supervision budget.
            3 => {
                let p = spe_procs[rng.below(3) as usize];
                if crashes_per_proc[p] < CRASH_BUDGET {
                    crashes_per_proc[p] += 1;
                    plan = plan.crash_spe(p, at);
                    counts.3 += 1;
                }
            }
            // Co-Pilot stall: one bounded freeze per Cell node.
            4 => {
                let node = cell_nodes[rng.below(2) as usize];
                if !stalled.contains(&node) {
                    stalled.push(node);
                    let d = SimDuration::from_micros(50 + rng.below(450));
                    plan = plan.stall_copilot(node, at, d);
                    counts.4 += 1;
                }
            }
            // Co-Pilot kill: one per Cell node; the runtime provisions a
            // standby whenever the plan schedules one.
            _ => {
                let node = cell_nodes[rng.below(2) as usize];
                if !killed.contains(&node) {
                    killed.push(node);
                    plan = plan.kill_copilot(node, at);
                    counts.5 += 1;
                }
            }
        }
    }
    (plan, counts)
}

/// Incident categories a plan with the given per-kind counts is allowed to
/// produce. Anything else failing to appear is fine (a crash scheduled
/// after an SPE's last op never fires); anything *extra* appearing is an
/// invariant violation.
fn allowed_categories(counts: (u32, u32, u32, u32, u32, u32)) -> Vec<IncidentCategory> {
    let mut ok = Vec::new();
    if counts.3 > 0 {
        ok.push(IncidentCategory::SpeCrash);
        ok.push(IncidentCategory::SpeRestart);
    }
    if counts.4 > 0 {
        ok.push(IncidentCategory::CopilotStall);
    }
    if counts.5 > 0 {
        ok.push(IncidentCategory::CopilotDeath);
        ok.push(IncidentCategory::CopilotFailover);
    }
    ok
}

/// Run one seeded chaos campaign at the given intensity (roughly the
/// number of fault entries drawn; see [`chaos_plan`]) and check the three
/// invariants. Deterministic: the same `(seed, intensity)` replays the
/// same faults against the same workload, timestamp for timestamp.
pub fn chaos(seed: u64, intensity: u32) -> Result<ChaosReport, ChaosFailure> {
    chaos_with(seed, intensity, cp_trace::Recorder::disabled())
}

/// [`chaos`] with an observability recorder attached: returns the same
/// invariant-checked report plus the recorder, whose
/// [`cp_trace::Recorder::chrome_trace`] export shows every rank, SPE and
/// Co-Pilot lane with the run's failover incidents. That the invariants
/// still hold with recording on is itself a regression check: tracing must
/// never consume virtual time, so the traced run stays byte-identical to
/// the untraced golden run.
pub fn chaos_traced(
    seed: u64,
    intensity: u32,
) -> Result<(ChaosReport, cp_trace::Recorder), ChaosFailure> {
    let rec = cp_trace::Recorder::enabled();
    let report = chaos_with(seed, intensity, rec.clone())?;
    Ok((report, rec))
}

/// Run the full Table-I workload with `cp-check` strict static checks
/// and the race detector enabled, and assert the run is byte-identical
/// to the untraced golden run: same outcome, same virtual end time, no
/// incidents. This is the "zero cost when disabled, zero noise when
/// enabled" contract — the wiring verifier runs at configure time and
/// the happens-before recorder consumes no virtual time, so a clean
/// program must neither slow down nor pick up findings. Panics with a
/// diagnostic message if any of the three comparisons fail.
pub fn checked_run_matches_golden() {
    let (golden_out, golden_end) = golden().clone();
    let (out, end_time, report) = run_workload(base_opts().with_strict_checks())
        .expect("the checked fault-free workload completes");
    assert_eq!(out, golden_out, "checked run diverged from golden output");
    assert_eq!(
        end_time, golden_end,
        "static checks must not consume virtual time"
    );
    assert!(
        report.incidents.is_empty(),
        "checked golden run must be finding-free: {:?}",
        report.incidents
    );
}

/// The smallest seed whose `(seed, intensity)` chaos plan schedules at
/// least one Co-Pilot kill — the interesting trace to export, because it
/// exercises the standby failover path end to end.
pub fn seed_with_failover(intensity: u32) -> u64 {
    (0..).find(|&s| chaos_plan(s, intensity).1 .5 > 0).unwrap()
}

fn chaos_with(
    seed: u64,
    intensity: u32,
    recorder: cp_trace::Recorder,
) -> Result<ChaosReport, ChaosFailure> {
    let (golden_out, _) = golden().clone();
    let (plan, counts) = chaos_plan(seed, intensity);
    let opts = base_opts()
        .with_faults(Arc::new(plan))
        .with_retry(RetryPolicy::default())
        .with_tracing(recorder);
    let (out, end_time, report) =
        run_workload(opts).map_err(|error| ChaosFailure::Sunk { seed, error })?;
    if out != golden_out {
        return Err(ChaosFailure::OutputDivergence {
            seed,
            detail: format!("golden {golden_out:?} vs {out:?}"),
        });
    }
    let allowed = allowed_categories(counts);
    let mut tally: Vec<(IncidentCategory, usize)> = Vec::new();
    for inc in &report.incidents {
        if !allowed.contains(&inc.category) {
            return Err(ChaosFailure::UnplannedIncident {
                seed,
                category: inc.category,
                detail: inc.detail.clone(),
            });
        }
        match tally.iter_mut().find(|(c, _)| *c == inc.category) {
            Some((_, n)) => *n += 1,
            None => tally.push((inc.category, 1)),
        }
    }
    Ok(ChaosReport {
        seed,
        planned: counts,
        incidents: tally,
        end_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let (a, ca) = chaos_plan(42, 8);
        let (b, cb) = chaos_plan(42, 8);
        assert_eq!(ca, cb);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let (_, cc) = chaos_plan(43, 8);
        assert_ne!(
            format!("{a:?}"),
            format!("{:?}", chaos_plan(43, 8).0),
            "different seeds draw different plans ({ca:?} vs {cc:?})"
        );
    }

    #[test]
    fn zero_intensity_is_the_golden_run() {
        let r = chaos(7, 0).expect("an empty plan cannot fail");
        assert_eq!(r.planned, (0, 0, 0, 0, 0, 0));
        assert!(r.incidents.is_empty());
        assert_eq!(r.end_time, golden_end_time());
    }

    /// Satellite contract for `cp-check`: the strict-checked clean run is
    /// indistinguishable from the unchecked golden run, and the chaos
    /// workload — which exercises all five Table-I channel types — draws
    /// no wiring lints or race findings.
    #[test]
    fn static_checks_are_zero_overhead() {
        checked_run_matches_golden();
    }

    /// A handful of seeds at moderate intensity as a unit-level smoke; the
    /// `repro_chaos` binary sweeps the full campaign.
    #[test]
    fn smoke_campaign_holds_invariants() {
        for seed in 0..4 {
            if let Err(e) = chaos(seed, 6) {
                panic!("chaos invariant violated: {e}");
            }
        }
    }
}
