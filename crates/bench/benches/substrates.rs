//! Criterion benches for the substrate layers: the DES kernel's context
//! switch, MPI point-to-point and collectives, and Cell-node primitives.
//! These guard the simulator's own performance (wall-clock), which bounds
//! how large an experiment the harness can run.

use cp_cellsim::{CellCosts, CellNode, DmaDir};
use cp_des::{SimDuration, Simulation};
use cp_mpisim::{mpirun, MpiCosts, ReduceOp};
use cp_simnet::{ClusterSpec, NodeId, NodeKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_des_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.sample_size(20);
    g.bench_function("context_switches_2proc_1000steps", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            for p in 0..2 {
                sim.spawn(&format!("p{p}"), |ctx| {
                    for _ in 0..1000 {
                        ctx.advance(SimDuration::from_nanos(10));
                    }
                });
            }
            black_box(sim.run().unwrap());
        });
    });
    g.bench_function("spawn_join_100procs", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.spawn("root", |ctx| {
                let pids: Vec<_> = (0..100)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), |c| {
                            c.advance(SimDuration::from_micros(1));
                        })
                    })
                    .collect();
                for p in pids {
                    ctx.join(p);
                }
            });
            black_box(sim.run().unwrap());
        });
    });
    g.finish();
}

fn bench_mpi(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi");
    g.sample_size(10);
    g.bench_function("pingpong_100rounds", |b| {
        b.iter(|| {
            let spec = ClusterSpec::two_cells_one_xeon();
            mpirun(
                &spec,
                vec![NodeId(0), NodeId(1)],
                MpiCosts::default(),
                |comm| {
                    if comm.rank() == 0 {
                        for _ in 0..100 {
                            comm.send(1, 0, &[1u8]);
                            let _ = comm.recv(Some(1), Some(0));
                        }
                    } else {
                        for _ in 0..100 {
                            let m = comm.recv(Some(0), Some(0));
                            comm.send_bytes(0, 0, m.dtype, m.count, m.data);
                        }
                    }
                },
            )
            .unwrap();
        });
    });
    g.bench_function("allreduce_16ranks", |b| {
        b.iter(|| {
            let spec = ClusterSpec {
                nodes: vec![NodeKind::Commodity { cores: 4 }; 16],
                ..ClusterSpec::two_cells_one_xeon()
            };
            let placement = (0..16).map(NodeId).collect();
            mpirun(&spec, placement, MpiCosts::default(), |comm| {
                let v = comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64]);
                black_box(v);
            })
            .unwrap();
        });
    });
    g.finish();
}

fn bench_cellsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cellsim");
    g.sample_size(20);
    g.bench_function("dma_roundtrips_100", |b| {
        b.iter(|| {
            let cell = CellNode::new(0, 8, 1 << 20, CellCosts::default());
            let mut sim = Simulation::new();
            sim.spawn("spu", move |ctx| {
                let buf = cell.mem.alloc(1024, 16).unwrap();
                let ls = cell.spes[0].ls.alloc(1024, 16).unwrap();
                for i in 0..100u32 {
                    let tag = i % 16;
                    cell.dma(ctx, 0, DmaDir::Get, tag, ls, buf, 1024).unwrap();
                    cell.dma_wait(ctx, 0, 1 << tag);
                }
            });
            black_box(sim.run().unwrap());
        });
    });
    g.finish();
}

fn bench_pilot(c: &mut Criterion) {
    use cp_pilot::{pi_read, pi_write, PiChannel, PilotConfig, PilotOpts, PI_MAIN};
    let mut g = c.benchmark_group("pilot");
    g.sample_size(10);
    g.bench_function("write_read_100rounds", |b| {
        b.iter(|| {
            let mut cfg = PilotConfig::one_rank_per_node(
                ClusterSpec::two_cells_one_xeon(),
                PilotOpts::default(),
            );
            let w = cfg
                .create_process("echo", 0, |p, _| {
                    for _ in 0..100 {
                        let v = pi_read!(p, PiChannel(0), "%16d");
                        p.write(PiChannel(1), "%16d", &v).unwrap();
                    }
                })
                .unwrap();
            cfg.create_channel(PI_MAIN, w).unwrap();
            cfg.create_channel(w, PI_MAIN).unwrap();
            let r = cfg.run(|p| {
                let data: Vec<i32> = (0..16).collect();
                for _ in 0..100 {
                    pi_write!(p, PiChannel(0), "%16d", data.clone());
                    let _ = pi_read!(p, PiChannel(1), "%16d");
                }
            });
            black_box(r.unwrap());
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_des_kernel,
    bench_mpi,
    bench_cellsim,
    bench_pilot
);
criterion_main!(benches);
