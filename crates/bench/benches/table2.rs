//! Criterion benches for the Table II ping-pongs: tracks the wall-clock
//! cost of simulating each channel type × implementation (the virtual-time
//! results themselves are deterministic; see `repro_table2`).

use cellpilot::baseline::{pingpong as baseline_pingpong, BaselineImpl};
use cp_bench::cellpilot_pingpong;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cellpilot(c: &mut Criterion) {
    let mut g = c.benchmark_group("cellpilot_pingpong");
    g.sample_size(10);
    for chan_type in 1..=5u8 {
        for bytes in [1usize, 1600] {
            g.bench_function(format!("type{chan_type}/{bytes}B"), |b| {
                b.iter(|| black_box(cellpilot_pingpong(chan_type, bytes, 10)));
            });
        }
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_pingpong");
    g.sample_size(10);
    for chan_type in 1..=5u8 {
        for imp in [BaselineImpl::Dma, BaselineImpl::Copy] {
            g.bench_function(format!("type{chan_type}/{imp:?}/1600B"), |b| {
                b.iter(|| black_box(baseline_pingpong(chan_type, imp, 1600, 10)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_cellpilot, bench_baselines);
criterion_main!(benches);
