//! Application-level benches: the collective extension (hierarchical vs
//! linear broadcast) and the scatter-search case study — the ablation
//! benches DESIGN.md calls out for the design choices.

use cellpilot::{
    CellPilotConfig, CellPilotOpts, CpBundleUsage, CpChannel, CpProcess, SpeProgram, CP_MAIN,
};
use cp_pilot::PiValue;
use cp_scatter::{parallel_scatter_search, Knapsack, SsParams};
use cp_simnet::ClusterSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Build and run a broadcast to `n` remote SPEs, either via the bundle
/// multicast (hierarchical) or channel-by-channel (linear). Returns the
/// virtual completion time in µs.
fn broadcast_app(n: usize, linear: bool) -> f64 {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let recv = SpeProgram::new("recv", 2048, |spe, _, _| {
        let _ = spe.read(CpChannel(spe.index() as usize), "%100d").unwrap();
    });
    let ppe1 = cfg
        .create_process("ppe1", 0, |cp, _| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let mut chans = Vec::new();
    for i in 0..n {
        let s = cfg.create_spe_process(&recv, ppe1, i as i32).unwrap();
        chans.push(cfg.channel(CP_MAIN, s).build().unwrap());
    }
    let bundle = cfg.create_bundle(CpBundleUsage::Broadcast, &chans).unwrap();
    let report = cfg
        .run(move |cp| {
            let data = PiValue::Int32((0..100).collect());
            if linear {
                for &ch in &chans {
                    cp.write(ch, "%100d", std::slice::from_ref(&data)).unwrap();
                }
            } else {
                cp.broadcast(bundle, "%100d", &[data]).unwrap();
            }
        })
        .unwrap();
    report.end_time.as_micros_f64()
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast_6_remote_spes");
    g.sample_size(10);
    g.bench_function("hierarchical", |b| {
        b.iter(|| black_box(broadcast_app(6, false)))
    });
    g.bench_function("linear", |b| b.iter(|| black_box(broadcast_app(6, true))));
    g.finish();
}

fn bench_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("scatter_search");
    g.sample_size(10);
    let problem = Knapsack::random(48, 7);
    let params = SsParams {
        pool_size: 12,
        refset_size: 6,
        generations: 2,
        ..Default::default()
    };
    for workers in [1usize, 8] {
        let p = problem.clone();
        let pr = params.clone();
        g.bench_function(format!("{workers}_workers"), move |b| {
            let spec = ClusterSpec::two_cells_one_xeon();
            b.iter(|| black_box(parallel_scatter_search(&p, &pr, workers, &spec)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_broadcast, bench_scatter);
criterion_main!(benches);
