//! # Architecture guide: how a message crosses the cluster
//!
//! This module is documentation only — a walkthrough of the protocol
//! machinery for readers extending the library or auditing the
//! reproduction. Everything here is implemented in this crate and its
//! substrates; file pointers are given per section.
//!
//! ## The cast
//!
//! A running CellPilot application consists of these simulated processes
//! (each an OS thread scheduled one-at-a-time in virtual-time order by
//! `cp-des`):
//!
//! * **Application ranks** — `main` (`CP_MAIN`, MPI rank 0) and every
//!   process made with [`CellPilotConfig::create_process`]. They hold a
//!   [`CellPilot`] handle (`runtime.rs`).
//! * **SPE processes** — made with [`CellPilotConfig::create_spe_process`],
//!   dormant until their parent calls [`CellPilot::run_spe`]; their body
//!   receives a [`SpeCtx`] (`spe_rt.rs`).
//! * **Per Cell node, one Co-Pilot rank** (`copilot.rs`), itself composed
//!   of a service loop, an MPI pump, and one mailbox watcher per SPE.
//!
//! ## Type 1: rank → rank
//!
//! `PI_Write` parses the format (`cp-pilot::fmt`), validates the values
//! against it, packs them into the segment wire format
//! (`cp-pilot::value::pack_message`), charges the Pilot-layer cost, and
//! hands the bytes to `cp-mpisim` under `tag = channel id`. The reader's
//! `PI_Read` receives, unpacks, and *re-verifies the format from the
//! reader's side* — a format disagreement is an abort diagnostic, not
//! silent corruption.
//!
//! ## Type 2/3: rank → SPE
//!
//! The writer does exactly what it does for type 1, except the destination
//! rank is the **Co-Pilot of the reader's node**. Meanwhile (or later) the
//! reading SPE:
//!
//! 1. allocates a local-store buffer sized from its format (or the `%*`
//!    capacity), and writes a 16-byte request block
//!    `[OP_READ, chan, buf, cap]` (`protocol.rs`);
//! 2. posts the block's address as **one word** in its outbound mailbox
//!    and blocks on its inbound mailbox.
//!
//! The node's mailbox watcher pops the word, fetches the block through the
//! problem-state mapping, and queues the request to the service loop. When
//! both the MPI message and the request are in hand, the Co-Pilot
//! translates `buf` to the effective address `ls_ea(spe, buf)`
//! (`cp-cellsim::memory`), stores the payload straight into the local
//! store (charged as an uncached copy — the "directly between the PPE's
//! buffer and the SPE's local memory" path), and posts a completion word
//! carrying the byte count. The SPE wakes, unpacks from its own local
//! store, and verifies the format.
//!
//! The reverse direction (SPE writes, rank reads) mirrors this:
//! `OP_WRITE` makes the Co-Pilot read the SPE's buffer through the mapping
//! and perform the MPI send *on the SPE's behalf* — the SPE participates
//! in MPI without a byte of MPI code in its 256 KB.
//!
//! ## Type 4: SPE → SPE, same node
//!
//! Both SPEs post requests; "whichever address arrives first is stored"
//! (paper §IV.B) in the Co-Pilot's pending tables. When the second
//! arrives, the Co-Pilot pays the pairing cost
//! ([`CellPilotCosts::copilot_pair_poll_us`]), `memcpy`s between the two
//! mapped local stores (double uncached cost), and completes both
//! mailboxes. **No MPI is involved.** Note the consequence: a type-4 write
//! has rendezvous semantics — it blocks until the reader asks.
//!
//! ## Type 5: SPE → SPE, different nodes
//!
//! The writer's leg is the SPE→rank half of type 2 with the *remote
//! Co-Pilot* as the MPI destination; the reader's leg is the rank→SPE
//! half. Two Co-Pilots, one wire crossing, three hops — the paper's "for
//! SPEs of different nodes to intercommunicate requires three hops".
//!
//! ## Where the microseconds go
//!
//! Substrate costs are calibrated (`cp-cellsim::CellCosts`,
//! `cp-simnet::NetCosts`, `cp-mpisim::MpiCosts`) against the *hand-coded*
//! rows of the paper's Table II; the CellPilot-layer constants
//! ([`CellPilotCosts`]) are pinned by just two cells (types 2 and 4), and
//! the remaining eight CellPilot cells emerge from the protocol paths
//! above. Run `cargo run -p cp-bench --bin repro_ablation` to see each
//! constant's contribution, and `repro_table2` for the full comparison.
//!
//! ## Shutdown
//!
//! When every process function has returned, application ranks barrier
//! (each first joins the SPE processes it started), then rank 0 sends each
//! Co-Pilot a shutdown message; the Co-Pilot unblocks its watchers with a
//! poison mailbox word and exits. The simulation ends when no process
//! remains runnable — and if that happens *before* the application
//! finishes, the kernel names every blocked process and what it was
//! waiting for.
//!
//! [`CellPilotConfig::create_process`]: crate::CellPilotConfig::create_process
//! [`CellPilotConfig::create_spe_process`]: crate::CellPilotConfig::create_spe_process
//! [`CellPilot`]: crate::CellPilot
//! [`CellPilot::run_spe`]: crate::CellPilot::run_spe
//! [`SpeCtx`]: crate::SpeCtx
//! [`CellPilotCosts`]: crate::CellPilotCosts
//! [`CellPilotCosts::copilot_pair_poll_us`]: crate::CellPilotCosts
