//! The execution-phase handle for PPE / non-Cell processes: channel I/O on
//! all five channel types, SPE process control (`PI_RunSPE`), and the
//! end-of-run synchronization.

use crate::config::{SupervisionPolicy, TypedChannel};
use crate::costs::CellPilotCosts;
use crate::error::CpError;
use crate::location::{ChannelKind, ChannelMode, CpChannel, CpProcess, Location};
use crate::spe_rt::JournalEntry;
use crate::tables::{CpTables, NodeShared, ProcKind};
use cp_des::{IncidentCategory, Pid, ProcCtx, SimDuration, SimTime};
use cp_mpisim::{Comm, Datatype, MpiFault, SrcSel};
use cp_pilot::{
    fmt::parse_format,
    value::{check_against_format, check_read_format, pack_message, payload_bytes, unpack_message},
    PiScalar, PiValue, PilotCosts,
};
use cp_simnet::{Cluster, FaultPlan, NodeId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Internal barrier tag for end-of-run synchronization.
const TAG_FINI: i32 = -600;

/// State shared by every process of a CellPilot application.
pub(crate) struct AppShared {
    /// The per-channel credit ledger (see [`crate::flow`]): bounds
    /// in-flight messages on every bounded channel, whatever hops the
    /// channel type routes through. Application-wide (not per-node) so a
    /// standby Co-Pilot inherits the accounting across a failover.
    pub flow: crate::flow::FlowControl,
    pub tables: Arc<CpTables>,
    pub trace: crate::trace::TraceSink,
    /// Cluster hardware: node handles plus the interconnect cost model the
    /// one-sided fabric charges its transfers against.
    pub cluster: Arc<Cluster>,
    /// The one-sided window fabric: the cluster-wide table of EA-mapped
    /// local-store windows plus their landed-put queues (see
    /// [`cp_simnet::WindowFabric`]).
    pub fabric: cp_simnet::WindowFabric,
    /// Next put sequence number per one-sided channel. Monotonic across
    /// the whole run so the fabric's wire-seq dedup delivers exactly once
    /// through crash-restarts and Co-Pilot failovers.
    pub put_seqs: Mutex<HashMap<usize, u64>>,
    pub node_shared: HashMap<NodeId, Arc<NodeShared>>,
    pub costs: CellPilotCosts,
    pub pilot_costs: PilotCosts,
    /// SPE processes currently running (guards double `PI_RunSPE`).
    pub running_spes: Mutex<HashSet<usize>>,
    /// Rank-side per-read deadline (None = block indefinitely).
    pub channel_timeout: Option<SimDuration>,
    /// The fault plan the cluster runs under (empty when healthy).
    pub faults: Arc<FaultPlan>,
    /// SPE restart policy; `None` keeps fail-stop semantics.
    pub supervision: Option<SupervisionPolicy>,
    /// SPE processes permanently gone: crashed unsupervised, or supervised
    /// past their restart budget. Their channels degrade to `PeerLost`.
    pub failed_spes: Mutex<HashSet<usize>>,
    /// Per-supervised-SPE op journals (checkpoint cursors for restart
    /// replay); an entry lives only while its `run_spe` is in flight.
    pub journals: Mutex<HashMap<usize, Vec<JournalEntry>>>,
    /// The MPI rank currently serving each Cell node's Co-Pilot duties —
    /// the standby's rank after a failover. Starts as `copilot_ranks`.
    pub copilot_route: Mutex<BTreeMap<NodeId, usize>>,
    /// Cluster-wide observability recorder (disabled by default; one
    /// branch per channel operation when disabled).
    pub recorder: cp_trace::Recorder,
}

impl AppShared {
    /// The rank to address for `node`'s Co-Pilot right now.
    pub(crate) fn copilot_rank(&self, node: NodeId) -> usize {
        self.copilot_route.lock()[&node]
    }

    /// Record one completed channel operation: bump the per-type counters
    /// and emit a span on the acting process's Chrome-trace lane. `t0` is
    /// when the operation began (virtual time); recording itself never
    /// consumes virtual time.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_chan_op(
        &self,
        who: &str,
        kind: ChannelKind,
        chan: usize,
        write: bool,
        bytes: usize,
        t0: SimTime,
        now: SimTime,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let ty = kind.type_number();
        let dur = now.since(t0).as_nanos();
        self.recorder
            .record_channel_op(ty, write, bytes as u64, dur);
        let lane = self.recorder.lane(who);
        let verb = if write { "write" } else { "read" };
        self.recorder.span(
            lane,
            "channel",
            &format!("{verb} c{chan} (type {ty})"),
            t0.0,
            dur,
        );
    }

    /// Allocate the next put sequence number for one-sided channel `chan`.
    pub(crate) fn next_put_seq(&self, chan: usize) -> u64 {
        let mut seqs = self.put_seqs.lock();
        let s = seqs.entry(chan).or_insert(0);
        let seq = *s;
        *s += 1;
        seq
    }

    /// Record one completed one-sided fabric operation (put or get) in the
    /// observability recorder: per-op latency histogram plus a span on the
    /// acting process's lane.
    pub(crate) fn record_one_sided(
        &self,
        who: &str,
        put: bool,
        chan: usize,
        bytes: usize,
        t0: SimTime,
        now: SimTime,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let dur = now.since(t0).as_nanos();
        self.recorder.record_one_sided_op(put, bytes as u64, dur);
        let lane = self.recorder.lane(who);
        let verb = if put { "put" } else { "get" };
        self.recorder
            .span(lane, "one-sided", &format!("{verb} c{chan}"), t0.0, dur);
    }

    /// Execute one one-sided put on `chan` from the process `who` running
    /// on `from_node`: wait for the reader to register its window, charge
    /// the fabric transport for the hop, land the bytes in the window's
    /// local store, and apply the exactly-once fabric put — the reader
    /// finds the payload by its own doorbell, no Co-Pilot is interrupted.
    /// One hop, no relay buffering. Returns the window capacity on
    /// overflow.
    pub(crate) fn one_sided_put(
        &self,
        ctx: &ProcCtx,
        who: &str,
        chan: usize,
        from_node: NodeId,
        data: Vec<u8>,
    ) -> Result<usize, u32> {
        // The reader registers its window when its SPE process starts; a
        // writer that gets here first polls deterministically, modelling
        // the one-time window-handle exchange of an RDMA setup.
        let desc = loop {
            if let Some(d) = self.fabric.window(chan as u32) {
                break d;
            }
            ctx.advance(SimDuration::from_micros(1));
        };
        if data.len() as u64 > u64::from(desc.len) {
            return Err(desc.len);
        }
        let n = data.len();
        let t0 = ctx.now();
        let seq = self.next_put_seq(chan);
        let to_node = NodeId(desc.node);
        ctx.advance(
            self.cluster
                .transfer_delay(ctx.now(), from_node, to_node, n),
        );
        let ns = &self.node_shared[&to_node];
        let cell = &ns.cell;
        cell.ea_write(
            cell.ls_effective_address(desc.spe, desc.start as usize),
            &data,
        )
        .expect("window within local store");
        ns.record_hb(
            &ctx.name(),
            ctx.now().as_nanos(),
            cp_trace::HbOp::OneSidedPut {
                chan: chan as u32,
                node: desc.node,
                spe: desc.spe,
                start: desc.start,
                len: n as u32,
                seq,
            },
        );
        // `Duplicate` means a failover replay re-applied a put the fabric
        // already saw: the wire-seq dedup swallows it and the reader will
        // never observe the payload twice.
        let _status = self
            .fabric
            .put(chan as u32, seq, data)
            .expect("window stays registered for the run");
        self.trace
            .record(ctx.now(), who, crate::trace::TraceOp::OneSidedPut, chan, n);
        self.record_one_sided(who, true, chan, n, t0, ctx.now());
        Ok(n)
    }

    /// Consume one send credit on `chan` before a write enters the
    /// pipeline, engaging the channel's [`crate::OverloadPolicy`] when the
    /// channel is at capacity.
    ///
    /// Below capacity (and on every unbounded channel) this is a pure
    /// lock-guarded check — no virtual time, no kernel events — so runs
    /// that never saturate a channel are schedule-identical to runs
    /// without flow control. At capacity:
    ///
    /// * `Block` polls (virtual time in the sim, wall-clock on the native
    ///   backend, same idiom as [`AppShared::fence_on`]) until the reader
    ///   drains a message; no incidents — backpressure is the contract.
    /// * `Shed` reports `overload` + `message-shed` incidents and fails
    ///   with [`CpError::Backpressure`] without waiting.
    /// * `DeadlineDrop(d)` polls like `Block` up to `d`, then sheds.
    pub(crate) fn acquire_credit(
        &self,
        ctx: &ProcCtx,
        who: &str,
        chan: usize,
    ) -> Result<(), CpError> {
        use crate::flow::{Acquire, OverloadPolicy};
        let capacity = match self.flow.try_acquire(chan) {
            Acquire::Granted { depth } => {
                self.record_queue_depth(chan, depth);
                return Ok(());
            }
            Acquire::Full { capacity } => capacity,
        };
        let policy = self.tables.channels[chan].policy;
        let t0 = ctx.now();
        let deadline = match policy {
            OverloadPolicy::Shed => None,
            OverloadPolicy::DeadlineDrop(d) => Some(t0 + d),
            OverloadPolicy::Block => {
                if self.recorder.is_enabled() {
                    self.recorder.record_backpressure_wait(chan as u32);
                }
                loop {
                    ctx.advance(SimDuration::from_micros(1));
                    if let Acquire::Granted { depth } = self.flow.try_acquire(chan) {
                        self.record_queue_depth(chan, depth);
                        return Ok(());
                    }
                }
            }
        };
        if let Some(deadline) = deadline {
            if self.recorder.is_enabled() {
                self.recorder.record_backpressure_wait(chan as u32);
            }
            while ctx.now() < deadline {
                ctx.advance(SimDuration::from_micros(1));
                if let Acquire::Granted { depth } = self.flow.try_acquire(chan) {
                    self.record_queue_depth(chan, depth);
                    return Ok(());
                }
            }
        }
        // Shed (immediately, or after an expired deadline wait).
        let detail = match policy {
            OverloadPolicy::Shed => "message shed without waiting".to_string(),
            OverloadPolicy::DeadlineDrop(d) => {
                format!("message shed after waiting its {d} credit deadline")
            }
            OverloadPolicy::Block => unreachable!("Block never sheds"),
        };
        self.flow.note_shed(chan);
        if self.recorder.is_enabled() {
            self.recorder.record_shed(chan as u32);
        }
        let err = CpError::Backpressure(crate::error::OverloadError {
            channel: chan,
            capacity,
            policy: policy.as_str(),
            detail,
        });
        ctx.report_incident(
            IncidentCategory::Overload,
            &format!(
                "process '{who}': channel {chan} at capacity ({capacity} in flight, \
                 policy {})",
                policy.as_str()
            ),
        );
        ctx.report_incident(
            IncidentCategory::MessageShed,
            &format!("process '{who}': {err}"),
        );
        Err(err)
    }

    /// Return the send credit of one drained (or unwound) message on
    /// `chan`. Saturating and tolerant of out-of-range ids, so relay-side
    /// callers can release unconditionally.
    pub(crate) fn release_credit(&self, chan: usize) {
        self.flow.release(chan);
    }

    /// Record a bounded channel's queue depth (in-flight count at send
    /// time) in the observability recorder.
    fn record_queue_depth(&self, chan: usize, depth: usize) {
        if self.recorder.is_enabled() && self.flow.capacity(chan).is_some() {
            self.recorder.record_queue_depth(chan as u32, depth as u64);
        }
    }

    /// Whether the writer of channel `chan` is permanently gone — the
    /// liveness check behind blocking reads (a reader must fail with
    /// `PeerLost` rather than wait forever on a dead writer).
    pub(crate) fn chan_writer_gone(&self, chan: usize, now: SimTime) -> bool {
        let from = self.tables.channels[chan].from;
        match self.tables.processes[from.0].location {
            crate::location::Location::Rank { rank, .. } => {
                self.faults.death_of(rank).is_some_and(|at| now >= at)
            }
            crate::location::Location::Spe { .. } => self.spe_gone(from.0, now),
        }
    }

    /// Whether channel `chan` is one-sided.
    pub(crate) fn one_sided_chan(&self, chan: usize) -> bool {
        self.tables
            .channels
            .get(chan)
            .is_some_and(|e| e.mode == ChannelMode::OneSided)
    }

    /// One-sided fence body shared by the rank- and SPE-side handles:
    /// block (in virtual time) until every put applied on `chan` has been
    /// taken by the reader, i.e. the window is drained.
    pub(crate) fn fence_on(&self, ctx: &ProcCtx, chan: CpChannel) -> Result<(), CpError> {
        let entry = self
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.mode != ChannelMode::OneSided {
            return Err(CpError::WindowMisuse {
                channel: chan.0,
                detail: "fence is only meaningful on one-sided channels".into(),
            });
        }
        loop {
            match self.fabric.pending(chan.0 as u32) {
                // No window yet means no put ever waited on one: drained.
                Err(_) | Ok(0) => return Ok(()),
                Ok(_) => ctx.advance(SimDuration::from_micros(1)),
            }
        }
    }

    /// Whether the SPE process behind `proc` is permanently gone. Under
    /// supervision only an *abandoned* process counts (a crashed one is
    /// being restarted); without it, a scheduled crash whose time has
    /// passed is final, matching the old fail-stop semantics.
    pub(crate) fn spe_gone(&self, proc: usize, now: SimTime) -> bool {
        if self.supervision.is_some() {
            self.failed_spes.lock().contains(&proc)
        } else {
            self.faults.spe_crash_of(proc).is_some_and(|at| now >= at)
        }
    }
}

/// A handle to a launched SPE process, joinable with
/// [`CellPilot::wait_spe`].
#[derive(Debug, Clone, Copy)]
pub struct SpeTask {
    pub(crate) pid: Pid,
    pub(crate) process: CpProcess,
}

impl SpeTask {
    /// The SPE process this task is an execution of.
    pub fn process(&self) -> CpProcess {
        self.process
    }
}

/// The per-process handle of a PPE or non-Cell CellPilot process.
pub struct CellPilot {
    pub(crate) comm: Comm,
    pub(crate) shared: Arc<AppShared>,
    pub(crate) me: CpProcess,
    pub(crate) spawned: Mutex<Vec<SpeTask>>,
}

impl CellPilot {
    /// This process's handle.
    pub fn process(&self) -> CpProcess {
        self.me
    }

    /// This process's configured name.
    pub fn name(&self) -> String {
        self.shared.tables.processes[self.me.0].name.clone()
    }

    /// Total CellPilot processes (rank-backed and SPE).
    pub fn process_count(&self) -> usize {
        self.shared.tables.processes.len()
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.shared.tables.processes[self.me.0].location.node()
    }

    /// The channel's Table-I classification.
    pub fn channel_kind(&self, chan: CpChannel) -> Result<ChannelKind, CpError> {
        self.shared
            .tables
            .channels
            .get(chan.0)
            .map(|e| e.kind)
            .ok_or(CpError::NoSuchChannel(chan.0))
    }

    /// The simulated-process context (for modelling compute time).
    pub fn ctx(&self) -> &ProcCtx {
        self.comm.ctx()
    }

    fn charge(&self, bytes: usize) {
        let us = self.shared.pilot_costs.op_us + bytes as f64 * self.shared.pilot_costs.per_byte_us;
        self.ctx().advance(SimDuration::from_micros_f64(us));
    }

    /// `PI_Write` from a PPE / non-Cell process: works on every channel
    /// type whose writer is this process; the library routes via plain MPI
    /// (type 1) or the reader's Co-Pilot (types 2/3) transparently.
    pub fn write(&self, chan: CpChannel, format: &str, values: &[PiValue]) -> Result<(), CpError> {
        let entry = self
            .shared
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.from != self.me {
            return Err(CpError::NotWriter {
                channel: chan.0,
                caller: self.name(),
            });
        }
        let conv = parse_format(format)?;
        check_against_format(&conv, values)?;
        let data = pack_message(values);
        let t0 = self.ctx().now();
        self.shared
            .acquire_credit(self.ctx(), &self.name(), chan.0)?;
        self.charge(payload_bytes(values));
        if entry.mode == ChannelMode::OneSided {
            // One-sided transport: land the message directly in the reader
            // SPE's window over the fabric — no Co-Pilot relay hop.
            self.shared
                .one_sided_put(self.ctx(), &self.name(), chan.0, self.node(), data)
                .map_err(|cap| {
                    // The message never entered the pipeline: unwind its
                    // credit so a failed send does not leak capacity.
                    self.shared.release_credit(chan.0);
                    CpError::SpeBufferOverflow {
                        channel: chan.0,
                        capacity: cap as usize,
                    }
                })?;
            crate::dlsvc::report(
                &self.comm,
                &self.shared.tables,
                crate::dlsvc::chan_event(&self.shared.tables, cp_pilot::EV_WRITE, chan.0),
            );
            self.shared.record_chan_op(
                &self.name(),
                entry.kind,
                chan.0,
                true,
                payload_bytes(values),
                t0,
                self.ctx().now(),
            );
            return Ok(());
        }
        let dest_rank = match self.shared.tables.processes[entry.to.0].location {
            Location::Rank { rank, .. } => rank,
            Location::Spe { node, .. } => self.shared.copilot_rank(node),
        };
        let n = data.len();
        self.comm
            .try_send_bytes(
                dest_rank,
                CpTables::chan_tag(chan.0),
                Datatype::Byte,
                n,
                data,
            )
            .map_err(|fault| {
                // The send never took: unwind the credit (credit leaks on
                // failed sends would slowly strangle a bounded channel).
                self.shared.release_credit(chan.0);
                self.fault_to_cp(chan, entry.to, fault)
            })?;
        crate::dlsvc::report(
            &self.comm,
            &self.shared.tables,
            crate::dlsvc::chan_event(&self.shared.tables, cp_pilot::EV_WRITE, chan.0),
        );
        self.shared.trace.record(
            self.ctx().now(),
            &self.name(),
            crate::trace::TraceOp::RankWrite,
            chan.0,
            n,
        );
        self.shared.record_chan_op(
            &self.name(),
            entry.kind,
            chan.0,
            true,
            payload_bytes(values),
            t0,
            self.ctx().now(),
        );
        Ok(())
    }

    /// Map an MPI-layer fault on `chan` (whose far endpoint is `peer`) to
    /// the CellPilot error, recording a structured incident in the
    /// [`cp_des::SimReport`] so degraded runs are observable. A timeout on
    /// a channel whose peer SPE has a scheduled crash that already fired
    /// is upgraded to [`CpError::PeerLost`] — the peer is gone, not slow.
    fn fault_to_cp(&self, chan: CpChannel, peer: CpProcess, fault: MpiFault) -> CpError {
        let peer_name = self.shared.tables.processes[peer.0].name.clone();
        let peer_crashed = self.shared.spe_gone(peer.0, self.ctx().now());
        let err = match fault {
            MpiFault::PeerLost { .. } => CpError::PeerLost {
                channel: chan.0,
                peer: peer_name,
            },
            MpiFault::Timeout { .. } | MpiFault::SendLost { .. } if peer_crashed => {
                CpError::PeerLost {
                    channel: chan.0,
                    peer: peer_name,
                }
            }
            MpiFault::Timeout { what } => CpError::Timeout {
                channel: chan.0,
                detail: what,
            },
            MpiFault::SendLost { attempts, .. } => CpError::Timeout {
                channel: chan.0,
                detail: format!("message to '{peer_name}' lost after {attempts} send attempts"),
            },
        };
        let category = match err {
            CpError::PeerLost { .. } => IncidentCategory::PeerLost,
            _ => IncidentCategory::ChannelTimeout,
        };
        self.ctx()
            .report_incident(category, &format!("process '{}': {err}", self.name()));
        err
    }

    /// Typed `PI_Write`: send one slice of a single scalar type without
    /// spelling the Pilot format string — `cp.write_slice::<i32>(chan, &v)`
    /// is `cp.write(chan, "%*d", ..)`.
    pub fn write_slice<T: PiScalar>(&self, chan: CpChannel, data: &[T]) -> Result<(), CpError> {
        let format = format!("%*{}", T::CONV);
        self.write(chan, &format, &[T::wrap(data.to_vec())])
    }

    /// Typed `PI_Read`: receive one message of a single scalar type as a
    /// `Vec<T>` — `cp.read_vec::<f64>(chan)` is `cp.read(chan, "%*lf")`.
    pub fn read_vec<T: PiScalar>(&self, chan: CpChannel) -> Result<Vec<T>, CpError> {
        let format = format!("%*{}", T::CONV);
        let mut values = self.read(chan, &format)?;
        let v = values.pop().expect("format has exactly one segment");
        Ok(T::unwrap(v).expect("segment dtype verified against format"))
    }

    /// Typed write on a [`TypedChannel`]: the element type is fixed at
    /// configure time by [`crate::config::ChannelBuilder::typed`], so
    /// writer and reader cannot disagree about the payload scalar.
    pub fn send<T: PiScalar>(&self, chan: TypedChannel<T>, data: &[T]) -> Result<(), CpError> {
        self.write_slice(chan.channel(), data)
    }

    /// Typed read on a [`TypedChannel`] (see [`CellPilot::send`]).
    pub fn recv<T: PiScalar>(&self, chan: TypedChannel<T>) -> Result<Vec<T>, CpError> {
        self.read_vec(chan.channel())
    }

    /// One-sided fence: block (in virtual time) until every put applied on
    /// `chan` so far has been taken by the reader — the window is drained.
    /// Errors on rendezvous channels, where delivery is already
    /// synchronous.
    pub fn fence(&self, chan: CpChannel) -> Result<(), CpError> {
        self.shared.fence_on(self.ctx(), chan)
    }

    /// `PI_Read` from a PPE / non-Cell process.
    pub fn read(&self, chan: CpChannel, format: &str) -> Result<Vec<PiValue>, CpError> {
        let entry = self
            .shared
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.to != self.me {
            return Err(CpError::NotReader {
                channel: chan.0,
                caller: self.name(),
            });
        }
        let conv = parse_format(format)?;
        let t0 = self.ctx().now();
        let src_sel = self.chan_src_sel(entry.from);
        let tag = Some(CpTables::chan_tag(chan.0));
        // Deadline-bounded reads cannot participate in a deadlock (they
        // always come back), and a timed-out read would leave a stale edge
        // in the wait-for graph — so only unbounded reads report.
        if self.shared.channel_timeout.is_none() {
            crate::dlsvc::report(
                &self.comm,
                &self.shared.tables,
                crate::dlsvc::chan_event(&self.shared.tables, cp_pilot::EV_READWAIT, chan.0),
            );
        }
        let msg = match self.shared.channel_timeout {
            None => self.comm.recv(src_sel, tag),
            Some(d) => self
                .comm
                .try_recv_deadline(src_sel, tag, d)
                .map_err(|fault| self.fault_to_cp(chan, entry.from, fault))?,
        };
        // The message left the pipeline the moment it was received —
        // return its send credit even if the format check below fails.
        self.shared.release_credit(chan.0);
        let values = unpack_message(&msg.data).expect("well-formed channel message");
        let segs: Vec<(Datatype, usize)> = values.iter().map(|v| (v.dtype(), v.len())).collect();
        check_read_format(&conv, &segs).map_err(|detail| CpError::FormatMismatch {
            channel: chan.0,
            detail,
        })?;
        self.charge(payload_bytes(&values));
        self.shared.trace.record(
            self.ctx().now(),
            &self.name(),
            crate::trace::TraceOp::RankRead,
            chan.0,
            payload_bytes(&values),
        );
        self.shared.record_chan_op(
            &self.name(),
            entry.kind,
            chan.0,
            false,
            payload_bytes(&values),
            t0,
            self.ctx().now(),
        );
        Ok(values)
    }

    /// Non-blocking check whether a read on `chan` would find data.
    pub fn channel_has_data(&self, chan: CpChannel) -> Result<bool, CpError> {
        let entry = self
            .shared
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.to != self.me {
            return Err(CpError::NotReader {
                channel: chan.0,
                caller: self.name(),
            });
        }
        let src_sel = self.chan_src_sel(entry.from);
        Ok(self
            .comm
            .iprobe(src_sel, Some(CpTables::chan_tag(chan.0)))
            .is_some())
    }

    /// The MPI source selector for channel data written by `from`: the
    /// writer's own rank or its node's Co-Pilot rank — or the wildcard
    /// when that node has a standby Co-Pilot, because the proxy rank can
    /// change mid-stream across a failover (the channel tag alone
    /// identifies the stream).
    fn chan_src_sel(&self, from: CpProcess) -> SrcSel {
        match self.shared.tables.processes[from.0].location {
            Location::Rank { rank, .. } => Some(rank),
            Location::Spe { node, .. } => {
                if self.shared.tables.standby_ranks.contains_key(&node) {
                    None
                } else {
                    Some(self.shared.copilot_rank(node))
                }
            }
        }
    }

    /// `PI_RunSPE`: launch a dormant SPE process created with
    /// `PI_CreateSPE`. Only the SPE process's parent (the PPE process "in
    /// charge of" its Cell node) may launch it. `arg_int` and `arg_ptr`
    /// are handed to the SPE program entry (the `PI_SPE_PROCESS(int,
    /// void*)` arguments).
    pub fn run_spe(&self, proc: CpProcess, arg_int: i32, arg_ptr: u64) -> Result<SpeTask, CpError> {
        let entry = self
            .shared
            .tables
            .processes
            .get(proc.0)
            .ok_or(CpError::NoSuchProcess(proc.0))?;
        let (program, parent) = match &entry.kind {
            ProcKind::Spe { program, parent } => (program.clone(), *parent),
            ProcKind::Rank => return Err(CpError::NotSpeProcess(proc.0)),
        };
        if parent != self.me {
            return Err(CpError::NotParent {
                spe_process: proc.0,
                caller: self.name(),
            });
        }
        {
            let mut running = self.shared.running_spes.lock();
            if !running.insert(proc.0) {
                return Err(CpError::AlreadyRunning(proc.0));
            }
        }
        let node = entry.location.node();
        let ns = self.shared.node_shared[&node].clone();
        let hw = match ns.claim_spe() {
            Some(hw) => hw,
            None => {
                self.shared.running_spes.lock().remove(&proc.0);
                return Err(CpError::NoFreeSpe { node: node.0 });
            }
        };
        let image = program.image_bytes + crate::costs::SPE_RUNTIME_FOOTPRINT;
        let shared = self.shared.clone();
        let body = {
            let ns = ns.clone();
            let program = program.clone();
            move |sctx: &ProcCtx| {
                // A scripted SPE crash unwinds out of the program entry with
                // the `SpeCrashUnwind` sentinel. Under supervision the work
                // function is restarted in place, replaying its op journal
                // so acknowledged channel operations are not re-issued;
                // otherwise (or once the restart budget is spent) the
                // process retires cleanly and only channels touching the
                // dead SPE fail. Any other unwind (a real panic, simulation
                // teardown) is re-raised after the same cleanup.
                let name = shared.tables.processes[proc.0].name.clone();
                let mut attempts = 0u32;
                loop {
                    let spe_ctx =
                        crate::spe_rt::SpeCtx::new(sctx.clone(), shared.clone(), proc, node, hw);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        (program.entry)(&spe_ctx, arg_int, arg_ptr);
                    }));
                    spe_ctx.teardown();
                    match outcome {
                        Ok(()) => break,
                        Err(payload) if payload.is::<crate::spe_rt::SpeCrashUnwind>() => {
                            match shared.supervision {
                                Some(p) if attempts < p.max_restarts => {
                                    attempts += 1;
                                    sctx.report_incident(
                                        IncidentCategory::SpeRestart,
                                        &format!(
                                            "restarting SPE process '{name}' from its last \
                                             acknowledged operation (attempt {attempts}/{})",
                                            p.max_restarts
                                        ),
                                    );
                                    sctx.advance(p.restart_delay);
                                }
                                Some(p) => {
                                    shared.failed_spes.lock().insert(proc.0);
                                    sctx.report_incident(
                                        IncidentCategory::SpeAbandoned,
                                        &format!(
                                            "SPE process '{name}' abandoned after {} restarts; \
                                             its channels degrade to peer-lost",
                                            p.max_restarts
                                        ),
                                    );
                                    break;
                                }
                                None => {
                                    shared.failed_spes.lock().insert(proc.0);
                                    break;
                                }
                            }
                        }
                        Err(payload) => {
                            ns.release_spe(hw);
                            shared.running_spes.lock().remove(&proc.0);
                            shared.journals.lock().remove(&proc.0);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
                ns.release_spe(hw);
                shared.running_spes.lock().remove(&proc.0);
                shared.journals.lock().remove(&proc.0);
            }
        };
        let pid = match ns
            .cell
            .start_spe(self.ctx(), hw, program.name(), image, body)
        {
            Ok(pid) => pid,
            Err(e) => {
                ns.release_spe(hw);
                self.shared.running_spes.lock().remove(&proc.0);
                return Err(e.into());
            }
        };
        let task = SpeTask { pid, process: proc };
        self.spawned.lock().push(task);
        self.shared.trace.record(
            self.ctx().now(),
            &self.name(),
            crate::trace::TraceOp::RunSpe,
            proc.0,
            0,
        );
        Ok(task)
    }

    /// Block until an SPE process launched by this process finishes.
    pub fn wait_spe(&self, task: SpeTask) {
        self.ctx().join(task.pid);
    }

    /// Launch every dormant SPE process this process parents (the common
    /// "start all my workers" idiom), with `arg_int` set to each process's
    /// configured index. Returns the tasks in process-id order.
    pub fn run_my_spes(&self) -> Vec<SpeTask> {
        let mine: Vec<(CpProcess, i32)> = self
            .shared
            .tables
            .processes
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match &e.kind {
                ProcKind::Spe { parent, .. } if *parent == self.me => Some((CpProcess(i), e.index)),
                _ => None,
            })
            .collect();
        mine.into_iter()
            .filter_map(|(p, index)| self.run_spe(p, index, 0).ok())
            .collect()
    }

    /// [`CellPilot::run_my_spes`] followed by waiting for them all —
    /// the whole body of a typical host process.
    pub fn run_and_wait_my_spes(&self) {
        for t in self.run_my_spes() {
            self.wait_spe(t);
        }
    }

    /// True while the given SPE process is running.
    pub fn spe_running(&self, proc: CpProcess) -> bool {
        self.shared.running_spes.lock().contains(&proc.0)
    }

    /// End-of-run synchronization: wait for this process's SPE children,
    /// barrier with every other application process, then (on rank 0) tell
    /// the Co-Pilots to shut down. Called automatically when a process
    /// function or `main` returns.
    pub(crate) fn finish(&self) {
        let children: Vec<SpeTask> = std::mem::take(&mut *self.spawned.lock());
        for t in children {
            self.ctx().join(t.pid);
        }
        let my_rank = self
            .shared
            .tables
            .rank_of(self.me)
            .expect("finish called from a rank process");
        // Ranks with a death scheduled in the fault plan are excluded
        // symmetrically from the barrier: rank 0 does not wait for them
        // and they do not enter it (both sides consult the same plan, so
        // survivors are never wedged on a corpse).
        let dead = |r: usize| self.shared.faults.death_of(r).is_some();
        if dead(my_rank) {
            return;
        }
        // Tell the deadlock service this rank is done; the detector counts
        // finishes from exactly the ranks that pass the death check above.
        crate::dlsvc::report(&self.comm, &self.shared.tables, cp_pilot::DlEvent::finish());
        let peers: Vec<usize> = self
            .shared
            .tables
            .processes
            .iter()
            .filter_map(|p| match p.location {
                Location::Rank { rank, .. } if rank != 0 && !dead(rank) => Some(rank),
                _ => None,
            })
            .collect();
        if my_rank == 0 {
            for &r in &peers {
                let _ = self.comm.recv(Some(r), Some(TAG_FINI));
            }
            for &r in &peers {
                self.comm
                    .send_bytes(r, TAG_FINI, Datatype::Byte, 0, Vec::new());
            }
            for (_node, &cp_rank) in self.shared.tables.copilot_ranks.iter() {
                if dead(cp_rank) {
                    continue;
                }
                self.comm.send_bytes(
                    cp_rank,
                    crate::protocol::CP_SHUTDOWN_TAG,
                    Datatype::Byte,
                    0,
                    Vec::new(),
                );
            }
        } else {
            self.comm
                .send_bytes(0, TAG_FINI, Datatype::Byte, 0, Vec::new());
            let _ = self.comm.recv(Some(0), Some(TAG_FINI));
        }
    }

    /// Abort the application with a CellPilot diagnostic carrying the
    /// source location of the offending call.
    pub fn abort_loc(&self, err: &CpError, file: &str, line: u32) -> ! {
        self.ctx().abort(&format!(
            "[{}:{}] in process '{}': {}",
            file,
            line,
            self.name(),
            err
        ));
    }
}

/// `PI_Write` from a PPE / non-Cell process, aborting with a
/// source-located diagnostic on misuse.
#[macro_export]
macro_rules! cp_write {
    ($p:expr, $chan:expr, $fmt:expr $(, $val:expr)* $(,)?) => {
        match $p.write($chan, $fmt, &[$(cp_pilot::PiValue::from($val)),*]) {
            Ok(()) => (),
            Err(e) => $p.abort_loc(&e, file!(), line!()),
        }
    };
}

/// `PI_Read` from a PPE / non-Cell process, aborting with a
/// source-located diagnostic on misuse.
#[macro_export]
macro_rules! cp_read {
    ($p:expr, $chan:expr, $fmt:expr) => {
        match $p.read($chan, $fmt) {
            Ok(v) => v,
            Err(e) => $p.abort_loc(&e, file!(), line!()),
        }
    };
}
