//! Internal tables and per-node shared state.

use crate::location::{ChannelKind, CpProcess, Location};
use crate::program::SpeProgram;
use crate::protocol::Request;
use cp_cellsim::CellNode;
use cp_des::sync::MsgQueue;
use cp_mpisim::Msg;
use cp_simnet::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a process is realized.
pub(crate) enum ProcKind {
    /// A regular Pilot process backed by an MPI rank.
    Rank,
    /// An SPE process: dormant until its parent calls `PI_RunSPE`.
    Spe {
        program: SpeProgram,
        parent: CpProcess,
    },
}

pub(crate) struct CpProcEntry {
    pub name: String,
    pub location: Location,
    pub index: i32,
    pub kind: ProcKind,
}

pub(crate) struct CpChanEntry {
    pub from: CpProcess,
    pub to: CpProcess,
    pub kind: ChannelKind,
}

/// What a CellPilot bundle is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpBundleUsage {
    /// One writer (the common endpoint) to many readers.
    Broadcast,
    /// Many writers to one reader (the common endpoint).
    Gather,
}

pub(crate) struct CpBundleEntry {
    pub usage: CpBundleUsage,
    pub channels: Vec<crate::location::CpChannel>,
    pub common: CpProcess,
}

/// The immutable application architecture, shared by every rank, Co-Pilot
/// and SPE process.
pub struct CpTables {
    pub(crate) processes: Vec<CpProcEntry>,
    pub(crate) channels: Vec<CpChanEntry>,
    pub(crate) bundles: Vec<CpBundleEntry>,
    /// Co-Pilot MPI rank per Cell node.
    pub(crate) copilot_ranks: BTreeMap<NodeId, usize>,
    /// Number of application MPI ranks (main + rank processes).
    #[allow(dead_code)]
    pub(crate) app_ranks: usize,
    /// MPI rank of the deadlock-detection service, when enabled.
    pub(crate) detector_rank: Option<usize>,
}

impl CpTables {
    pub(crate) fn chan_tag(c: usize) -> i32 {
        c as i32
    }

    /// The MPI rank backing a `Location::Rank` process.
    pub(crate) fn rank_of(&self, p: CpProcess) -> Option<usize> {
        match self.processes[p.0].location {
            Location::Rank { rank, .. } => Some(rank),
            Location::Spe { .. } => None,
        }
    }
}

/// An event on a Co-Pilot's service queue.
pub(crate) enum CoEvent {
    /// A request block posted by the SPE on hardware SPE `hw`.
    Request { hw: usize, req: Request },
    /// An MPI message (channel data from a rank or a remote Co-Pilot).
    Mpi(Msg),
    /// Orderly shutdown at end of run.
    Shutdown,
}

/// Shared state of one Cell node: the hardware handle, the Co-Pilot's
/// event queue, and the SPE occupancy registry.
pub(crate) struct NodeShared {
    pub cell: Arc<CellNode>,
    pub queue: MsgQueue<CoEvent>,
    /// `true` = hardware SPE is free.
    pub free_spes: Mutex<Vec<bool>>,
}

impl NodeShared {
    pub(crate) fn new(cell: Arc<CellNode>) -> Arc<NodeShared> {
        let n = cell.spe_count();
        Arc::new(NodeShared {
            queue: MsgQueue::new(&format!("copilot{}-queue", cell.id), None),
            free_spes: Mutex::new(vec![true; n]),
            cell,
        })
    }

    /// Claim the lowest-numbered free SPE, if any.
    pub(crate) fn claim_spe(&self) -> Option<usize> {
        let mut free = self.free_spes.lock();
        let idx = free.iter().position(|&f| f)?;
        free[idx] = false;
        Some(idx)
    }

    /// Release a claimed SPE.
    pub(crate) fn release_spe(&self, idx: usize) {
        self.free_spes.lock()[idx] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_cellsim::CellCosts;

    #[test]
    fn claim_release_cycle() {
        let cell = CellNode::new(0, 3, 1 << 20, CellCosts::default());
        let ns = NodeShared::new(cell);
        assert_eq!(ns.claim_spe(), Some(0));
        assert_eq!(ns.claim_spe(), Some(1));
        assert_eq!(ns.claim_spe(), Some(2));
        assert_eq!(ns.claim_spe(), None);
        ns.release_spe(1);
        assert_eq!(ns.claim_spe(), Some(1));
    }
}
