//! Internal tables and per-node shared state.

use crate::location::{ChannelKind, ChannelMode, CpProcess, Location};
use crate::program::SpeProgram;
use crate::protocol::Request;
use cp_cellsim::CellNode;
use cp_des::sync::MsgQueue;
use cp_mpisim::Msg;
use cp_simnet::{Heartbeat, NodeId};
use cp_trace::{HbOp, Recorder};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a process is realized.
pub(crate) enum ProcKind {
    /// A regular Pilot process backed by an MPI rank.
    Rank,
    /// An SPE process: dormant until its parent calls `PI_RunSPE`.
    Spe {
        program: SpeProgram,
        parent: CpProcess,
    },
}

pub(crate) struct CpProcEntry {
    pub name: String,
    pub location: Location,
    pub index: i32,
    pub kind: ProcKind,
}

pub(crate) struct CpChanEntry {
    pub from: CpProcess,
    pub to: CpProcess,
    pub kind: ChannelKind,
    /// Transport selected at construction: Co-Pilot relay (default) or
    /// the one-sided window fabric.
    pub mode: ChannelMode,
    /// Explicit window placement `(ls_offset, len)` from
    /// `ChannelBuilder::window_at`; `None` lets the runtime allocate the
    /// window in the reader SPE's local store. Only meaningful for
    /// one-sided channels.
    pub window: Option<(u32, u32)>,
    /// Bound on in-flight messages (send accepted, not yet drained by the
    /// reader) from `ChannelBuilder::capacity`; `None` = unbounded.
    pub capacity: Option<usize>,
    /// What a sender does when the channel is at capacity.
    pub policy: crate::flow::OverloadPolicy,
    /// Eager-inlining threshold from `ChannelBuilder::eager`/
    /// `eager_threshold`: packed payloads at or below this many bytes ride
    /// the mailbox/control word instead of a DMA round trip. `None` =
    /// eager inlining off (every transfer takes the rendezvous path).
    pub eager: Option<usize>,
    /// Declared payload bound from [`crate::ChannelBuilder::max_payload`]:
    /// the application's promise that no message on this channel exceeds
    /// this many packed bytes. Purely an analysis hint (the CP203
    /// eager-inlining advisory keys off it); the runtime does not enforce
    /// it. `None` = no promise made.
    pub max_payload: Option<usize>,
}

impl CpChanEntry {
    /// The byte bound under which a payload actually goes inline: the
    /// configured threshold clamped to what the mailbox exchange can carry
    /// ([`crate::protocol::EAGER_INLINE_MAX`]; CP014 warns when the
    /// configured value exceeds it). Zero when eager inlining is off.
    pub fn eager_limit(&self) -> usize {
        self.eager
            .unwrap_or(0)
            .min(crate::protocol::EAGER_INLINE_MAX)
    }
}

/// What a CellPilot bundle is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpBundleUsage {
    /// One writer (the common endpoint) to many readers.
    Broadcast,
    /// Many writers to one reader (the common endpoint).
    Gather,
}

/// Size/deadline triggers for vectored coalescing on a bundle, from
/// `CellPilotConfig::coalesce_bundle`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CoalescePolicy {
    /// Flush when this many writes are buffered.
    pub max_batch: usize,
    /// Flush (before buffering the next write) once the oldest buffered
    /// write is this old, microseconds of virtual time.
    pub deadline_us: f64,
}

pub(crate) struct CpBundleEntry {
    pub usage: CpBundleUsage,
    pub channels: Vec<crate::location::CpChannel>,
    pub common: CpProcess,
    /// Vectored-coalescing triggers; `None` = coalescing off.
    pub coalesce: Option<CoalescePolicy>,
}

/// The immutable application architecture, shared by every rank, Co-Pilot
/// and SPE process.
pub struct CpTables {
    pub(crate) processes: Vec<CpProcEntry>,
    pub(crate) channels: Vec<CpChanEntry>,
    pub(crate) bundles: Vec<CpBundleEntry>,
    /// Co-Pilot MPI rank per Cell node.
    pub(crate) copilot_ranks: BTreeMap<NodeId, usize>,
    /// Standby Co-Pilot rank per Cell node whose primary has a scripted
    /// kill — allocated only when the fault plan schedules one, so healthy
    /// runs carry no extra processes.
    pub(crate) standby_ranks: BTreeMap<NodeId, usize>,
    /// Number of application MPI ranks (main + rank processes).
    #[allow(dead_code)]
    pub(crate) app_ranks: usize,
    /// MPI rank of the deadlock-detection service, when enabled.
    pub(crate) detector_rank: Option<usize>,
}

impl CpTables {
    pub(crate) fn chan_tag(c: usize) -> i32 {
        c as i32
    }

    /// The MPI rank backing a `Location::Rank` process.
    pub(crate) fn rank_of(&self, p: CpProcess) -> Option<usize> {
        match self.processes[p.0].location {
            Location::Rank { rank, .. } => Some(rank),
            Location::Spe { .. } => None,
        }
    }
}

/// An event on a Co-Pilot's service queue.
pub(crate) enum CoEvent {
    /// A request block posted by the SPE on hardware SPE `hw`. For an
    /// [`crate::protocol::OP_WRITE_INLINE`] request the watcher has already
    /// pulled the payload out of the request block — it travels here in
    /// `inline`, so the service loop never touches the SPE's local store.
    Request {
        hw: usize,
        req: Request,
        inline: Option<Vec<u8>>,
    },
    /// An MPI message (channel data from a rank or a remote Co-Pilot).
    Mpi(Msg),
    /// Orderly shutdown at end of run.
    Shutdown,
    /// Scripted death marker for the primary Co-Pilot, pushed at exactly
    /// the fault plan's `kill_copilot` instant so the primary retires at
    /// the kill time rather than at its next unrelated event. Never
    /// reaches a standby: only one is ever queued and the primary consumes
    /// it.
    Die,
}

/// A stored SPE request awaiting its counterpart.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingReq {
    pub hw: usize,
    pub addr: u32,
    pub len: u32,
}

/// The Co-Pilot's in-flight proxy state. Lives in [`NodeShared`] rather
/// than on the service loop's stack so a standby Co-Pilot adopting the
/// node after a failover resumes with every pending request, undelivered
/// message, and the stall bookkeeping intact.
pub(crate) struct CoState {
    /// Read requests waiting for data, per channel.
    pub pending_reads: HashMap<usize, VecDeque<PendingReq>>,
    /// Local write requests waiting for their type-4 partner, per channel.
    pub pending_writes: HashMap<usize, VecDeque<PendingReq>>,
    /// MPI data that arrived before the local reader asked, per channel.
    pub pending_mpi: HashMap<usize, VecDeque<Msg>>,
    /// Whether the node's scripted Co-Pilot stall has already been served
    /// (a stall fires once per node, not once per service incarnation).
    pub stall_done: bool,
}

/// Shared state of one Cell node: the hardware handle, the Co-Pilot's
/// event queue and proxy tables, the failover heartbeat, and the SPE
/// occupancy registry.
pub(crate) struct NodeShared {
    pub cell: Arc<CellNode>,
    pub queue: MsgQueue<CoEvent>,
    /// `true` = hardware SPE is free.
    pub free_spes: Mutex<Vec<bool>>,
    /// The Co-Pilot's proxy tables, shared so a standby can adopt them.
    pub co_state: Mutex<CoState>,
    /// Node-local liveness signal between the primary Co-Pilot and its
    /// standby's watchdog.
    pub hb: Heartbeat,
    /// Happens-before recorder for the event queue (see `cp-check`):
    /// pushes and pops become `MsgSend`/`MsgRecv` edges so SPE requests
    /// are ordered before the Co-Pilot work they trigger.
    hb_rec: Mutex<Recorder>,
    /// Sequence numbers pairing queue pushes with pops.
    queue_sent: AtomicU64,
    queue_received: AtomicU64,
}

impl NodeShared {
    pub(crate) fn new(cell: Arc<CellNode>) -> Arc<NodeShared> {
        let n = cell.spe_count();
        Arc::new(NodeShared {
            queue: MsgQueue::new(&format!("copilot{}-queue", cell.id), None),
            free_spes: Mutex::new(vec![true; n]),
            co_state: Mutex::new(CoState {
                pending_reads: HashMap::new(),
                pending_writes: HashMap::new(),
                pending_mpi: HashMap::new(),
                stall_done: false,
            }),
            hb: Heartbeat::new(),
            hb_rec: Mutex::new(Recorder::disabled()),
            queue_sent: AtomicU64::new(0),
            queue_received: AtomicU64::new(0),
            cell,
        })
    }

    /// Attach a happens-before recorder to the event queue.
    pub(crate) fn set_hb_recorder(&self, rec: Recorder) {
        *self.hb_rec.lock() = rec;
    }

    /// Record a happens-before event against this node's recorder (the
    /// one-sided fabric's put/get edges use this so they reach the race
    /// detector even when checks run without the observability recorder).
    pub(crate) fn record_hb(&self, actor: &str, ts_ns: u64, op: HbOp) {
        if let Some(r) = self.hb_recorder() {
            r.record_hb(actor, ts_ns, op);
        }
    }

    fn hb_recorder(&self) -> Option<Recorder> {
        let r = self.hb_rec.lock();
        r.is_enabled().then(|| r.clone())
    }

    /// Record the happens-before send edge for a queue push. Call
    /// immediately before `queue.push`: the queue is unbounded, so the
    /// push inserts without yielding and the sequence number matches
    /// insertion (hence pop) order.
    pub(crate) fn note_queue_push(&self, actor: &str, ts_ns: u64) {
        if let Some(r) = self.hb_recorder() {
            let seq = self.queue_sent.fetch_add(1, Ordering::Relaxed);
            r.record_hb(
                actor,
                ts_ns,
                HbOp::MsgSend {
                    queue: format!("co-queue-{}", self.cell.id),
                    seq,
                },
            );
        }
    }

    /// Record the happens-before receive edge for a queue pop. Call right
    /// after `queue.pop` returns; the service loop is the queue's only
    /// consumer (a standby starts only after the primary retired), so pops
    /// consume sequence numbers in push order.
    pub(crate) fn note_queue_pop(&self, actor: &str, ts_ns: u64) {
        if let Some(r) = self.hb_recorder() {
            let seq = self.queue_received.fetch_add(1, Ordering::Relaxed);
            r.record_hb(
                actor,
                ts_ns,
                HbOp::MsgRecv {
                    queue: format!("co-queue-{}", self.cell.id),
                    seq,
                },
            );
        }
    }

    /// Claim the lowest-numbered free SPE, if any.
    pub(crate) fn claim_spe(&self) -> Option<usize> {
        let mut free = self.free_spes.lock();
        let idx = free.iter().position(|&f| f)?;
        free[idx] = false;
        Some(idx)
    }

    /// Release a claimed SPE.
    pub(crate) fn release_spe(&self, idx: usize) {
        self.free_spes.lock()[idx] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_cellsim::CellCosts;

    #[test]
    fn claim_release_cycle() {
        let cell = CellNode::new(0, 3, 1 << 20, CellCosts::default());
        let ns = NodeShared::new(cell);
        assert_eq!(ns.claim_spe(), Some(0));
        assert_eq!(ns.claim_spe(), Some(1));
        assert_eq!(ns.claim_spe(), Some(2));
        assert_eq!(ns.claim_spe(), None);
        ns.release_spe(1);
        assert_eq!(ns.claim_spe(), Some(1));
    }
}
