//! The CellPilot configuration phase.
//!
//! Identical in spirit to Pilot's (the paper: "if a programmer has already
//! learned how to use Pilot on a conventional cluster, learning a couple
//! more API functions for the SPE is a small matter"). The two additions
//! are [`CellPilotConfig::create_spe_process`] (`PI_CreateSPE`) and, in the
//! runtime, `CellPilot::run_spe` (`PI_RunSPE`). SPE processes are not
//! launched automatically by `run` — they stay dormant until their parent
//! PPE process starts them during its own execution phase, "completely in
//! keeping with the idea that SPEs have limited memory and may need to be
//! loaded and reloaded".

use crate::collective::CpBundle;
use crate::copilot;
use crate::costs::CellPilotCosts;
use crate::error::CpError;
use crate::flow::{FlowControl, OverloadPolicy};
use crate::location::{classify, ChannelMode, CpChannel, CpProcess, Location};
use crate::program::SpeProgram;
use crate::runtime::{AppShared, CellPilot};
use crate::tables::{
    CpBundleEntry, CpBundleUsage, CpChanEntry, CpProcEntry, CpTables, NodeShared, ProcKind,
};
use cp_des::{Backend, Incident, IncidentCategory, SimDuration, SimError, SimReport};
use cp_mpisim::{MpiCosts, MpiWorld};
use cp_native::Runner;
use cp_pilot::PilotCosts;
use cp_simnet::{ClusterSpec, FaultPlan, NodeId, RetryPolicy};
use cp_trace::Recorder;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Options for a CellPilot application.
///
/// Construct either field-style (`CellPilotOpts { trace: true,
/// ..Default::default() }`) or with the chainable `with_*` builders:
///
/// ```
/// use cellpilot::CellPilotOpts;
/// use cp_des::SimDuration;
///
/// let opts = CellPilotOpts::new()
///     .with_trace()
///     .with_channel_timeout(SimDuration::from_millis(10));
/// assert!(opts.trace);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CellPilotOpts {
    /// CellPilot-layer cost model.
    pub costs: CellPilotCosts,
    /// Pilot-layer (rank-side) cost model.
    pub pilot_costs: PilotCosts,
    /// MPI-layer cost model.
    pub mpi_costs: MpiCosts,
    /// Record a channel-operation trace (see [`crate::trace`]); retrieve
    /// it with [`CellPilotConfig::run_traced`].
    pub trace: bool,
    /// Per-channel read deadline for rank-side reads: a read that waits
    /// longer than this (virtual time) fails with [`CpError::Timeout`]
    /// instead of blocking forever. `None` (the default) blocks
    /// indefinitely.
    pub channel_timeout: Option<SimDuration>,
    /// Fault-injection plan the simulated cluster runs under; `None` means
    /// a healthy cluster.
    pub faults: Option<Arc<FaultPlan>>,
    /// Retransmission policy senders use against injected message loss.
    pub retry: RetryPolicy,
    /// Enable the deadlock-detection service (consumes one extra MPI
    /// process). Ranks report their own channel waits; Co-Pilots report on
    /// behalf of their SPEs, so circular waits on every channel type (1–5)
    /// abort with a diagnostic naming the full cycle.
    pub deadlock_detection: bool,
    /// Schedule-exploration seed for the DES kernel: `0` (the default) is
    /// the canonical FIFO schedule; a nonzero seed deterministically
    /// permutes same-timestamp event ordering (see
    /// [`cp_des::Simulation::set_schedule_seed`]).
    pub schedule_seed: u64,
    /// Restart crashed SPE work functions instead of failing their
    /// channels; `None` (the default) keeps fail-stop semantics.
    pub supervision: Option<SupervisionPolicy>,
    /// Cluster-wide observability recorder (see [`cp_trace::Recorder`]).
    /// Disabled by default; attach an enabled recorder with
    /// [`CellPilotOpts::with_tracing`] to collect spans, Chrome-trace
    /// events and a [`cp_trace::MetricsSnapshot`] across the DES kernel,
    /// the MPI layer, the interconnect and every CellPilot channel
    /// operation. Recording never consumes virtual time, so enabling it
    /// does not perturb the schedule.
    pub tracing: Recorder,
    /// Run the `cp-check` static passes: the configure-time wiring
    /// verifier (findings become [`cp_des::IncidentCategory::WiringLint`]
    /// incidents) and the happens-before DMA race detector (findings
    /// become [`cp_des::IncidentCategory::DmaRace`] incidents). Neither
    /// pass consumes virtual time.
    pub checks: bool,
    /// Escalate wiring-verifier *errors* to a pre-run abort
    /// ([`cp_des::SimError::Aborted`] naming every finding) instead of
    /// incidents. Implies [`CellPilotOpts::checks`].
    pub strict_checks: bool,
    /// Lint-engine policy over the `cp-check` findings: per-code
    /// [`cp_check::LintLevel`]s, endpoint-scoped suppressions and a
    /// baseline. Applied by [`CellPilotConfig::check`] before findings
    /// reach strict-abort or incident reporting, so an `Allow`ed,
    /// suppressed or baselined finding never aborts a strict run; a
    /// `Deny`ed one always does. Default: the identity (natural
    /// severities, nothing suppressed).
    pub lint_config: cp_check::LintConfig,
    /// Abort the run with [`cp_des::SimError::TimeLimitExceeded`] once
    /// virtual time passes this bound — the harness knob for
    /// demonstrating progress hazards (a CP201 credit-deadlock cycle
    /// livelocks virtual time rather than exhausting the event queue, so
    /// only a time limit can catch it). `None` (the default) never
    /// limits. Sim-only; ignored on the native backend.
    pub time_limit: Option<SimDuration>,
    /// Execution substrate: the deterministic DES kernel
    /// ([`Backend::Sim`], the default) or free-running OS threads
    /// ([`Backend::Native`]). The program body and the configure-time
    /// wiring verifier are identical on both. Native rejects fault plans
    /// and supervision (their faults are scripted in virtual time) and
    /// ignores `schedule_seed`; the CP101 DMA race detector is likewise
    /// sim-only — its happens-before timestamps are only meaningful under
    /// the virtual clock.
    pub backend: Backend,
}

impl CellPilotOpts {
    /// Default options; identical to `CellPilotOpts::default()`, reads
    /// better at the head of a builder chain.
    pub fn new() -> CellPilotOpts {
        CellPilotOpts::default()
    }

    /// Record a channel-operation trace (retrieve with
    /// [`CellPilotConfig::run_traced`]).
    pub fn with_trace(mut self) -> CellPilotOpts {
        self.trace = true;
        self
    }

    /// Fail rank-side reads that wait longer than `deadline` of virtual
    /// time.
    pub fn with_channel_timeout(mut self, deadline: SimDuration) -> CellPilotOpts {
        self.channel_timeout = Some(deadline);
        self
    }

    /// Run the simulated cluster under the given fault-injection plan.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> CellPilotOpts {
        self.faults = Some(plan);
        self
    }

    /// Override the sender-side retransmission policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> CellPilotOpts {
        self.retry = retry;
        self
    }

    /// Enable the deadlock-detection service (consumes one extra MPI
    /// process).
    pub fn with_deadlock_service(mut self) -> CellPilotOpts {
        self.deadlock_detection = true;
        self
    }

    /// Run under an alternative (but still deterministic) DES schedule.
    pub fn with_schedule_seed(mut self, seed: u64) -> CellPilotOpts {
        self.schedule_seed = seed;
        self
    }

    /// Restart crashed SPE work functions under `policy` instead of
    /// failing their channels.
    pub fn with_supervision(mut self, policy: SupervisionPolicy) -> CellPilotOpts {
        self.supervision = Some(policy);
        self
    }

    /// Attach an observability [`Recorder`] to the run. Pass
    /// [`Recorder::enabled`] and keep a clone: after the run,
    /// [`Recorder::snapshot`] yields the aggregated metrics and
    /// [`Recorder::chrome_trace`] a Chrome `trace_event` JSON export.
    pub fn with_tracing(mut self, recorder: Recorder) -> CellPilotOpts {
        self.tracing = recorder;
        self
    }

    /// Run the `cp-check` wiring verifier and DMA race detector, reporting
    /// findings as `wiring-lint` / `dma-race` incidents in the
    /// [`SimReport`].
    pub fn with_checks(mut self) -> CellPilotOpts {
        self.checks = true;
        self
    }

    /// Like [`CellPilotOpts::with_checks`], but wiring-verifier errors
    /// abort before the run starts (races are always post-run findings and
    /// never abort).
    pub fn with_strict_checks(mut self) -> CellPilotOpts {
        self.checks = true;
        self.strict_checks = true;
        self
    }

    /// Apply a lint-engine policy ([`cp_check::LintConfig`]) over the
    /// `cp-check` findings: remap per-code levels, suppress a code at an
    /// endpoint, or exempt a committed baseline.
    pub fn with_lint_config(mut self, lint_config: cp_check::LintConfig) -> CellPilotOpts {
        self.lint_config = lint_config;
        self
    }

    /// Abort the run once virtual time passes `limit` (sim-only; see
    /// [`CellPilotOpts::time_limit`]).
    pub fn with_time_limit(mut self, limit: SimDuration) -> CellPilotOpts {
        self.time_limit = Some(limit);
        self
    }

    /// Select the execution substrate (see [`CellPilotOpts::backend`]).
    pub fn with_backend(mut self, backend: Backend) -> CellPilotOpts {
        self.backend = backend;
        self
    }

    /// Select the substrate from the `CP_BACKEND` environment variable
    /// (`native` selects OS threads; anything else, or unset, the sim) —
    /// how the conformance harness runs one example binary on both
    /// backends without recompiling.
    pub fn with_backend_from_env(mut self) -> CellPilotOpts {
        self.backend = Backend::from_env();
        self
    }
}

/// How the runtime reacts when a supervised SPE work function crashes
/// (a scripted [`FaultPlan::crash_spe`] fault firing mid-kernel).
///
/// With supervision enabled the crashed SPE process is restarted in place
/// up to [`SupervisionPolicy::max_restarts`] times from its last
/// acknowledged channel operation: the runtime keeps a lightweight
/// checkpoint cursor (an op journal) per supervised SPE, replays the
/// already-acknowledged operations without re-issuing them to the
/// Co-Pilot, and resumes live execution — so peers observe every message
/// exactly once and final results are byte-identical to a fault-free run.
/// Exhausting the budget abandons the process and degrades its channels to
/// the unsupervised `PeerLost` behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// Restarts allowed per SPE process before it is abandoned.
    pub max_restarts: u32,
    /// Virtual time between a crash and the restarted attempt (modelling
    /// the Co-Pilot reloading the SPE image).
    pub restart_delay: SimDuration,
}

impl Default for SupervisionPolicy {
    fn default() -> SupervisionPolicy {
        SupervisionPolicy {
            max_restarts: 2,
            restart_delay: SimDuration::from_micros(50),
        }
    }
}

/// Emit a deprecation note for `api` on stderr — once per process, not per
/// call site. Large test suites hit the deprecated shims hundreds of times;
/// one line per API is signal, 153 copies is noise.
fn deprecation_note(api: &'static str, hint: &str) {
    if deprecation_note_should_emit(api) {
        eprintln!("cellpilot: `{api}` is deprecated: {hint}");
    }
}

/// Whether `api`'s once-per-process deprecation note is still unsent
/// (consuming the send). Split from [`deprecation_note`] so the
/// once-semantics are unit-testable without capturing stderr.
fn deprecation_note_should_emit(api: &'static str) -> bool {
    static EMITTED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut emitted = EMITTED.lock();
    if emitted.contains(&api) {
        false
    } else {
        emitted.push(api);
        true
    }
}

type RankBody = Box<dyn FnOnce(&CellPilot, i32) + Send>;

/// A CellPilot application under configuration.
pub struct CellPilotConfig {
    spec: ClusterSpec,
    placement: Vec<NodeId>,
    opts: CellPilotOpts,
    processes: Vec<CpProcEntry>,
    channels: Vec<CpChanEntry>,
    bundles: Vec<CpBundleEntry>,
    bundled: std::collections::HashSet<usize>,
    bodies: Vec<Option<RankBody>>,
    next_rank: usize,
    spe_slots: HashMap<NodeId, usize>,
}

impl CellPilotConfig {
    /// Begin configuring on `spec`, with `placement[rank]` naming the node
    /// of each application MPI rank (rank 0 = `CP_MAIN`). One Co-Pilot
    /// rank per Cell node is added automatically.
    pub fn new(spec: ClusterSpec, placement: Vec<NodeId>, opts: CellPilotOpts) -> CellPilotConfig {
        assert!(!placement.is_empty(), "need at least one rank for CP_MAIN");
        for n in &placement {
            assert!(n.0 < spec.nodes.len(), "placement names missing node {n}");
        }
        let processes = vec![CpProcEntry {
            name: "main".into(),
            location: Location::Rank {
                rank: 0,
                node: placement[0],
            },
            index: 0,
            kind: ProcKind::Rank,
        }];
        CellPilotConfig {
            spec,
            placement,
            opts,
            processes,
            channels: Vec::new(),
            bundles: Vec::new(),
            bundled: std::collections::HashSet::new(),
            bodies: vec![None],
            next_rank: 1,
            spe_slots: HashMap::new(),
        }
    }

    /// Convenience: one application rank per cluster node.
    pub fn one_rank_per_node(spec: ClusterSpec, opts: CellPilotOpts) -> CellPilotConfig {
        let placement = (0..spec.nodes.len()).map(NodeId).collect();
        CellPilotConfig::new(spec, placement, opts)
    }

    /// Rank processes still creatable.
    pub fn processes_available(&self) -> usize {
        self.placement.len() - self.next_rank
    }

    /// `PI_CreateProcess`: a regular Pilot process on the next MPI rank.
    pub fn create_process<F>(&mut self, name: &str, index: i32, f: F) -> Result<CpProcess, CpError>
    where
        F: FnOnce(&CellPilot, i32) + Send + 'static,
    {
        if self.processes_available() == 0 {
            return Err(CpError::TooManyProcesses {
                available: self.placement.len(),
            });
        }
        let rank = self.next_rank;
        self.next_rank += 1;
        let id = CpProcess(self.processes.len());
        self.processes.push(CpProcEntry {
            name: name.to_string(),
            location: Location::Rank {
                rank,
                node: self.placement[rank],
            },
            index,
            kind: ProcKind::Rank,
        });
        self.bodies.push(Some(Box::new(f)));
        Ok(id)
    }

    /// `PI_CreateSPE`: an SPE process associated with `program`, parented
    /// by (and co-resident with) the PPE process `parent`. Dormant until
    /// the parent calls `run_spe` during execution.
    pub fn create_spe_process(
        &mut self,
        program: &SpeProgram,
        parent: CpProcess,
        index: i32,
    ) -> Result<CpProcess, CpError> {
        let pe = self
            .processes
            .get(parent.0)
            .ok_or(CpError::NoSuchProcess(parent.0))?;
        let node = match pe.location {
            Location::Rank { node, .. } => node,
            Location::Spe { .. } => {
                return Err(CpError::BadSpeParent {
                    parent: parent.0,
                    reason: "an SPE process cannot parent another SPE process".into(),
                })
            }
        };
        if !self.spec.nodes[node.0].is_cell() {
            return Err(CpError::BadSpeParent {
                parent: parent.0,
                reason: format!("{node} is not a Cell node"),
            });
        }
        let slot = self.spe_slots.entry(node).or_insert(0);
        let my_slot = *slot;
        *slot += 1;
        let id = CpProcess(self.processes.len());
        self.processes.push(CpProcEntry {
            name: format!("{}#{}", program.name(), index),
            location: Location::Spe {
                node,
                slot: my_slot,
            },
            index,
            kind: ProcKind::Spe {
                program: program.clone(),
                parent,
            },
        });
        self.bodies.push(None);
        Ok(id)
    }

    /// `PI_CreateChannel`: a unidirectional rendezvous channel between any
    /// two processes, whatever their locations.
    #[deprecated(
        since = "0.1.0",
        note = "use the ChannelBuilder: `cfg.channel(from, to).build()`"
    )]
    pub fn create_channel(&mut self, from: CpProcess, to: CpProcess) -> Result<CpChannel, CpError> {
        deprecation_note(
            "create_channel",
            "use the ChannelBuilder: `cfg.channel(from, to).build()`",
        );
        self.channel(from, to).build()
    }

    /// `PI_CreateChannel` with a legacy buffer-size hint. The rendezvous
    /// relay does not buffer, so `len` is accepted and ignored.
    #[deprecated(
        since = "0.1.0",
        note = "the relay does not buffer; use `cfg.channel(from, to).build()`, or \
                `.one_sided().window_at(..)` to size a real window"
    )]
    pub fn create_channel_sized(
        &mut self,
        from: CpProcess,
        to: CpProcess,
        _len: usize,
    ) -> Result<CpChannel, CpError> {
        deprecation_note(
            "create_channel_sized",
            "the relay does not buffer; use `cfg.channel(from, to).build()`, or \
             `.one_sided().window_at(..)` to size a real window",
        );
        self.channel(from, to).build()
    }

    /// Begin declaring a unidirectional channel between any two processes,
    /// whatever their locations — the single entry point for every Table-I
    /// type and both transports. Finish with [`ChannelBuilder::build`] (or
    /// [`ChannelBuilder::typed`] for an element-typed handle):
    ///
    /// ```no_run
    /// # fn demo(cfg: &mut cellpilot::CellPilotConfig,
    /// #         a: cellpilot::CpProcess, s: cellpilot::CpProcess)
    /// #         -> Result<(), cellpilot::CpError> {
    /// let relay = cfg.channel(a, s).build()?; // rendezvous (default)
    /// let fast = cfg.channel(a, s).one_sided().build()?; // window fabric
    /// let typed = cfg.channel(a, s).one_sided().typed::<f64>()?;
    /// # Ok(()) }
    /// ```
    pub fn channel(&mut self, from: CpProcess, to: CpProcess) -> ChannelBuilder<'_> {
        ChannelBuilder {
            cfg: self,
            from,
            to,
            mode: ChannelMode::Rendezvous,
            window: None,
            capacity: None,
            policy: OverloadPolicy::Block,
            eager: None,
            max_payload: None,
        }
    }

    #[allow(clippy::too_many_arguments)] // one field per builder knob
    fn finish_channel(
        &mut self,
        from: CpProcess,
        to: CpProcess,
        mode: ChannelMode,
        window: Option<(u32, u32)>,
        capacity: Option<usize>,
        policy: OverloadPolicy,
        eager: Option<usize>,
        max_payload: Option<usize>,
    ) -> Result<CpChannel, CpError> {
        let fe = self
            .processes
            .get(from.0)
            .ok_or(CpError::NoSuchProcess(from.0))?;
        let te = self
            .processes
            .get(to.0)
            .ok_or(CpError::NoSuchProcess(to.0))?;
        if from == to {
            return Err(CpError::SelfChannel);
        }
        let kind = classify(fe.location, te.location);
        let id = CpChannel(self.channels.len());
        if mode == ChannelMode::OneSided && !te.location.is_spe() {
            return Err(CpError::WindowMisuse {
                channel: id.0,
                detail: format!(
                    "one-sided channels land data in the reader's local store, \
                     but reader '{}' is rank-resident",
                    te.name
                ),
            });
        }
        if window.is_some() && mode != ChannelMode::OneSided {
            return Err(CpError::WindowMisuse {
                channel: id.0,
                detail: "window_at is only meaningful for one-sided channels \
                         (add .one_sided())"
                    .into(),
            });
        }
        if let Some((_, len)) = window {
            if len == 0 {
                return Err(CpError::WindowMisuse {
                    channel: id.0,
                    detail: "window length must be nonzero".into(),
                });
            }
        }
        if capacity == Some(0) {
            return Err(CpError::BadCapacity {
                channel: id.0,
                detail: "capacity must be nonzero (a zero-credit channel can never \
                         accept a write)"
                    .into(),
            });
        }
        self.channels.push(CpChanEntry {
            from,
            to,
            kind,
            mode,
            window,
            capacity,
            policy,
            eager,
            max_payload,
        });
        Ok(id)
    }

    /// `PI_CreateBundle` (extension): group channels sharing a common
    /// endpoint — which may be a rank *or an SPE process* — for a
    /// collective usage. For broadcast the common endpoint is the single
    /// writer; for gather it is the single reader.
    pub fn create_bundle(
        &mut self,
        usage: CpBundleUsage,
        channels: &[CpChannel],
    ) -> Result<CpBundle, CpError> {
        if channels.is_empty() {
            return Err(CpError::EmptyBundle);
        }
        let ends: Vec<(CpProcess, CpProcess)> = channels
            .iter()
            .map(|&c| {
                self.channels
                    .get(c.0)
                    .map(|e| (e.from, e.to))
                    .ok_or(CpError::NoSuchChannel(c.0))
            })
            .collect::<Result<_, _>>()?;
        let common = match usage {
            CpBundleUsage::Broadcast => {
                let w = ends[0].0;
                if !ends.iter().all(|&(f, _)| f == w) {
                    return Err(CpError::BundleCommonEndpoint);
                }
                w
            }
            CpBundleUsage::Gather => {
                let r = ends[0].1;
                if !ends.iter().all(|&(_, t)| t == r) {
                    return Err(CpError::BundleCommonEndpoint);
                }
                r
            }
        };
        for &c in channels {
            if !self.bundled.insert(c.0) {
                return Err(CpError::ChannelAlreadyBundled(c.0));
            }
        }
        let id = CpBundle(self.bundles.len());
        self.bundles.push(CpBundleEntry {
            usage,
            channels: channels.to_vec(),
            common,
            coalesce: None,
        });
        Ok(id)
    }

    /// Enable **vectored coalescing** on a broadcast bundle: consecutive
    /// small writes made through [`crate::CellPilot::coalescer`] are
    /// buffered and flushed as one batched wire envelope per destination
    /// Co-Pilot, either when `max_batch` writes have accumulated or when
    /// the oldest buffered write is `deadline_us` microseconds old (checked
    /// at the next write or explicit flush — the coalescer holds no
    /// timers).
    pub fn coalesce_bundle(
        &mut self,
        b: CpBundle,
        max_batch: usize,
        deadline_us: f64,
    ) -> Result<(), CpError> {
        let entry = self
            .bundles
            .get_mut(b.0)
            .ok_or(CpError::NoSuchBundle(b.0))?;
        if entry.usage != CpBundleUsage::Broadcast {
            return Err(CpError::BundleMisuse {
                bundle: b.0,
                detail: "coalescing batches the common writer's outgoing traffic, \
                         so it only applies to broadcast bundles"
                    .into(),
            });
        }
        if max_batch == 0 {
            return Err(CpError::BundleMisuse {
                bundle: b.0,
                detail: "coalesce batch size must be nonzero".into(),
            });
        }
        if deadline_us.is_nan() || deadline_us <= 0.0 {
            return Err(CpError::BundleMisuse {
                bundle: b.0,
                detail: "coalesce deadline must be positive".into(),
            });
        }
        entry.coalesce = Some(crate::tables::CoalescePolicy {
            max_batch,
            deadline_us,
        });
        Ok(())
    }

    /// The Table-I classification of a configured channel.
    pub fn channel_kind(&self, c: CpChannel) -> Option<crate::location::ChannelKind> {
        self.channels.get(c.0).map(|e| e.kind)
    }

    /// The transport mode of a configured channel (rendezvous relay or
    /// one-sided window fabric).
    pub fn channel_mode(&self, c: CpChannel) -> Option<ChannelMode> {
        self.channels.get(c.0).map(|e| e.mode)
    }

    /// Number of channels configured so far.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of processes configured so far (including `CP_MAIN` and SPE
    /// processes).
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The configured name of a process.
    pub fn process_name(&self, p: CpProcess) -> Option<&str> {
        self.processes.get(p.0).map(|e| e.name.as_str())
    }

    /// Summarize the configured architecture: one `(name, location
    /// description, channel count as writer, as reader)` row per process —
    /// handy for logging what `PI_StartAll` is about to launch.
    pub fn architecture_summary(&self) -> Vec<(String, String, usize, usize)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let loc = match e.location {
                    Location::Rank { rank, node } => format!("rank {rank} on {node}"),
                    Location::Spe { node, slot } => format!("SPE process {slot} on {node}"),
                };
                let writes = self.channels.iter().filter(|c| c.from.0 == i).count();
                let reads = self.channels.iter().filter(|c| c.to.0 == i).count();
                (e.name.clone(), loc, writes, reads)
            })
            .collect()
    }

    /// Run the `cp-check` configure-time passes — the wiring verifier and
    /// the progress analyzer — over the architecture configured so far.
    /// The typed API already rules much of the CP0xx catalogue out by
    /// construction (dangling endpoints, self-channels, bundle-common
    /// mismatches), so what can surface here is what only a whole-graph
    /// view sees — SPE slot oversubscription (CP006), bundles mixing
    /// rendezvous classes (CP008) — plus the CP2xx progress hazards:
    /// credit-deadlock cycles of Block-bounded channels (CP201), Co-Pilot
    /// relay saturation against
    /// [`CellPilotCosts::copilot_service_budget_us`] (CP202),
    /// eager-inlining advice on channels with a small
    /// [`ChannelBuilder::max_payload`] promise (CP203), and
    /// fence-unsatisfiable one-sided configs (CP204). The configured
    /// [`CellPilotOpts::lint_config`] is applied before returning, so
    /// `Allow`ed, suppressed and baselined findings are already gone and
    /// `Deny`ed ones arrive as errors. Called automatically by `run` when
    /// [`CellPilotOpts::checks`] is set; public so harnesses can lint
    /// without running.
    pub fn check(&self) -> Vec<cp_check::Diagnostic> {
        let mut g = cp_check::WiringGraph::new(self.placement.len());
        for (i, kind) in self.spec.nodes.iter().enumerate() {
            if let cp_simnet::NodeKind::Cell { spes } = kind {
                g.add_cell_node(i, *spes);
                // The runtime launches one Co-Pilot per Cell node, so
                // every Cell node can proxy SPE traffic.
                g.add_copilot(i);
            }
        }
        for e in &self.processes {
            match e.location {
                Location::Rank { rank, node } => {
                    g.add_rank_process(&e.name, rank, node.0);
                }
                Location::Spe { node, slot } => {
                    g.add_spe_process(&e.name, node.0, slot);
                }
            }
        }
        for c in &self.channels {
            g.add_channel(c.from.0, c.to.0);
        }
        // Flow-control declarations for the CP013 lint. Strict runs opt
        // into the unbounded-channel advisory (it is only a warning, never
        // an abort).
        g.set_flow_strict(self.opts.strict_checks);
        for (i, c) in self.channels.iter().enumerate() {
            g.set_channel_flow(
                i,
                c.capacity,
                c.policy == crate::flow::OverloadPolicy::Block,
            );
        }
        // Eager/coalescing declarations for the CP014 lint, payload
        // promises for the CP203 advisory.
        for (i, c) in self.channels.iter().enumerate() {
            if let Some(threshold) = c.eager {
                g.set_channel_eager(i, threshold);
            }
            if let Some(bound) = c.max_payload {
                g.set_channel_max_payload(i, bound);
            }
        }
        // The CP202 relay-saturation estimate runs against this config's
        // cost model and service budget.
        g.set_relay_costs(cp_check::RelayCostModel {
            dispatch_us: self.opts.costs.copilot_dispatch_us,
            pair_poll_us: self.opts.costs.copilot_pair_poll_us,
            eager_dispatch_us: self.opts.costs.copilot_eager_dispatch_us,
            service_budget_us: self.opts.costs.copilot_service_budget_us,
        });
        // One-sided channels and their windows. Explicit `window_at`
        // placements are declared verbatim (CP011 catches user-chosen
        // overlaps); runtime-allocated windows get synthetic stacked
        // placements high above any plausible explicit offset — the
        // allocator cannot overlap by construction, and CP012 still sees
        // that the reader has a window.
        const AUTO_WINDOW_BASE: u32 = 0x1000_0000;
        let mut auto_next: HashMap<(usize, usize), u32> = HashMap::new();
        for (i, c) in self.channels.iter().enumerate() {
            if c.mode != ChannelMode::OneSided {
                continue;
            }
            g.mark_one_sided(i);
            if let Location::Spe { node, slot } = self.processes[c.to.0].location {
                let len = c
                    .window
                    .map(|(_, l)| l)
                    .unwrap_or(self.opts.costs.spe_read_buffer as u32);
                let start = match c.window {
                    Some((s, _)) => s,
                    None => {
                        let next = auto_next.entry((node.0, slot)).or_insert(AUTO_WINDOW_BASE);
                        let s = *next;
                        *next += len;
                        s
                    }
                };
                g.add_window(i, node.0, slot, start, len);
            }
        }
        for b in &self.bundles {
            let usage = match b.usage {
                CpBundleUsage::Broadcast => cp_check::GraphBundleUsage::Broadcast,
                CpBundleUsage::Gather => cp_check::GraphBundleUsage::Gather,
            };
            let members: Vec<usize> = b.channels.iter().map(|c| c.0).collect();
            g.add_bundle(usage, &members, b.common.0);
        }
        for (i, b) in self.bundles.iter().enumerate() {
            if let Some(cp) = b.coalesce {
                g.set_bundle_coalesce(i, cp.max_batch);
            }
        }
        let mut diags = cp_check::verify(&g);
        diags.extend(cp_check::analyze(&g));
        self.opts.lint_config.apply(diags)
    }

    /// `PI_StartAll` + `PI_StopMain` with trace retrieval: like
    /// [`CellPilotConfig::run`] but returns the recorded channel-operation
    /// trace (empty unless [`CellPilotOpts::trace`] was set).
    pub fn run_traced<M>(
        self,
        main: M,
    ) -> Result<(SimReport, Vec<crate::trace::TraceEvent>), SimError>
    where
        M: FnOnce(&CellPilot) + Send + 'static,
    {
        let sink = if self.opts.trace {
            crate::trace::TraceSink::enabled()
        } else {
            crate::trace::TraceSink::disabled()
        };
        let report = self.run_with_sink(main, sink.clone())?;
        Ok((report, sink.take()))
    }

    /// `PI_StartAll` + `PI_StopMain`: run the execution phase.
    pub fn run<M>(self, main: M) -> Result<SimReport, SimError>
    where
        M: FnOnce(&CellPilot) + Send + 'static,
    {
        let sink = if self.opts.trace {
            crate::trace::TraceSink::enabled()
        } else {
            crate::trace::TraceSink::disabled()
        };
        self.run_with_sink(main, sink)
    }

    fn run_with_sink<M>(
        self,
        main: M,
        trace: crate::trace::TraceSink,
    ) -> Result<SimReport, SimError>
    where
        M: FnOnce(&CellPilot) + Send + 'static,
    {
        let lints = if self.opts.checks {
            self.check()
        } else {
            Vec::new()
        };
        if self.opts.strict_checks && lints.iter().any(|d| d.is_error()) {
            return Err(SimError::Aborted {
                pid: 0,
                name: "cp-check".into(),
                message: cp_check::render(&lints),
            });
        }
        if self.opts.backend == Backend::Native
            && (self.opts.faults.is_some() || self.opts.supervision.is_some())
        {
            return Err(SimError::Aborted {
                pid: 0,
                name: "cellpilot-config".into(),
                message: "fault injection and supervision are sim-only: fault plans script \
                          virtual-time events the native backend has no clock for \
                          (run with Backend::Sim)"
                    .into(),
            });
        }
        let CellPilotConfig {
            spec,
            mut placement,
            opts,
            processes,
            channels,
            bundles,
            bundled: _,
            bodies,
            next_rank: _,
            spe_slots: _,
        } = self;
        // The race detector consumes the happens-before stream: piggyback
        // on the observability recorder when one is attached, otherwise
        // record on a private one so enabling checks needs no tracing.
        let hb_rec = if opts.checks {
            if opts.tracing.is_enabled() {
                opts.tracing.clone()
            } else {
                Recorder::enabled()
            }
        } else {
            Recorder::disabled()
        };
        let cluster = spec.build();
        let app_ranks = placement.len();
        let faults = opts
            .faults
            .clone()
            .unwrap_or_else(|| Arc::new(FaultPlan::new()));
        // One Co-Pilot rank per Cell node, appended after the app ranks.
        // BTreeMap: Co-Pilot spawn order (and hence pid assignment) must be
        // deterministic for run-to-run reproducibility.
        let mut copilot_ranks = BTreeMap::new();
        for (i, hw) in cluster.nodes.iter().enumerate() {
            if hw.kind.is_cell() {
                copilot_ranks.insert(NodeId(i), placement.len());
                placement.push(NodeId(i));
            }
        }
        // A standby Co-Pilot rank for each node whose primary the fault
        // plan kills, appended after the primaries. Healthy runs (and the
        // golden traces recovery is measured against) allocate none.
        let mut standby_ranks = BTreeMap::new();
        for &node in copilot_ranks.keys() {
            if faults.copilot_kill_of(node).is_some() {
                standby_ranks.insert(node, placement.len());
                placement.push(node);
            }
        }
        // The deadlock-detection service, if enabled, takes one more rank
        // after the Co-Pilots. It is pure bookkeeping, so its host node
        // does not matter; node 0 always exists.
        let detector_rank = if opts.deadlock_detection {
            let r = placement.len();
            placement.push(NodeId(0));
            Some(r)
        } else {
            None
        };
        let tables = Arc::new(CpTables {
            processes,
            channels,
            bundles,
            copilot_ranks: copilot_ranks.clone(),
            standby_ranks: standby_ranks.clone(),
            app_ranks,
            detector_rank,
        });
        let mut node_shared = HashMap::new();
        for (i, hw) in cluster.nodes.iter().enumerate() {
            if let Some(cell) = &hw.cell {
                let ns = NodeShared::new(cell.clone());
                if opts.tracing.is_enabled() {
                    ns.hb.set_recorder(opts.tracing.clone());
                }
                if hb_rec.is_enabled() {
                    ns.cell.set_recorder(hb_rec.clone());
                    ns.set_hb_recorder(hb_rec.clone());
                }
                node_shared.insert(NodeId(i), ns);
            }
        }
        let shared = Arc::new(AppShared {
            flow: FlowControl::new(tables.channels.iter().map(|c| c.capacity)),
            tables: tables.clone(),
            trace,
            cluster: cluster.clone(),
            fabric: cp_simnet::WindowFabric::new(),
            put_seqs: Mutex::new(HashMap::new()),
            node_shared,
            costs: opts.costs.clone(),
            pilot_costs: opts.pilot_costs.clone(),
            running_spes: Mutex::new(HashSet::new()),
            channel_timeout: opts.channel_timeout,
            faults: faults.clone(),
            supervision: opts.supervision,
            failed_spes: Mutex::new(HashSet::new()),
            journals: Mutex::new(HashMap::new()),
            copilot_route: Mutex::new(copilot_ranks.clone()),
            recorder: opts.tracing.clone(),
        });
        let world = MpiWorld::with_faults(
            cluster,
            placement,
            opts.mpi_costs.clone(),
            faults,
            opts.retry,
        );
        world.set_recorder(opts.tracing.clone());
        let mut sim = Runner::for_backend(opts.backend);
        sim.set_schedule_seed(opts.schedule_seed);
        if let Some(limit) = opts.time_limit {
            sim.set_time_limit(cp_des::SimTime(limit.as_nanos()));
        }
        sim.set_recorder(opts.tracing.clone());
        // Application rank processes.
        for (pidx, body) in bodies.into_iter().enumerate() {
            let Some(f) = body else { continue };
            let entry = &tables.processes[pidx];
            let Location::Rank { rank, .. } = entry.location else {
                unreachable!("bodies exist only for rank processes")
            };
            let name = entry.name.clone();
            let index = entry.index;
            let shared = shared.clone();
            world.launch(&mut sim, rank, &name, move |comm| {
                let cp = CellPilot {
                    comm,
                    shared,
                    me: CpProcess(pidx),
                    spawned: Mutex::new(Vec::new()),
                };
                f(&cp, index);
                cp.finish();
            });
        }
        // Main.
        {
            let shared = shared.clone();
            world.launch(&mut sim, 0, "main", move |comm| {
                // Non-strict wiring findings surface as incidents before
                // the application body runs, stamped at t=0.
                for d in &lints {
                    comm.ctx()
                        .report_incident(IncidentCategory::WiringLint, &d.to_string());
                }
                let cp = CellPilot {
                    comm,
                    shared,
                    me: CpProcess(0),
                    spawned: Mutex::new(Vec::new()),
                };
                main(&cp);
                cp.finish();
            });
        }
        // Co-Pilots.
        for (node, rank) in copilot_ranks {
            let body = copilot::copilot_body(world.clone(), shared.clone(), node, rank);
            world.launch(&mut sim, rank, &format!("copilot{}", node.0), body);
        }
        // Standby Co-Pilots (only for nodes with a scripted primary kill).
        for (node, rank) in standby_ranks {
            let body = copilot::standby_body(world.clone(), shared.clone(), node, rank);
            world.launch(&mut sim, rank, &format!("copilot{}-standby", node.0), body);
        }
        // Deadlock-detection service.
        if let Some(det_rank) = tables.detector_rank {
            let tables2 = tables.clone();
            let faults2 = shared.faults.clone();
            world.launch(&mut sim, det_rank, "cp-deadlock-svc", move |comm| {
                crate::dlsvc::detector_main(comm, tables2, faults2);
            });
        }
        let mut report = sim.run()?;
        // Post-run race analysis over the recorded happens-before stream.
        // Races never abort, even in strict mode: they are findings about
        // the run that just completed. Sim-only (CP101): the detector
        // orders accesses by virtual timestamps, which the native backend
        // does not have — wall-clock stamps would fabricate orderings.
        if hb_rec.is_enabled() && opts.backend == Backend::Sim {
            for d in cp_check::detect_races(&hb_rec.hb_events()) {
                report.incidents.push(Incident {
                    at: report.end_time,
                    process: "cp-check".into(),
                    category: IncidentCategory::DmaRace,
                    detail: d.to_string(),
                });
            }
        }
        Ok(report)
    }
}

/// In-progress channel declaration returned by [`CellPilotConfig::channel`]
/// — the unified construction API covering every Table-I endpoint pairing
/// and both transports.
///
/// Defaults to [`ChannelMode::Rendezvous`] (the Co-Pilot relay every
/// channel supports). Switch to the one-sided window fabric with
/// [`ChannelBuilder::one_sided`], optionally pinning the reader-side
/// window placement with [`ChannelBuilder::window_at`], and finish with
/// [`ChannelBuilder::build`] or [`ChannelBuilder::typed`].
#[must_use = "a ChannelBuilder does nothing until .build() or .typed()"]
pub struct ChannelBuilder<'a> {
    cfg: &'a mut CellPilotConfig,
    from: CpProcess,
    to: CpProcess,
    mode: ChannelMode,
    window: Option<(u32, u32)>,
    capacity: Option<usize>,
    policy: OverloadPolicy,
    eager: Option<usize>,
    max_payload: Option<usize>,
}

impl ChannelBuilder<'_> {
    /// Select the transport mode explicitly.
    pub fn kind(mut self, mode: ChannelMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `.kind(ChannelMode::OneSided)`: writes land directly
    /// in a window of the reading SPE's EA-mapped local store over the
    /// window fabric — one hop, no Co-Pilot relay buffering. The reader
    /// must be an SPE process.
    pub fn one_sided(self) -> Self {
        self.kind(ChannelMode::OneSided)
    }

    /// Pin the one-sided window to an explicit local-store placement
    /// `(ls_offset, len)` instead of letting the runtime allocate it.
    /// Explicit placements are checked for overlap by the `cp-check`
    /// wiring verifier (CP011).
    pub fn window_at(mut self, ls_offset: u32, len: u32) -> Self {
        self.window = Some((ls_offset, len));
        self
    }

    /// Bound the channel to at most `max_in_flight` undrained messages.
    ///
    /// A write that would exceed the bound engages the channel's
    /// [`OverloadPolicy`] (default [`OverloadPolicy::Block`]: the sender
    /// waits for the reader to drain a message and return a send credit).
    /// The bound covers the whole pipeline — relay queues, mailboxes, the
    /// one-sided window fabric — not any single hop. Unbounded without
    /// this call. `max_in_flight` must be nonzero.
    ///
    /// ```no_run
    /// # fn demo(cfg: &mut cellpilot::CellPilotConfig,
    /// #         a: cellpilot::CpProcess, s: cellpilot::CpProcess)
    /// #         -> Result<(), cellpilot::CpError> {
    /// use cellpilot::OverloadPolicy;
    /// let bounded = cfg.channel(a, s)
    ///     .capacity(8)                          // ≤ 8 messages in flight
    ///     .overload_policy(OverloadPolicy::Shed) // senders shed when full
    ///     .build()?;
    /// # Ok(()) }
    /// ```
    pub fn capacity(mut self, max_in_flight: usize) -> Self {
        self.capacity = Some(max_in_flight);
        self
    }

    /// Select what a sender does when the channel is at its
    /// [`ChannelBuilder::capacity`] (default [`OverloadPolicy::Block`]).
    /// Meaningless without a capacity — the `cp-check` wiring verifier
    /// flags that combination as CP013.
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable **eager inlining** at the default threshold (the mailbox-word
    /// capacity, `EAGER_INLINE_MAX` = 16 bytes): packed
    /// payloads at or below the threshold ride the existing mailbox/control
    /// word instead of a separate DMA round trip, cutting per-message
    /// protocol cost for small messages. Off by default — existing
    /// channels keep their rendezvous schedules byte-identical.
    ///
    /// Wire-seq exactly-once dedup and credit accounting are unaffected:
    /// eager transfers acquire and release the same credits and dedup
    /// state as rendezvous ones.
    pub fn eager(self) -> Self {
        let t = crate::protocol::EAGER_INLINE_MAX;
        self.eager_threshold(t)
    }

    /// Declare the largest packed payload (bytes) the application will
    /// ever send on this channel. Purely an analysis hint: the `cp-check`
    /// progress analyzer's CP203 advisory keys off it (a channel that
    /// always fits the mailbox inline capacity but is left non-eager is
    /// paying a DMA round trip per message for nothing). The runtime does
    /// not enforce the bound.
    pub fn max_payload(mut self, bytes: usize) -> Self {
        self.max_payload = Some(bytes);
        self
    }

    /// Enable eager inlining with an explicit byte threshold. Values above
    /// `EAGER_INLINE_MAX` (16) are clamped at run time (one
    /// mailbox exchange cannot carry more) — the `cp-check` wiring
    /// verifier flags such configs as CP014.
    pub fn eager_threshold(mut self, threshold: usize) -> Self {
        self.eager = Some(threshold);
        self
    }

    /// Validate and register the channel.
    ///
    /// Consumes the builder, so a declaration cannot be registered twice
    /// — build-after-build is a compile error, not a runtime one:
    ///
    /// ```compile_fail
    /// # use cellpilot::{CellPilotConfig, CellPilotOpts, CP_MAIN};
    /// # use cp_simnet::ClusterSpec;
    /// let mut cfg = CellPilotConfig::one_rank_per_node(
    ///     ClusterSpec::two_cells_one_xeon(),
    ///     CellPilotOpts::default(),
    /// );
    /// let peer = cfg.create_process("peer", 0, |_, _| {}).unwrap();
    /// let b = cfg.channel(CP_MAIN, peer);
    /// let first = b.build();
    /// let second = b.build(); // error: use of moved value `b`
    /// ```
    pub fn build(self) -> Result<CpChannel, CpError> {
        self.cfg.finish_channel(
            self.from,
            self.to,
            self.mode,
            self.window,
            self.capacity,
            self.policy,
            self.eager,
            self.max_payload,
        )
    }

    /// Validate and register the channel, returning an element-typed
    /// handle whose [`crate::CellPilot::send`]/[`crate::CellPilot::recv`]
    /// (and the SPE-side equivalents) fix the element type at compile
    /// time.
    pub fn typed<T: cp_pilot::PiScalar>(self) -> Result<TypedChannel<T>, CpError> {
        Ok(TypedChannel {
            chan: self.build()?,
            _elem: std::marker::PhantomData,
        })
    }
}

/// An element-typed channel handle from [`ChannelBuilder::typed`]: the
/// same [`CpChannel`] underneath, plus a compile-time element type so
/// `send`/`recv` cannot disagree about the payload scalar.
pub struct TypedChannel<T> {
    chan: CpChannel,
    _elem: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for TypedChannel<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TypedChannel<T> {}

impl<T> std::fmt::Debug for TypedChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TypedChannel({})", self.chan.0)
    }
}

impl<T> TypedChannel<T> {
    /// The untyped channel handle underneath.
    pub fn channel(&self) -> CpChannel {
        self.chan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::ChannelKind;

    fn cfg() -> CellPilotConfig {
        CellPilotConfig::one_rank_per_node(
            ClusterSpec::two_cells_one_xeon(),
            CellPilotOpts::default(),
        )
    }

    #[test]
    fn deprecation_notes_emit_once_per_process_per_api() {
        // First sighting of each API name emits; every later call — from
        // any config in the process — is silent. (The note itself goes to
        // stderr via `deprecation_note`; the predicate is what's testable.)
        assert!(deprecation_note_should_emit("test-api-alpha"));
        assert!(!deprecation_note_should_emit("test-api-alpha"));
        assert!(deprecation_note_should_emit("test-api-beta"));
        assert!(!deprecation_note_should_emit("test-api-beta"));
        assert!(!deprecation_note_should_emit("test-api-alpha"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_build_working_channels() {
        let mut c = cfg();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap();
        let a = c.create_channel(crate::CP_MAIN, ppe1).unwrap();
        // `create_channel_sized`'s length hint is ignored: the relay does
        // not buffer, so it must behave exactly like `create_channel`.
        let b = c.create_channel_sized(ppe1, crate::CP_MAIN, 4096).unwrap();
        assert_eq!((a, b), (CpChannel(0), CpChannel(1)));
    }

    #[test]
    fn spe_parent_must_be_on_cell_node() {
        let mut c = cfg();
        let _a = c.create_process("ppe1", 0, |_, _| {}).unwrap(); // node 1 (Cell)
        let xeon = c.create_process("xeon", 0, |_, _| {}).unwrap(); // node 2
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        match c.create_spe_process(&prog, xeon, 0) {
            Err(CpError::BadSpeParent { reason, .. }) => {
                assert!(reason.contains("not a Cell node"))
            }
            other => panic!("expected BadSpeParent, got {other:?}"),
        }
    }

    #[test]
    fn spe_cannot_parent_spe() {
        let mut c = cfg();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s1 = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        assert!(matches!(
            c.create_spe_process(&prog, s1, 1),
            Err(CpError::BadSpeParent { .. })
        ));
    }

    #[test]
    fn channels_classified_at_creation() {
        let mut c = cfg();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap(); // node1
        let xeon = c.create_process("xeon", 0, |_, _| {}).unwrap(); // node2
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s_main = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap(); // node0
        let s_main2 = c.create_spe_process(&prog, crate::CP_MAIN, 1).unwrap(); // node0
        let s_ppe1 = c.create_spe_process(&prog, ppe1, 0).unwrap(); // node1

        let t1 = c.channel(crate::CP_MAIN, ppe1).build().unwrap();
        let t2 = c.channel(crate::CP_MAIN, s_main).build().unwrap();
        let t3 = c.channel(xeon, s_main2).build().unwrap();
        let t4 = c.channel(s_main, s_main2).build().unwrap();
        let t5 = c.channel(s_main, s_ppe1).build().unwrap();
        assert_eq!(c.channel_kind(t1), Some(ChannelKind::Type1));
        assert_eq!(c.channel_kind(t2), Some(ChannelKind::Type2));
        assert_eq!(c.channel_kind(t3), Some(ChannelKind::Type3));
        assert_eq!(c.channel_kind(t4), Some(ChannelKind::Type4));
        assert_eq!(c.channel_kind(t5), Some(ChannelKind::Type5));
        // Every channel defaults to the rendezvous relay.
        for t in [t1, t2, t3, t4, t5] {
            assert_eq!(c.channel_mode(t), Some(ChannelMode::Rendezvous));
        }
    }

    #[test]
    fn deprecated_create_channel_still_works() {
        let mut c = cfg();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap();
        #[allow(deprecated)]
        let ch = c.create_channel(crate::CP_MAIN, ppe1).unwrap();
        assert_eq!(c.channel_kind(ch), Some(ChannelKind::Type1));
        assert_eq!(c.channel_mode(ch), Some(ChannelMode::Rendezvous));
    }

    #[test]
    fn builder_constructs_one_sided_channels() {
        let mut c = cfg();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        let ch = c.channel(crate::CP_MAIN, s).one_sided().build().unwrap();
        assert_eq!(c.channel_mode(ch), Some(ChannelMode::OneSided));
        assert_eq!(c.channel_kind(ch), Some(ChannelKind::Type2));
        let typed = c
            .channel(crate::CP_MAIN, s)
            .one_sided()
            .typed::<f64>()
            .unwrap();
        assert_eq!(c.channel_mode(typed.channel()), Some(ChannelMode::OneSided));
    }

    #[test]
    fn one_sided_reader_must_be_an_spe() {
        let mut c = cfg();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        match c.channel(s, ppe1).one_sided().build() {
            Err(CpError::WindowMisuse { detail, .. }) => {
                assert!(detail.contains("rank-resident"), "{detail}")
            }
            other => panic!("expected WindowMisuse, got {other:?}"),
        }
    }

    #[test]
    fn window_at_requires_one_sided_and_nonzero_len() {
        let mut c = cfg();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        assert!(matches!(
            c.channel(crate::CP_MAIN, s).window_at(0, 256).build(),
            Err(CpError::WindowMisuse { .. })
        ));
        assert!(matches!(
            c.channel(crate::CP_MAIN, s)
                .one_sided()
                .window_at(0, 0)
                .build(),
            Err(CpError::WindowMisuse { .. })
        ));
        let ch = c
            .channel(crate::CP_MAIN, s)
            .one_sided()
            .window_at(4096, 256)
            .build()
            .unwrap();
        assert_eq!(c.channel_mode(ch), Some(ChannelMode::OneSided));
    }

    #[test]
    fn builder_negative_paths_have_stable_error_kinds() {
        // Downstream code dispatches on `CpError::kind()`, not the variant
        // — every builder misuse must keep classifying as Config.
        let mut c = cfg();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap();
        let cases: [Result<CpChannel, CpError>; 3] = [
            // one-sided with a rank-resident reader
            c.channel(s, ppe1).one_sided().build(),
            // window placement on a rendezvous channel
            c.channel(crate::CP_MAIN, s).window_at(0, 256).build(),
            // zero-length window
            c.channel(crate::CP_MAIN, s)
                .one_sided()
                .window_at(0, 0)
                .build(),
        ];
        for (i, case) in cases.into_iter().enumerate() {
            let err = case.expect_err("case {i} must be rejected");
            assert!(
                matches!(err, CpError::WindowMisuse { .. }),
                "case {i}: expected WindowMisuse, got {err:?}"
            );
            assert_eq!(err.kind(), crate::ErrorKind::Config, "case {i}");
        }
        // Misuse does not consume a channel id: the next declaration still
        // gets id 0.
        assert_eq!(c.channel(crate::CP_MAIN, s).build().unwrap(), CpChannel(0));
    }

    #[test]
    fn check_flags_overlapping_explicit_windows() {
        let mut c = cfg();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap();
        c.channel(crate::CP_MAIN, s)
            .one_sided()
            .window_at(4096, 512)
            .build()
            .unwrap();
        c.channel(ppe1, s)
            .one_sided()
            .window_at(4300, 512)
            .build()
            .unwrap();
        let diags = c.check();
        assert!(
            diags.iter().any(|d| d.code.as_str() == "CP011"),
            "expected CP011 among {diags:?}"
        );
    }

    #[test]
    fn check_is_clean_for_auto_allocated_windows() {
        let mut c = cfg();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        let ppe1 = c.create_process("ppe1", 0, |_, _| {}).unwrap();
        c.channel(crate::CP_MAIN, s).one_sided().build().unwrap();
        c.channel(ppe1, s).one_sided().build().unwrap();
        assert!(c.check().is_empty(), "{:?}", c.check());
    }

    #[test]
    fn introspection_reports_the_architecture() {
        let mut c = cfg();
        let ppe1 = c.create_process("worker", 0, |_, _| {}).unwrap();
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = c.create_spe_process(&prog, crate::CP_MAIN, 0).unwrap();
        c.channel(crate::CP_MAIN, ppe1).build().unwrap();
        c.channel(s, ppe1).build().unwrap();
        assert_eq!(c.process_count(), 3);
        assert_eq!(c.channel_count(), 2);
        assert_eq!(c.process_name(ppe1), Some("worker"));
        assert_eq!(c.process_name(CpProcess(99)), None);
        let rows = c.architecture_summary();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "main");
        assert!(rows[0].1.contains("rank 0"));
        assert_eq!((rows[0].2, rows[0].3), (1, 0));
        assert!(rows[2].1.contains("SPE process 0"));
        assert_eq!((rows[1].2, rows[1].3), (0, 2), "worker reads both channels");
    }

    #[test]
    fn rank_exhaustion() {
        let mut c = cfg();
        c.create_process("a", 0, |_, _| {}).unwrap();
        c.create_process("b", 0, |_, _| {}).unwrap();
        assert!(matches!(
            c.create_process("c", 0, |_, _| {}),
            Err(CpError::TooManyProcesses { .. })
        ));
        // But SPE processes are unlimited by ranks.
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        for i in 0..10 {
            c.create_spe_process(&prog, crate::CP_MAIN, i).unwrap();
        }
    }
}
